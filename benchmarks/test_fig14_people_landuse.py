"""Figure 14: landuse category distribution and top-5 categories per user.

For people trajectories the paper reports that building (1.2) and transport
(1.3) areas still dominate but with a smaller combined share (~61 %) than for
taxis (~83 %), because people also spend time in recreation areas, parks,
lake-side paths, and so on.  The figure lists the top-5 landuse categories per
user.  This benchmark reproduces the per-user distributions, the top-5 lists
and the taxi-vs-people dominance comparison.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analytics.distributions import cumulative_share, normalize_counts, top_k_categories
from repro.analytics.reporting import render_table
from repro.regions.annotator import RegionAnnotator


def test_fig14_people_landuse(benchmark, world, people_dataset, taxi_dataset, people_pipeline):
    annotator = RegionAnnotator(world.region_source(), people_pipeline.config.region)

    def compute():
        return {
            user: annotator.point_category_distribution(trajectories)
            for user, trajectories in people_dataset.trajectories_by_user.items()
        }

    per_user_counts = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for user in people_dataset.user_ids:
        counts = per_user_counts[user]
        top5 = top_k_categories(counts, k=5)
        rows.append(
            [
                user,
                ", ".join(f"{category} ({share:.2f})" for category, share in top5),
                f"{cumulative_share(counts, ['1.2', '1.3']):.2f}",
            ]
        )
    text = render_table(
        ["user", "top-5 landuse categories (share)", "1.2+1.3 share"],
        rows,
        title="Figure 14 - Landuse category distribution of people trajectories",
    )

    # Compare the building+transport dominance against the taxi dataset (Fig. 9).
    people_counts: dict = {}
    for counts in per_user_counts.values():
        for category, value in counts.items():
            people_counts[category] = people_counts.get(category, 0) + value
    taxi_counts = annotator.point_category_distribution(taxi_dataset.trajectories)
    people_share = cumulative_share(people_counts, ["1.2", "1.3"])
    taxi_share = cumulative_share(taxi_counts, ["1.2", "1.3"])
    text += (
        f"\n\nbuilding+transport share: taxis {taxi_share:.2f} vs people {people_share:.2f} "
        "(people are less concentrated, as in the paper)"
    )
    save_result("fig14_people_landuse", text)

    for user, counts in per_user_counts.items():
        distribution = normalize_counts(counts)
        assert distribution, f"user {user} has no annotated points"
        assert max(distribution.values()) <= 1.0
    assert people_share < taxi_share + 0.05
