"""Core data model and pipeline façade for SeMiTri.

This package implements the conceptual model of Section 3 of the paper:

* :class:`~repro.core.points.SpatioTemporalPoint` and
  :class:`~repro.core.points.RawTrajectory` — Definition 1;
* :class:`~repro.core.places.SemanticPlace` and its region/line/point
  specialisations — Definition 2;
* :class:`~repro.core.annotations.Annotation` and
  :class:`~repro.core.trajectory.SemanticTrajectory` — Definition 3;
* :class:`~repro.core.episodes.Episode` and
  :class:`~repro.core.trajectory.StructuredSemanticTrajectory` — Definition 4;
* :class:`~repro.core.pipeline.SeMiTriPipeline` — the layered architecture of
  Figure 2, wiring the trajectory-computation layer and the three annotation
  layers together.
"""

from repro.core.annotations import (
    Annotation,
    AnnotationKind,
    GeographicReferenceAnnotation,
    ValueAnnotation,
)
from repro.core.episodes import Episode, EpisodeKind
from repro.core.errors import (
    ConfigurationError,
    DataQualityError,
    SemitriError,
    SourceError,
)
from repro.core.places import (
    LineOfInterest,
    PlaceKind,
    PointOfInterest,
    RegionOfInterest,
    SemanticPlace,
)
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.core.arrays import GrowableArray, TrajectoryArrays
from repro.core.cpu import effective_cpu_count
from repro.core.trajectory import SemanticTrajectory, StructuredSemanticTrajectory
from repro.core.config import (
    ComputeConfig,
    MapMatchingConfig,
    ObservabilityConfig,
    ParallelConfig,
    PipelineConfig,
    PointAnnotationConfig,
    RegionAnnotationConfig,
    StopMoveConfig,
    StreamingConfig,
)
from repro.core.pipeline import (
    AnnotationSources,
    LayerAnnotators,
    PipelineResult,
    SeMiTriPipeline,
)

__all__ = [
    "Annotation",
    "AnnotationKind",
    "GeographicReferenceAnnotation",
    "ValueAnnotation",
    "Episode",
    "EpisodeKind",
    "SemitriError",
    "ConfigurationError",
    "DataQualityError",
    "SourceError",
    "SemanticPlace",
    "PlaceKind",
    "RegionOfInterest",
    "LineOfInterest",
    "PointOfInterest",
    "RawTrajectory",
    "SpatioTemporalPoint",
    "GrowableArray",
    "TrajectoryArrays",
    "effective_cpu_count",
    "SemanticTrajectory",
    "StructuredSemanticTrajectory",
    "ComputeConfig",
    "ObservabilityConfig",
    "ParallelConfig",
    "PipelineConfig",
    "StopMoveConfig",
    "RegionAnnotationConfig",
    "MapMatchingConfig",
    "PointAnnotationConfig",
    "StreamingConfig",
    "AnnotationSources",
    "LayerAnnotators",
    "PipelineResult",
    "SeMiTriPipeline",
]
