"""Setup shim for environments without PEP 517 build isolation (offline installs)."""
from setuptools import setup

setup()
