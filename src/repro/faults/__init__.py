"""Fault tolerance: deterministic injection, failure policy plumbing, WAL.

Three modules, one per concern:

* :mod:`repro.faults.inject` — seeded, declarative fault plans and the
  injector executors consult (``SEMITRI_FAULTS`` env knob);
* :mod:`repro.faults.failures` — per-trajectory failure records, the
  dead-letter quarantine's input type, and the run-scoped failure log that
  reconciles counters, metrics and the store;
* :mod:`repro.faults.journal` — the service's crash-safe per-shard ingest
  WAL with epoch rotation and origin-id dedup.
"""

from repro.faults.failures import (
    FailureEvent,
    FailureLog,
    TrajectoryFailure,
    failure_stage,
    tag_failure_stage,
)
from repro.faults.inject import (
    DISABLED_FAULTS,
    FAULTS_ENV_VAR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.faults.journal import IngestJournal, JournalRecord

__all__ = [
    "DISABLED_FAULTS",
    "FAULTS_ENV_VAR",
    "FailureEvent",
    "FailureLog",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "IngestJournal",
    "JournalRecord",
    "TrajectoryFailure",
    "failure_stage",
    "tag_failure_stage",
]
