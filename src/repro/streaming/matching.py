"""Windowed (streaming) global map matching with bounded emission lag.

Algorithm 2's global score aggregates local scores over a context window that
walks outwards from the focal point and stops at the first neighbour leaving
the view radius ``R``.  The forward half of that window is therefore closed
the moment one later point at distance ``>= R`` has been observed — so a
streaming matcher can emit the *final* match for a point long before the move
episode ends, with a lag bounded by the spatial extent of the window rather
than the episode length.

:class:`WindowedMapMatcher` exploits exactly that: it computes each point's
local scores on arrival, holds the point until its forward window closes (or
:meth:`finish` marks the end of the episode) and then emits a
:class:`~repro.lines.map_matching.MatchedPoint` that is identical to what
:meth:`GlobalMapMatcher.match` produces on the full point sequence (parity
tested).  Points observed so far are retained until :meth:`finish` because a
later point's *backward* walk may reach arbitrarily far into a dense cluster;
memory is thus bounded by the episode, the same as the batch matcher.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.arrays import GrowableArray
from repro.core.config import MapMatchingConfig
from repro.core.errors import DataQualityError
from repro.core.places import LineOfInterest
from repro.core.points import SpatioTemporalPoint
from repro.lines.map_matching import CoordinateArrays, GlobalMapMatcher, MatchedPoint
from repro.lines.road_network import RoadNetwork


class WindowedMapMatcher:
    """Streaming wrapper around the global map-matching algorithm.

    Feed the points of one move episode in order with :meth:`push`; each call
    returns the matches whose kernel window became fully observed.  Call
    :meth:`finish` at the end of the episode to flush the pending tail and
    reset the matcher for the next episode.

    Under the ``numpy`` backend each pushed fix is also appended to growable
    coordinate buffers whose views feed the exact batch kernels
    :meth:`GlobalMapMatcher.match` uses, so streaming and batch matching stay
    byte-identical per backend.
    """

    def __init__(
        self,
        network: RoadNetwork,
        config: MapMatchingConfig = MapMatchingConfig(),
        backend: str = "numpy",
        index_backend: str = "tree",
    ):
        self._matcher = GlobalMapMatcher(
            network, config, backend=backend, index_backend=index_backend
        )
        self._config = config
        self._backend = backend
        self._index_backend = index_backend
        self._points: List[SpatioTemporalPoint] = []
        self._local: List[Dict[str, Tuple[float, LineOfInterest]]] = []
        self._xs = GrowableArray()
        self._ys = GrowableArray()
        self._emitted = 0
        self._scan = 1  # next forward index to test for closing the head's window

    def _coords(self) -> Optional[CoordinateArrays]:
        """Filled-prefix coordinate views for the vectorized kernels."""
        if self._backend != "numpy":
            return None
        return (self._xs.view(), self._ys.view())

    @property
    def matcher(self) -> GlobalMapMatcher:
        """The underlying batch matcher (shared scoring code)."""
        return self._matcher

    @property
    def config(self) -> MapMatchingConfig:
        """The active map-matching configuration."""
        return self._config

    @property
    def pending_count(self) -> int:
        """Points pushed but not yet emitted (the current lag)."""
        return len(self._points) - self._emitted

    # ------------------------------------------------------------------ feed
    def push(
        self,
        point: SpatioTemporalPoint,
        local_scores: Optional[Dict[str, Tuple[float, LineOfInterest]]] = None,
    ) -> List[MatchedPoint]:
        """Feed the next point of the episode; returns newly final matches.

        ``local_scores`` lets a caller hand in the point's precomputed
        Equation 2 scores (the micro-batched flat-index path of
        :meth:`match_stream`); when omitted they are computed here, one index
        query per point.  Both paths produce identical scores, so mixing them
        within an episode is safe.
        """
        self._points.append(point)
        self._local.append(
            local_scores if local_scores is not None else self._matcher.local_scores(point)
        )
        self._xs.append(point.x)
        self._ys.append(point.y)
        return self._drain(closed=False)

    def finish(self) -> List[MatchedPoint]:
        """Flush the pending tail and reset for the next episode."""
        remaining = self._drain(closed=True)
        self._points = []
        self._local = []
        self._xs.clear()
        self._ys.clear()
        self._emitted = 0
        self._scan = 1
        return remaining

    def match_stream(self, points: List[SpatioTemporalPoint]) -> List[MatchedPoint]:
        """Convenience: push every point of a complete episode, then finish.

        Under the flat index backend the Equation 2 local scores of the whole
        episode are precomputed with one batch index query (this is how the
        streaming engine consumes sealed move episodes); the emission
        schedule and every score stay identical to point-by-point pushing.
        """
        if self._points:
            raise DataQualityError("matcher already has a stream in flight")
        precomputed: Optional[List[Dict[str, Tuple[float, LineOfInterest]]]] = None
        if self._index_backend == "flat" and points:
            precomputed = self._matcher.batch_local_scores(points)
        matched: List[MatchedPoint] = []
        for index, point in enumerate(points):
            matched.extend(
                self.push(point, local_scores=precomputed[index] if precomputed else None)
            )
        matched.extend(self.finish())
        return matched

    # ------------------------------------------------------------- internals
    def _drain(self, closed: bool) -> List[MatchedPoint]:
        emitted: List[MatchedPoint] = []
        n = len(self._points)
        while self._emitted < n:
            index = self._emitted
            point = self._points[index]
            candidates = self._local[index]
            if not candidates:
                emitted.append(
                    MatchedPoint(point=point, segment=None, score=0.0, snapped=point.position)
                )
                self._advance_head()
                continue
            if self._config.use_global_score:
                if not closed and not self._forward_window_closed(index):
                    break  # wait for a point beyond the view radius
                scores = self._matcher.global_scores(
                    self._points, self._local, index, coords=self._coords()
                )
            else:
                scores = {seg_id: score for seg_id, (score, _) in candidates.items()}
            emitted.append(self._matcher.select_best(point, candidates, scores))
            self._advance_head()
        return emitted

    def _forward_window_closed(self, index: int) -> bool:
        """True once a point at distance ``>= R`` after ``index`` was observed."""
        center = self._points[index].position
        radius = self._config.context_radius
        while self._scan < len(self._points):
            if center.distance_to(self._points[self._scan].position) >= radius:
                return True
            self._scan += 1
        return False

    def _advance_head(self) -> None:
        self._emitted += 1
        # The new head's forward window is re-scanned from just after it.
        self._scan = self._emitted + 1
