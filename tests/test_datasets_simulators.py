"""Unit tests for the taxi, private car, people and ground-truth simulators."""

from __future__ import annotations

import pytest

from repro.datasets.people import COMMUTE_STYLES, PersonSimulator
from repro.datasets.seattle import GroundTruthDrive, GroundTruthDriveGenerator
from repro.datasets.vehicles import (
    PRIVATE_CAR_PURPOSE_MIX,
    PrivateCarSimulator,
    TaxiFleetSimulator,
)


class TestTaxiFleet:
    def test_one_trajectory_per_taxi_per_day(self, world):
        dataset = TaxiFleetSimulator(world, taxi_count=2, days=2, fares_per_day=2, seed=5).generate()
        assert len(dataset.trajectories) == 4
        assert len(dataset.object_ids) == 2

    def test_trajectories_are_time_ordered_and_nonempty(self, taxi_dataset):
        for trajectory in taxi_dataset.trajectories:
            times = [point.t for point in trajectory]
            assert times == sorted(times)
            assert len(trajectory) > 50

    def test_truth_segments_align_with_points(self, taxi_dataset):
        for trajectory in taxi_dataset.trajectories:
            truth = taxi_dataset.truth_segments[trajectory.trajectory_id]
            assert len(truth) == len(trajectory)

    def test_taxi_points_stay_inside_world(self, world, taxi_dataset):
        bounds = world.bounds.expanded(100.0)
        for trajectory in taxi_dataset.trajectories:
            for point in trajectory.points[::25]:
                assert bounds.contains_point(point.position)

    def test_generation_is_deterministic(self, world):
        a = TaxiFleetSimulator(world, taxi_count=1, days=1, fares_per_day=2, seed=9).generate()
        b = TaxiFleetSimulator(world, taxi_count=1, days=1, fares_per_day=2, seed=9).generate()
        assert a.gps_record_count == b.gps_record_count
        assert a.trajectories[0][0].as_tuple() == b.trajectories[0][0].as_tuple()

    def test_different_seeds_differ(self, world):
        a = TaxiFleetSimulator(world, taxi_count=1, days=1, fares_per_day=2, seed=9).generate()
        b = TaxiFleetSimulator(world, taxi_count=1, days=1, fares_per_day=2, seed=10).generate()
        assert a.trajectories[0][5].as_tuple() != b.trajectories[0][5].as_tuple()


class TestPrivateCars:
    def test_one_trajectory_per_car(self, car_dataset):
        assert len(car_dataset.trajectories) >= 6
        assert all(t.trajectory_id.endswith("day0") for t in car_dataset.trajectories)

    def test_stop_purposes_recorded(self, car_dataset):
        assert car_dataset.stop_purposes
        for trajectory_id, purposes in car_dataset.stop_purposes.items():
            assert all(purpose in PRIVATE_CAR_PURPOSE_MIX for purpose in purposes)

    def test_purpose_mix_sums_to_one(self):
        assert sum(PRIVATE_CAR_PURPOSE_MIX.values()) == pytest.approx(1.0)

    def test_sampling_period_is_coarse(self, car_dataset):
        trajectory = car_dataset.trajectories[0]
        assert trajectory.average_sampling_period() == pytest.approx(40.0, abs=2.0)


class TestPeople:
    def test_profiles_cycle_commute_styles(self, world):
        simulator = PersonSimulator(world, user_count=5, days_per_user=1)
        profiles = simulator.build_profiles()
        assert [profile.commute_style for profile in profiles[:4]] == list(COMMUTE_STYLES)
        assert profiles[4].commute_style == COMMUTE_STYLES[0]

    def test_daily_trajectories_per_user(self, people_dataset):
        for user, trajectories in people_dataset.trajectories_by_user.items():
            assert 1 <= len(trajectories) <= 1
            for trajectory in trajectories:
                assert trajectory.object_id == user

    def test_truth_segments_align(self, people_dataset):
        # Variable sampling thins the stream, so truth lists are at least as long.
        for trajectory in people_dataset.all_trajectories:
            truth = people_dataset.truth_segments[trajectory.trajectory_id]
            assert len(truth) >= len(trajectory)

    def test_people_have_more_noise_and_gaps_than_vehicles(self, people_dataset, taxi_dataset):
        person = people_dataset.all_trajectories[0]
        taxi = taxi_dataset.trajectories[0]
        assert person.average_sampling_period() > taxi.average_sampling_period()

    def test_metro_user_trajectory_contains_metro_truth(self, people_dataset):
        metro_users = [
            user
            for user, profile in people_dataset.profiles.items()
            if profile.commute_style == "metro"
        ]
        assert metro_users
        found_metro = False
        for user in metro_users:
            for trajectory in people_dataset.trajectories_by_user[user]:
                truth = people_dataset.truth_segments[trajectory.trajectory_id]
                if any(segment and segment.startswith("metro") for segment in truth):
                    found_metro = True
        assert found_metro


class TestGroundTruthDrive:
    def test_lengths_align(self, ground_truth_drive):
        assert len(ground_truth_drive.trajectory) == len(ground_truth_drive.truth_segment_ids)

    def test_mostly_on_road(self, ground_truth_drive):
        assert ground_truth_drive.matched_fraction_possible > 0.95

    def test_mismatched_lengths_rejected(self, ground_truth_drive):
        with pytest.raises(ValueError):
            GroundTruthDrive(
                trajectory=ground_truth_drive.trajectory,
                truth_segment_ids=ground_truth_drive.truth_segment_ids[:-1],
            )

    def test_noise_parameter_changes_positions(self, world):
        generator = GroundTruthDriveGenerator(world, waypoint_count=3, seed=41)
        clean = generator.generate(noise_sigma=0.0)
        noisy = generator.generate(noise_sigma=20.0)
        assert clean.trajectory[10].as_tuple() != noisy.trajectory[10].as_tuple()

    def test_deterministic_for_same_seed(self, world):
        a = GroundTruthDriveGenerator(world, waypoint_count=3, seed=41).generate()
        b = GroundTruthDriveGenerator(world, waypoint_count=3, seed=41).generate()
        assert a.trajectory[5].as_tuple() == b.trajectory[5].as_tuple()
        assert a.truth_segment_ids == b.truth_segment_ids
