"""LatencyProfile / StageTimer edge cases (Figure 17 vocabulary).

These tests pin down the behaviours the telemetry subsystem leans on:
``merge()`` with overlapping stages (the registry's absorption path),
``percentile()`` fraction bounds, and — the load-bearing one — **bitwise**
equality of the Figure 17 means when profiles are absorbed through the
:class:`~repro.obs.metrics.MetricsRegistry` histogram backend instead of
being merged directly.
"""

from __future__ import annotations

import pytest

from repro.analytics.latency import FIGURE17_STAGES, LatencyProfile, StageTimer
from repro.obs.metrics import MetricsRegistry


# ------------------------------------------------------------------- merge()
def test_merge_with_overlapping_stages_extends_in_order():
    left = LatencyProfile()
    left.add("map_match", 0.1)
    left.add("map_match", 0.2)
    left.add("landuse_join", 0.5)
    right = LatencyProfile()
    right.add("map_match", 0.3)
    right.add("poi_annotation", 0.9)

    left.merge(right)
    assert left.samples["map_match"] == [0.1, 0.2, 0.3]
    assert left.samples["landuse_join"] == [0.5]
    assert left.samples["poi_annotation"] == [0.9]
    # merge() reads, never mutates, the other profile
    assert right.samples == {"map_match": [0.3], "poi_annotation": [0.9]}


def test_merge_preserves_stage_insertion_order():
    profile = LatencyProfile()
    for stage in FIGURE17_STAGES:
        profile.add(stage, 0.01)
    other = LatencyProfile()
    other.add("poi_annotation", 0.02)
    other.add("compute_episode", 0.03)
    profile.merge(other)
    # overlapping stages keep their original position; new ones append
    assert profile.stages() == list(FIGURE17_STAGES) + ["poi_annotation"]


def test_merge_empty_profiles_is_a_noop():
    profile = LatencyProfile()
    profile.merge(LatencyProfile())
    assert profile.stages() == []
    profile.add("map_match", 0.1)
    profile.merge(LatencyProfile())
    assert profile.samples["map_match"] == [0.1]


# -------------------------------------------------------------- percentile()
def test_percentile_fraction_bounds():
    profile = LatencyProfile()
    profile.add("map_match", 0.1)
    for bad in (0.0, -0.1, 1.0001, 2.0):
        with pytest.raises(ValueError):
            profile.percentile("map_match", bad)
    # the closed upper bound is valid and returns the maximum sample
    profile.add("map_match", 0.4)
    assert profile.percentile("map_match", 1.0) == 0.4


def test_percentile_nearest_rank_and_unsampled_stage():
    profile = LatencyProfile()
    for value in (0.5, 0.1, 0.3, 0.2, 0.4):
        profile.add("store_episode", value)
    # nearest-rank over the sorted samples: always an observed value
    assert profile.percentile("store_episode", 0.2) == 0.1
    assert profile.percentile("store_episode", 0.5) == 0.3
    assert profile.percentile("store_episode", 0.95) == 0.5
    assert profile.p95("store_episode") == 0.5
    # tiny fractions clamp to the first rank, not rank zero
    assert profile.percentile("store_episode", 1e-9) == 0.1
    assert profile.percentile("never_sampled", 0.5) == 0.0


def test_add_rejects_negative_samples():
    profile = LatencyProfile()
    with pytest.raises(ValueError):
        profile.add("map_match", -1e-9)


# --------------------------------------- histogram-backend absorption parity
def test_figure17_means_bitwise_identical_through_registry_backend():
    """Absorbing per-trajectory profiles into the registry's LatencyProfile
    backend must reproduce the direct-merge means **bitwise** — the Figure 17
    numbers may not move by a single ulp when observability is enabled."""
    per_trajectory = []
    for index in range(7):
        profile = LatencyProfile()
        for offset, stage in enumerate(FIGURE17_STAGES):
            # awkward floats on purpose: bitwise equality must survive them
            profile.add(stage, (index + 1) * 0.1 + offset * 1e-7 + 1e-13)
            profile.add(stage, 0.3 / (index + 3))
        per_trajectory.append(profile)

    direct = LatencyProfile()
    registry = MetricsRegistry()
    for profile in per_trajectory:
        direct.merge(profile)
        registry.observe_latency(profile)

    absorbed = registry.stage_latency
    assert absorbed.samples == direct.samples
    for stage in FIGURE17_STAGES:
        # exact float comparison, deliberately not pytest.approx
        assert absorbed.mean(stage) == direct.mean(stage)
        assert absorbed.total(stage) == direct.total(stage)
        assert absorbed.p95(stage) == direct.p95(stage)
    assert absorbed.means() == direct.means()


# ---------------------------------------------------------------- StageTimer
def test_stage_timer_profile_is_optional():
    fresh = StageTimer()
    assert isinstance(fresh.profile, LatencyProfile)
    assert fresh.profile.stages() == []

    shared = LatencyProfile()
    bound = StageTimer(shared)
    assert bound.profile is shared
    with bound.stage("compute_episode"):
        pass
    bound.record("map_match", 0.25)
    assert shared.count("compute_episode") == 1
    assert shared.samples["map_match"] == [0.25]


def test_stage_timer_records_on_exception():
    timer = StageTimer()
    with pytest.raises(RuntimeError):
        with timer.stage("landuse_join"):
            raise RuntimeError("stage body failed")
    assert timer.profile.count("landuse_join") == 1
