"""Shared fixtures for the benchmark harness.

Every benchmark reproduces one table or figure of the paper: it times the
relevant computation with pytest-benchmark and prints (and saves under
``results/``) the same rows or series the paper reports.  Dataset sizes are
scaled down from the paper's multi-month collections so the whole harness runs
in minutes on a laptop; EXPERIMENTS.md records the scaling next to every
experiment.
"""

from __future__ import annotations

import json
import os
import platform
import random
import sys
from pathlib import Path
from typing import Dict, Optional

import numpy as np
import pytest

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

RESULTS_DIR = _ROOT / "results"

from repro.core import AnnotationSources, PipelineConfig, SeMiTriPipeline  # noqa: E402
from repro.core.cpu import effective_cpu_count  # noqa: E402
from repro.datasets import (  # noqa: E402
    GroundTruthDriveGenerator,
    PersonSimulator,
    PrivateCarSimulator,
    SyntheticWorld,
    TaxiFleetSimulator,
    WorldConfig,
)

#: One fixed seed for every global RNG a benchmark might (indirectly) touch,
#: reset before each test so sidecars are reproducible run-to-run and the
#: regression gate compares identical workloads.
_BENCH_SEED = 20110325


@pytest.fixture(autouse=True)
def _seed_rngs():
    """Deterministically seed the global RNGs before every benchmark."""
    random.seed(_BENCH_SEED)
    np.random.seed(_BENCH_SEED)


def machine_metadata() -> Dict[str, object]:
    """The environment facts the bench-regression gate compares like with like."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        # What this process may actually run on (cgroup/affinity-aware):
        # multi-core speedup claims are only meaningful against this number.
        "effective_cores": effective_cpu_count(),
        "machine": platform.machine(),
        "system": platform.system(),
        "numpy": np.__version__,
    }


def save_result(
    name: str,
    text: str,
    data: object = None,
    metrics: Optional[Dict[str, float]] = None,
    telemetry: Optional[Dict[str, object]] = None,
) -> None:
    """Write a rendered table/series to ``results/<name>.txt`` and echo it.

    A machine-readable ``results/<name>.json`` sidecar is always written too,
    so perf trajectories can be diffed across PRs without parsing the tables;
    benchmarks that pass structured ``data`` (numbers, series, parameters) get
    it embedded verbatim under the ``"data"`` key.  ``metrics`` is the
    contract with ``scripts/check_bench_regression.py``: a flat name →
    higher-is-better throughput mapping the CI bench gate compares against
    the committed baselines.  ``telemetry`` is observability context — span
    counts, registry snapshots — recorded for inspection only; the regression
    gate explicitly ignores it.  Every sidecar also records the machine facts
    of :func:`machine_metadata` so regressions are compared like with like.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    json_path = RESULTS_DIR / f"{name}.json"
    payload = {
        "name": name,
        "text": text.splitlines(),
        "data": data,
        "metrics": metrics,
        "telemetry": telemetry if telemetry is not None else {"enabled": False},
        "machine": machine_metadata(),
    }
    json_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\n{text}\n[saved to {path} and {json_path}]")


@pytest.fixture(scope="session")
def world() -> SyntheticWorld:
    """The benchmark world (paper-scale layout, laptop-scale data)."""
    return SyntheticWorld(WorldConfig(size=8000.0, poi_count=2000, seed=7))


@pytest.fixture(scope="session")
def annotation_sources(world) -> AnnotationSources:
    return AnnotationSources(
        regions=world.region_source(),
        road_network=world.road_network(),
        pois=world.poi_source(),
    )


@pytest.fixture(scope="session")
def taxi_dataset(world):
    """Stand-in for the Lausanne taxi dataset (Table 1 row 1)."""
    return TaxiFleetSimulator(
        world, taxi_count=2, days=3, fares_per_day=10, sample_interval=1.0, seed=11
    ).generate()


@pytest.fixture(scope="session")
def car_dataset(world):
    """Stand-in for the Milan private-car dataset (Table 1 row 2)."""
    return PrivateCarSimulator(world, car_count=60, trips_per_car=2, seed=23).generate()


@pytest.fixture(scope="session")
def people_dataset(world):
    """Stand-in for the Nokia smartphone dataset (Table 2)."""
    return PersonSimulator(world, user_count=6, days_per_user=3, seed=31).generate()


@pytest.fixture(scope="session")
def drive_generator(world):
    """Generator for ground-truth drives (stand-in for Krumm's Seattle data)."""
    return GroundTruthDriveGenerator(
        world, waypoint_count=8, sample_interval=2.0, noise_sigma=10.0, seed=41
    )


@pytest.fixture(scope="session")
def vehicle_pipeline() -> SeMiTriPipeline:
    return SeMiTriPipeline(PipelineConfig.for_vehicles())


@pytest.fixture(scope="session")
def people_pipeline() -> SeMiTriPipeline:
    return SeMiTriPipeline(PipelineConfig.for_people())
