"""Unit tests for raw trajectories and spatio-temporal points (Definition 1)."""

from __future__ import annotations

import pytest

from repro.core.errors import DataQualityError
from repro.core.points import RawTrajectory, SpatioTemporalPoint, build_trajectory


def _simple_trajectory() -> RawTrajectory:
    return build_trajectory(
        [(0, 0, 0), (3, 4, 10), (6, 8, 20), (6, 8, 30)], object_id="obj", trajectory_id="t0"
    )


class TestSpatioTemporalPoint:
    def test_position_and_tuple(self):
        point = SpatioTemporalPoint(1.0, 2.0, 3.0)
        assert point.position.as_tuple() == (1.0, 2.0)
        assert point.as_tuple() == (1.0, 2.0, 3.0)

    def test_time_delta(self):
        a = SpatioTemporalPoint(0, 0, 10)
        b = SpatioTemporalPoint(0, 0, 25)
        assert a.time_delta(b) == 15
        assert b.time_delta(a) == -15

    def test_speed_to(self):
        a = SpatioTemporalPoint(0, 0, 0)
        b = SpatioTemporalPoint(3, 4, 5)
        assert a.speed_to(b) == pytest.approx(1.0)

    def test_speed_with_zero_time_delta_is_zero(self):
        a = SpatioTemporalPoint(0, 0, 0)
        b = SpatioTemporalPoint(3, 4, 0)
        assert a.speed_to(b) == 0.0


class TestRawTrajectory:
    def test_empty_trajectory_rejected(self):
        with pytest.raises(DataQualityError):
            RawTrajectory([], object_id="x")

    def test_non_monotonic_timestamps_rejected(self):
        points = [SpatioTemporalPoint(0, 0, 10), SpatioTemporalPoint(0, 0, 5)]
        with pytest.raises(DataQualityError):
            RawTrajectory(points)

    def test_basic_accessors(self):
        trajectory = _simple_trajectory()
        assert len(trajectory) == 4
        assert trajectory.start_time == 0
        assert trajectory.end_time == 30
        assert trajectory.duration == 30
        assert trajectory.object_id == "obj"
        assert trajectory.trajectory_id == "t0"

    def test_length_is_path_length(self):
        trajectory = _simple_trajectory()
        assert trajectory.length() == pytest.approx(10.0)

    def test_average_sampling_period(self):
        trajectory = _simple_trajectory()
        assert trajectory.average_sampling_period() == pytest.approx(10.0)

    def test_single_point_sampling_period_is_zero(self):
        trajectory = build_trajectory([(0, 0, 0)])
        assert trajectory.average_sampling_period() == 0.0

    def test_bounding_box(self):
        box = _simple_trajectory().bounding_box()
        assert box.min_x == 0 and box.max_x == 6
        assert box.min_y == 0 and box.max_y == 8

    def test_iteration_and_indexing(self):
        trajectory = _simple_trajectory()
        assert trajectory[0].t == 0
        assert [point.t for point in trajectory] == [0, 10, 20, 30]

    def test_slice(self):
        trajectory = _simple_trajectory()
        part = trajectory.slice(1, 3)
        assert len(part) == 2
        assert part[0].t == 10
        assert part.object_id == "obj"

    def test_slice_invalid_range_raises(self):
        trajectory = _simple_trajectory()
        with pytest.raises(IndexError):
            trajectory.slice(3, 1)
        with pytest.raises(IndexError):
            trajectory.slice(0, 10)

    def test_points_between(self):
        trajectory = _simple_trajectory()
        selected = trajectory.points_between(5, 25)
        assert [point.t for point in selected] == [10, 20]

    def test_default_trajectory_id(self):
        trajectory = RawTrajectory([SpatioTemporalPoint(0, 0, 0)], object_id="car7")
        assert trajectory.trajectory_id == "car7-0"

    def test_equal_timestamps_allowed(self):
        points = [SpatioTemporalPoint(0, 0, 5), SpatioTemporalPoint(1, 1, 5)]
        trajectory = RawTrajectory(points)
        assert trajectory.duration == 0
