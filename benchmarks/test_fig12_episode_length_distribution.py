"""Figure 12: log-log distribution of GPS-record counts per trajectory/move/stop.

The paper plots, for the people dataset, how many trajectories, moves and
stops contain a given number of GPS records (log-log axes): moves and
trajectories extend to large record counts while stops concentrate at small
counts.  This benchmark reproduces the three histograms over logarithmic bins.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analytics.distributions import log_log_histogram
from repro.analytics.reporting import render_series
from repro.analytics.statistics import episode_statistics
from repro.preprocessing.stops import segment_many


def test_fig12_episode_length_distribution(benchmark, people_dataset, people_pipeline):
    trajectories = people_dataset.all_trajectories

    def compute():
        episodes = segment_many(trajectories, people_pipeline.config.stop_move)
        return episode_statistics(trajectories, episodes)

    stats = benchmark.pedantic(compute, rounds=1, iterations=1)

    series = {
        "trajectory": [(float(b), float(c)) for b, c in log_log_histogram(stats.trajectory_lengths)],
        "move": [(float(b), float(c)) for b, c in log_log_histogram(stats.move_lengths)],
        "stop": [(float(b), float(c)) for b, c in log_log_histogram(stats.stop_lengths)],
    }
    header = (
        "Figure 12 - Trajectory context computation (log-log length distribution)\n"
        f"{stats.gps_record_count:,} GPS records -> {stats.trajectory_count} trajectories, "
        f"{stats.move_count} moves, {stats.stop_count} stops"
    )
    text = render_series(series, title=header, x_label="#GPS records (bin)", y_label="count")
    save_result("fig12_episode_length_distribution", text)

    assert stats.stop_count > 0 and stats.move_count > 0
    # Stops are shorter than moves on average (people dwell indoors with GPS loss).
    mean_stop = sum(stats.stop_lengths) / stats.stop_count
    mean_move = sum(stats.move_lengths) / stats.move_count
    assert mean_stop < mean_move * 2.0
