"""Unit tests for the road network model."""

from __future__ import annotations

import pytest

from repro.core.errors import SourceError
from repro.geometry.primitives import Point
from repro.lines.road_network import ROAD_TYPE_PROFILES, RoadNetwork, make_road_segment


def _grid_network() -> RoadNetwork:
    """A 2x2 block grid of 100 m streets plus one metro segment."""
    segments = []
    for x in (0, 100, 200):
        for y in (0, 100):
            segments.append(
                make_road_segment(f"v-{x}-{y}", "v", Point(x, y), Point(x, y + 100), "road")
            )
    for y in (0, 100, 200):
        for x in (0, 100):
            segments.append(
                make_road_segment(f"h-{x}-{y}", "h", Point(x, y), Point(x + 100, y), "road")
            )
    segments.append(
        make_road_segment("metro-0", "metro", Point(0, 250), Point(200, 250), "metro_line")
    )
    return RoadNetwork(segments, name="grid")


class TestConstruction:
    def test_empty_network_rejected(self):
        with pytest.raises(SourceError):
            RoadNetwork([], name="empty")

    def test_duplicate_segment_ids_rejected(self):
        seg = make_road_segment("dup", "a", Point(0, 0), Point(1, 0))
        with pytest.raises(SourceError):
            RoadNetwork([seg, seg])

    def test_make_road_segment_applies_type_profile(self):
        metro = make_road_segment("m", "metro", Point(0, 0), Point(10, 0), "metro_line")
        assert metro.allowed_modes == tuple(ROAD_TYPE_PROFILES["metro_line"]["allowed_modes"])
        assert metro.speed_limit == ROAD_TYPE_PROFILES["metro_line"]["speed_limit"]

    def test_unknown_type_falls_back_to_road_profile(self):
        other = make_road_segment("x", "x", Point(0, 0), Point(10, 0), "dirt_track")
        assert other.allowed_modes == tuple(ROAD_TYPE_PROFILES["road"]["allowed_modes"])

    def test_basic_accessors(self):
        network = _grid_network()
        assert len(network) == 13
        assert network.total_length() == pytest.approx(13 * 100 + 100)
        assert set(network.road_types()) == {"metro_line", "road"}
        assert network.segment("metro-0").road_type == "metro_line"

    def test_unknown_segment_raises(self):
        with pytest.raises(SourceError):
            _grid_network().segment("nope")


class TestCandidateSelection:
    def test_candidates_sorted_by_distance(self):
        network = _grid_network()
        candidates = network.candidate_segments(Point(50, 10), radius=60)
        distances = [distance for distance, _ in candidates]
        assert distances == sorted(distances)
        assert candidates[0][1].place_id == "h-0-0"

    def test_candidate_radius_limits_results(self):
        network = _grid_network()
        nearby = network.candidate_segments(Point(50, 10), radius=15)
        assert {segment.place_id for _, segment in nearby} == {"h-0-0"}

    def test_max_candidates(self):
        network = _grid_network()
        limited = network.candidate_segments(Point(100, 100), radius=200, max_candidates=3)
        assert len(limited) == 3

    def test_nearest_segment(self):
        network = _grid_network()
        distance, segment = network.nearest_segment(Point(50, -30))
        assert segment.place_id == "h-0-0"
        assert distance == pytest.approx(30.0)


class TestConnectivity:
    def test_segments_sharing_endpoint_are_connected(self):
        network = _grid_network()
        assert network.are_connected("h-0-0", "v-100-0")
        assert network.are_connected("h-0-0", "h-0-0")

    def test_disconnected_segments(self):
        network = _grid_network()
        assert not network.are_connected("h-0-0", "metro-0")

    def test_neighbors(self):
        network = _grid_network()
        neighbors = network.neighbors("h-0-0")
        assert "v-0-0" in neighbors and "v-100-0" in neighbors
        assert "metro-0" not in neighbors

    def test_connectivity_distance(self):
        network = _grid_network()
        assert network.connectivity_distance("h-0-0", "h-0-0") == 0
        assert network.connectivity_distance("h-0-0", "v-100-0") == 1
        assert network.connectivity_distance("h-0-0", "metro-0", max_hops=4) is None

    def test_connectivity_distance_two_hops(self):
        network = _grid_network()
        hops = network.connectivity_distance("h-0-0", "h-100-100", max_hops=4)
        assert hops is not None and hops >= 2


class TestWorldNetwork:
    def test_world_network_has_expected_road_types(self, road_network):
        types = set(road_network.road_types())
        assert {"road", "highway", "metro_line", "path_way"} <= types

    def test_world_network_bounds_inside_world(self, world, road_network):
        assert world.bounds.contains_box(road_network.bounds())

    def test_world_streets_are_connected(self, road_network):
        streets = [s for s in road_network.segments if s.road_type == "road"]
        sample = streets[0]
        assert road_network.neighbors(sample.place_id)
