"""Buffered, shard-aware writer for the semantic trajectory store.

Worker processes cannot share the store's SQLite connection, so persistence
under the parallel runner is split in two: shards *compute* annotations and
hand their results (in any completion order) to a :class:`ShardedStoreWriter`,
which buffers them per shard and, on :meth:`commit`, replays everything in the
original input order through the store's single-transaction batched
``executemany`` path.  The committed rows — contents, order and autoincrement
identifiers — are therefore indistinguishable from a single-writer sequential
run, no matter how the shards interleaved.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

from repro.core.episodes import Episode
from repro.core.pipeline import PipelineResult
from repro.core.points import RawTrajectory
from repro.store.store import SemanticTrajectoryStore


class ShardedStoreWriter:
    """Collects per-shard annotation results and commits them in stable order."""

    def __init__(self, store: SemanticTrajectoryStore, store_points: bool = True):
        self._store = store
        self._store_points = store_points
        self._lock = threading.Lock()
        # shard index -> [(input order, trajectory, episodes)]
        self._buffers: Dict[int, List[Tuple[int, RawTrajectory, List[Episode]]]] = {}
        self.committed_total = 0

    @property
    def store(self) -> SemanticTrajectoryStore:
        """The store the buffered rows will be committed to."""
        return self._store

    @property
    def pending_count(self) -> int:
        """Buffered trajectories not yet committed."""
        with self._lock:
            return sum(len(buffer) for buffer in self._buffers.values())

    @property
    def shard_indexes(self) -> List[int]:
        """Shards with buffered rows, in ascending order."""
        with self._lock:
            return sorted(self._buffers)

    # ------------------------------------------------------------------ feed
    def add(
        self,
        shard_index: int,
        order_index: int,
        trajectory: RawTrajectory,
        episodes: Sequence[Episode],
    ) -> None:
        """Buffer one annotated trajectory produced by ``shard_index``."""
        with self._lock:
            self._buffers.setdefault(shard_index, []).append(
                (order_index, trajectory, list(episodes))
            )

    def add_result(self, shard_index: int, order_index: int, result: PipelineResult) -> None:
        """Buffer one :class:`PipelineResult` produced by ``shard_index``."""
        self.add(shard_index, order_index, result.trajectory, result.episodes)

    # ---------------------------------------------------------------- commit
    def commit(self) -> List[List[int]]:
        """Write every buffered row in input order; returns episode ids per trajectory.

        The merged batch goes through
        :meth:`SemanticTrajectoryStore.save_annotated_trajectories`, i.e. one
        transaction; on failure nothing is written and the buffers are kept so
        the caller can retry or inspect them.
        """
        with self._lock:
            merged: List[Tuple[int, RawTrajectory, List[Episode]]] = []
            for buffer in self._buffers.values():
                merged.extend(buffer)
            merged.sort(key=lambda item: item[0])
            episode_ids = self._store.save_annotated_trajectories(
                ((trajectory, episodes) for _, trajectory, episodes in merged),
                store_points=self._store_points,
            )
            self._buffers.clear()
            self.committed_total += len(merged)
            return episode_ids
