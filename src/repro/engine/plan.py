"""Compilation of pipeline configuration + sources into an executable plan.

A :class:`Plan` is the explicit form of the Figure 2 dataflow: an ordered
tuple of typed :class:`~repro.engine.stages.Stage` objects (plus the raw
stream preprocessing chain), compiled once from a
:class:`~repro.core.config.PipelineConfig` and the available
:class:`~repro.core.pipeline.AnnotationSources`.  Layers whose source is
missing are simply not compiled in — the "skipped layer" behaviour the paper
describes for partially available third-party data — and the compiler checks
that every stage's declared inputs are produced by an earlier stage, so an
ill-wired custom plan fails at compile time instead of mid-run.

The same plan can be handed to any executor in
:mod:`repro.engine.executors`: the sequential in-process executor, the
sharded process-pool executor or the streaming micro-batch executor.  All
three produce canonically byte-identical results (see
:mod:`repro.parallel.canonical`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.config import FailurePolicy, PipelineConfig
from repro.core.errors import ConfigurationError
from repro.core.pipeline import AnnotationSources, LayerAnnotators
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.faults.failures import FailureLog
from repro.faults.inject import DISABLED_FAULTS, FaultInjector
from repro.engine.stages import (
    CleanStage,
    ComputeEpisodesStage,
    IdentifyStage,
    MapMatchStage,
    PoiAnnotationStage,
    PreprocessingStage,
    RegionJoinStage,
    Stage,
    StoreEpisodesStage,
    StoreTrajectoryStage,
)
from repro.obs.runtime import DISABLED, Telemetry
from repro.store.store import SemanticTrajectoryStore

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.parallel.context import GeoContext

#: The annotation layers a plan can compile, in dataflow order.
ANNOTATION_LAYERS: Tuple[str, ...] = ("region", "line", "point")


@dataclass
class Plan:
    """An executable description of the annotation dataflow.

    ``stages`` is the per-trajectory dataflow every executor runs;
    ``preprocessing`` is the raw-stream chain (clean, identify) that turns a
    GPS point stream into the raw trajectories the stages consume.  ``store``
    and ``persist`` describe the write-back target; when ``persist`` is false
    the compiled stages contain no write-back at all.
    """

    config: PipelineConfig
    annotators: LayerAnnotators
    stages: Tuple[Stage, ...]
    preprocessing: Tuple[PreprocessingStage, ...]
    sources: Optional[AnnotationSources] = None
    store: Optional[SemanticTrajectoryStore] = None
    persist: bool = False
    telemetry: Telemetry = field(default=DISABLED, repr=False, compare=False)
    """Observability runtime selected by ``config.observability``.

    The shared no-op :data:`~repro.obs.runtime.DISABLED` singleton unless the
    configuration enables observability, in which case :meth:`compile` builds
    a live :class:`~repro.obs.runtime.Telemetry` and (when the plan persists)
    binds the store's transaction metrics to its registry.
    """
    faults: FaultInjector = field(default=DISABLED_FAULTS, repr=False, compare=False)
    """Deterministic fault injector consulted at the engine's chaos points.

    The shared no-op :data:`~repro.faults.inject.DISABLED_FAULTS` singleton
    unless ``SEMITRI_FAULTS`` (or an explicit injector handed to
    :meth:`compile`) arms a plan — production plans pay one attribute read
    per hook.
    """
    failure_log: Optional[FailureLog] = field(default=None, repr=False, compare=False)
    """Run-scoped failure reconciliation (counters, metrics, quarantine).

    Built by :meth:`compile` (bound to the plan's store and metrics registry)
    or shared across plans by callers that own the run — the parallel runner
    and the annotation service pass their own.
    """
    _context: Optional["GeoContext"] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------ compilation
    @classmethod
    def compile(
        cls,
        sources: Optional[AnnotationSources] = None,
        config: Optional[PipelineConfig] = None,
        annotators: Optional[LayerAnnotators] = None,
        store: Optional[SemanticTrajectoryStore] = None,
        persist: bool = False,
        layers: Optional[Sequence[str]] = None,
        faults: Optional[FaultInjector] = None,
        failure_log: Optional[FailureLog] = None,
    ) -> "Plan":
        """Compile a plan for the given configuration and sources.

        ``annotators`` may be passed to reuse an already-built bundle (its
        spatial indexes and HMM are the expensive part); otherwise the bundle
        is built from ``sources``.  ``layers`` restricts which annotation
        layers are compiled in (default: every layer whose annotator is
        available), which is how custom plans — e.g. a region-only pass —
        are expressed.
        """
        if config is None:
            config = PipelineConfig()
        if annotators is None:
            if sources is None:
                raise ConfigurationError("Plan.compile needs annotation sources or annotators")
            annotators = LayerAnnotators.build(sources, config)
        if layers is None:
            selected = set(ANNOTATION_LAYERS)
        else:
            selected = set(layers)
            unknown = selected.difference(ANNOTATION_LAYERS)
            if unknown:
                raise ConfigurationError(
                    f"unknown annotation layers {sorted(unknown)!r}; "
                    f"expected a subset of {list(ANNOTATION_LAYERS)}"
                )

        persist_enabled = persist and store is not None
        stages: List[Stage] = [ComputeEpisodesStage(config)]
        if persist_enabled:
            assert store is not None
            stages.append(StoreTrajectoryStage(store))
        if "region" in selected and annotators.region is not None:
            stages.append(RegionJoinStage(annotators.region))
        if "line" in selected and annotators.line is not None:
            stages.append(MapMatchStage(annotators.line, config))
        if "point" in selected and annotators.point is not None:
            stages.append(PoiAnnotationStage(annotators.point))
        if persist_enabled:
            assert store is not None
            stages.append(StoreEpisodesStage(store))

        telemetry = Telemetry.from_config(config.observability)
        if store is not None and telemetry.metrics is not None:
            store.bind_metrics(telemetry.metrics)
        if faults is None:
            faults = FaultInjector.from_env()
        if store is not None and faults.enabled:
            store.bind_faults(faults)
        if failure_log is None:
            failure_log = FailureLog(config.failure, store=store, registry=telemetry.metrics)
        plan = cls(
            config=config,
            annotators=annotators,
            stages=tuple(stages),
            preprocessing=(CleanStage(config), IdentifyStage(config)),
            sources=sources,
            store=store,
            persist=persist_enabled,
            telemetry=telemetry,
            faults=faults,
            failure_log=failure_log,
        )
        plan.validate()
        return plan

    @classmethod
    def from_context(
        cls,
        context: "GeoContext",
        store: Optional[SemanticTrajectoryStore] = None,
        persist: bool = False,
        layers: Optional[Sequence[str]] = None,
        faults: Optional[FaultInjector] = None,
        failure_log: Optional[FailureLog] = None,
    ) -> "Plan":
        """Compile a plan around an immutable :class:`GeoContext` snapshot.

        The snapshot's frozen indexes and prebuilt annotators are reused
        as-is, and :meth:`geo_context` returns the very same snapshot, so a
        process-pool executor can keep its worker pool warm across plans
        compiled from the same context.
        """
        plan = cls.compile(
            sources=context.sources,
            config=context.config,
            annotators=context.annotators,
            store=store,
            persist=persist,
            layers=layers,
            faults=faults,
            failure_log=failure_log,
        )
        plan._context = context
        return plan

    def validate(self) -> None:
        """Check the stage wiring: every declared input must be produced.

        ``trajectory`` is intrinsic (every work item starts with one); all
        other inputs must appear among the outputs of an earlier stage.
        """
        available = {"trajectory"}
        for stage in self.stages:
            missing = [name for name in stage.inputs if name not in available]
            if missing:
                raise ConfigurationError(
                    f"stage {stage.name!r} reads {missing!r} but no earlier "
                    f"stage produces it; stage order: {self.stage_names()}"
                )
            available.update(stage.outputs)

    # -------------------------------------------------------------- failures
    @property
    def failure_policy(self) -> FailurePolicy:
        """The failure policy this plan runs under (``config.failure``)."""
        return self.config.failure

    def ensure_failure_log(self) -> FailureLog:
        """The plan's failure log, created lazily for hand-built plans."""
        if self.failure_log is None:
            self.failure_log = FailureLog(self.config.failure, store=self.store)
        return self.failure_log

    # ------------------------------------------------------------- inspection
    def stage_names(self) -> List[str]:
        """The per-trajectory stage names, in execution order."""
        return [stage.name for stage in self.stages]

    def stage(self, name: str) -> Optional[Stage]:
        """The stage with the given name, if the plan contains one."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    def annotation_layers(self) -> List[str]:
        """Names of the annotation layers compiled into this plan."""
        layers = []
        if self.stage("landuse_join") is not None:
            layers.append("region")
        if self.stage("map_match") is not None:
            layers.append("line")
        if self.stage("poi_annotation") is not None:
            layers.append("point")
        return layers

    def describe(self) -> str:
        """Human-readable rendering of the compiled dataflow."""
        lines = ["preprocessing:"]
        for pre in self.preprocessing:
            lines.append(
                f"  {pre.name:<18} {', '.join(pre.inputs) or '-'} -> "
                f"{', '.join(pre.outputs) or '-'}"
            )
        lines.append("stages:")
        for stage in self.stages:
            marker = " [write-back]" if stage.writes_back else ""
            lines.append(
                f"  {stage.name:<18} {', '.join(stage.inputs) or '-'} -> "
                f"{', '.join(stage.outputs) or '-'}{marker}"
            )
        return "\n".join(lines)

    # -------------------------------------------------------------- execution
    def ingest(
        self, points: Sequence[SpatioTemporalPoint], object_id: str = "unknown"
    ) -> List[RawTrajectory]:
        """Run the preprocessing chain: clean the stream, split trajectories."""
        clean, identify = self.preprocessing
        assert isinstance(clean, CleanStage) and isinstance(identify, IdentifyStage)
        return identify.apply(clean.apply(points), object_id=object_id)

    def geo_context(self) -> "GeoContext":
        """An immutable snapshot of this plan's sources and annotators.

        Built (and cached) on first use; plans compiled via
        :meth:`from_context` return the original snapshot, so executor worker
        pools primed with it stay warm.  Freezing happens here, which is why
        purely in-process sequential execution never freezes the sources.
        """
        if self._context is None:
            if self.sources is None:
                raise ConfigurationError(
                    "plan was compiled without sources; build it from a GeoContext "
                    "to run on a process-pool executor"
                )
            from repro.parallel.context import GeoContext  # deferred: import cycle

            self._context = GeoContext(self.sources, self.config, annotators=self.annotators)
        return self._context
