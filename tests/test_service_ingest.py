"""Tests for the asyncio ingestion service (:mod:`repro.service`).

The headline guarantee mirrors the streaming-parity suite one level up:
events from many concurrent emitters, interleaved, backpressured and sharded,
must drain to output canonically byte-identical to the sequential pipeline on
the same delivered events — plus the service-specific behaviours (bounded
queues, producer awaits, LRU session eviction, lifecycle errors, the stdlib
HTTP facade).

No ``pytest-asyncio`` in the container: each test drives its own event loop
with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Awaitable, Callable, Dict, List, Tuple

import pytest

from repro.core import PipelineConfig, SeMiTriPipeline
from repro.core.errors import ConfigurationError, ServiceError
from repro.core.points import SpatioTemporalPoint
from repro.parallel.canonical import canonical_bytes
from repro.parallel.context import GeoContext
from repro.service import AnnotationService, ConsistentHashRing, HttpIngestServer
from repro.store.store import SemanticTrajectoryStore


def _service_config(**service_overrides: object) -> PipelineConfig:
    """Vehicle defaults with full-stream cleaning on and service knobs set."""
    overrides = {"streaming.micro_batch_size": 5, "streaming.apply_cleaning": True}
    overrides.update({f"service.{key}": value for key, value in service_overrides.items()})
    return PipelineConfig.for_vehicles().with_overrides(overrides)


def _object_streams(*trajectory_lists) -> Dict[str, List[SpatioTemporalPoint]]:
    """Concatenate each object's trajectories into one raw point stream."""
    grouped: Dict[str, list] = {}
    for trajectories in trajectory_lists:
        for trajectory in trajectories:
            grouped.setdefault(trajectory.object_id, []).append(trajectory)
    streams: Dict[str, List[SpatioTemporalPoint]] = {}
    for object_id, trajectories in grouped.items():
        trajectories.sort(key=lambda trajectory: trajectory.points[0].t)
        points = [point for trajectory in trajectories for point in trajectory.points]
        assert all(a.t <= b.t for a, b in zip(points, points[1:])), object_id
        streams[object_id] = points
    return streams


async def _wait_until(predicate: Callable[[], bool], timeout: float = 10.0) -> None:
    deadline = time.perf_counter() + timeout
    while time.perf_counter() < deadline:
        if predicate():
            return
        await asyncio.sleep(0.01)
    raise AssertionError("condition not reached in time")


# ---------------------------------------------------------------------- routing
class TestConsistentHashRing:
    def test_routing_is_deterministic_across_instances(self):
        ids = [f"obj-{i}" for i in range(200)]
        first = ConsistentHashRing(4)
        second = ConsistentHashRing(4)
        assert [first.shard_for(i) for i in ids] == [second.shard_for(i) for i in ids]

    def test_every_shard_gets_work(self):
        ring = ConsistentHashRing(4)
        counts = ring.distribution([f"user-{i}" for i in range(400)])
        assert set(counts) == {0, 1, 2, 3}
        assert all(count > 0 for count in counts.values())

    def test_resize_remaps_a_minority_of_keys(self):
        ids = [f"car-{i}" for i in range(1000)]
        before = ConsistentHashRing(4)
        after = ConsistentHashRing(5)
        moved = sum(before.shard_for(i) != after.shard_for(i) for i in ids)
        # Consistent hashing moves ~1/5 of keys; modulo hashing would move ~4/5.
        assert moved < len(ids) // 2

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(0)
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(2, replicas=0)


# ----------------------------------------------------------------- backpressure
def test_backpressure_bounds_queue_and_awaits_producer(annotation_sources, car_dataset):
    """A full shard queue suspends the producer; depth never exceeds the bound."""
    config = _service_config(shards=1, queue_depth=4, max_batch=4)
    points = _object_streams(car_dataset.trajectories)
    object_id, stream = next(iter(sorted(points.items())))
    stream = stream[:200]

    async def run() -> Tuple[AnnotationService, int]:
        service = AnnotationService(annotation_sources, config=config)
        # Slow the shard down so the producer demonstrably outruns it.
        worker = service._workers[0]
        original = worker.process

        def slow_process(batch):
            time.sleep(0.002)
            return original(batch)

        worker.process = slow_process
        max_depth = 0
        async with service:
            for point in stream:
                await service.ingest(object_id, point)
                max_depth = max(max_depth, service.queue_depths()[0])
            await service.drain()
        return service, max_depth

    service, max_depth = asyncio.run(run())
    assert max_depth <= config.service.queue_depth
    assert service.stats.backpressure_waits > 0
    assert service.metrics.backpressure_waits.value == service.stats.backpressure_waits
    assert service.stats.events == len(stream)
    assert service.dropped_events == 0


# ----------------------------------------------------------------- drain parity
def test_drain_parity_with_killed_emitters(
    annotation_sources, taxi_dataset, car_dataset, people_dataset
):
    """Interleaved emitters from every seed dataset, some killed mid-stream:
    the drained service output and store rows match the sequential pipeline on
    exactly the delivered events, canonical bytes included."""
    config = _service_config(shards=3, queue_depth=32, max_batch=7)
    streams = _object_streams(
        taxi_dataset.trajectories, car_dataset.trajectories, people_dataset.all_trajectories
    )
    # Every third emitter is killed mid-stream: only a prefix is delivered and
    # the object is never explicitly closed — drain seals whatever is open.
    delivered: Dict[str, List[SpatioTemporalPoint]] = {}
    for index, object_id in enumerate(sorted(streams)):
        points = streams[object_id]
        delivered[object_id] = points[: max(4, int(len(points) * 0.6))] if index % 3 == 2 else points

    context = GeoContext.build(annotation_sources, config)

    service_store = SemanticTrajectoryStore()

    async def run() -> AnnotationService:
        service = AnnotationService(context, store=service_store, persist=True)
        async with service:
            live = {object_id: iter(points) for object_id, points in delivered.items()}
            survivors = {
                object_id
                for index, object_id in enumerate(sorted(streams))
                if index % 3 != 2
            }
            while live:
                finished = []
                for object_id, iterator in live.items():
                    point = next(iterator, None)
                    if point is None:
                        finished.append(object_id)
                        continue
                    await service.ingest(object_id, point)
                for object_id in finished:
                    del live[object_id]
                    if object_id in survivors:
                        await service.close_object(object_id)
            await service.drain()
        return service

    service = asyncio.run(run())
    assert service.dropped_events == 0
    assert service.stats.errors == 0
    assert service.stats.events == sum(len(points) for points in delivered.values())

    # Sequential reference: the plain pipeline on the same delivered streams.
    sequential_store = SemanticTrajectoryStore()
    pipeline = SeMiTriPipeline(config, store=sequential_store)
    sequential = []
    for object_id in sorted(delivered):
        raw = pipeline.ingest_stream(delivered[object_id], object_id=object_id)
        sequential.extend(
            pipeline.annotate_many(
                raw, annotation_sources, persist=True, annotators=context.annotators
            )
        )

    by_service = {r.trajectory.trajectory_id: r for r in service.results}
    by_sequential = {r.trajectory.trajectory_id: r for r in sequential}
    assert set(by_service) == set(by_sequential)
    for trajectory_id, expected in by_sequential.items():
        assert canonical_bytes([by_service[trajectory_id]]) == canonical_bytes([expected]), (
            trajectory_id
        )

    # Store rows committed at drain follow the same deterministic order the
    # sequential run wrote, so the two stores agree row for row.
    assert service_store.trajectory_ids() == sequential_store.trajectory_ids()
    assert service_store.stop_move_summary() == sequential_store.stop_move_summary()
    assert service_store.annotation_count() == sequential_store.annotation_count()
    assert service_store.category_histogram() == sequential_store.category_histogram()
    for trajectory_id in sequential_store.trajectory_ids():
        service_rows = service_store.episodes_for(trajectory_id)
        sequential_rows = sequential_store.episodes_for(trajectory_id)
        strip = lambda rows: [
            {key: value for key, value in row.items() if key != "episode_id"} for row in rows
        ]
        assert strip(service_rows) == strip(sequential_rows)
        for service_row, sequential_row in zip(service_rows, sequential_rows):
            assert service_store.annotations_for(
                service_row["episode_id"]
            ) == sequential_store.annotations_for(sequential_row["episode_id"])
    service_store.close()
    sequential_store.close()


def test_all_object_streams_land_on_their_ring_shard(annotation_sources, car_dataset):
    config = _service_config(shards=4)
    service = AnnotationService(annotation_sources, config=config)
    for object_id in _object_streams(car_dataset.trajectories):
        assert service.shard_for(object_id) == ConsistentHashRing(
            4, replicas=config.service.ring_replicas
        ).shard_for(object_id)


# --------------------------------------------------------------------- eviction
def test_session_budget_evicts_lru_sessions(annotation_sources, car_dataset):
    """More live objects than the budget: LRU sessions close gracefully and
    every delivered event is still absorbed."""
    config = _service_config(shards=1, session_budget=3)
    streams = _object_streams(car_dataset.trajectories)
    assert len(streams) > 3

    async def run() -> AnnotationService:
        service = AnnotationService(annotation_sources, config=config)
        async with service:
            for object_id, points in sorted(streams.items()):
                for point in points[:40]:
                    await service.ingest(object_id, point)
            await service.drain()
        return service

    service = asyncio.run(run())
    assert service.sessions_evicted >= len(streams) - 3
    assert service.dropped_events == 0
    assert {r.trajectory.object_id for r in service.results} == set(streams)


def test_explicit_eviction_closes_sessions(annotation_sources, car_dataset):
    config = _service_config(shards=1, queue_depth=64)
    streams = _object_streams(car_dataset.trajectories)

    async def run() -> Tuple[AnnotationService, int, int]:
        service = AnnotationService(annotation_sources, config=config)
        async with service:
            for object_id, points in sorted(streams.items()):
                for point in points[:20]:
                    await service.ingest(object_id, point)
            await _wait_until(lambda: service.queue_depths()[0] == 0)
            await _wait_until(lambda: service.open_session_count == len(streams))
            before = service.open_session_count
            await service.evict_sessions(0)
            await _wait_until(lambda: service.open_session_count == 0)
            after = service.open_session_count
            await service.drain()
        return service, before, after

    service, before, after = asyncio.run(run())
    assert before == len(streams)
    assert after == 0
    assert service.sessions_evicted >= len(streams)
    # The evicted sessions sealed their open trajectories.
    assert {r.trajectory.object_id for r in service.results} == set(streams)


# -------------------------------------------------------------------- lifecycle
def test_lifecycle_contract(annotation_sources, car_dataset):
    config = _service_config(shards=1)
    streams = _object_streams(car_dataset.trajectories)
    object_id, points = next(iter(sorted(streams.items())))

    async def run() -> None:
        service = AnnotationService(annotation_sources, config=config)
        with pytest.raises(ServiceError):
            await service.ingest(object_id, points[0])
        with pytest.raises(ServiceError):
            await service.drain()
        await service.start()
        with pytest.raises(ServiceError):
            await service.start()
        for point in points[:30]:
            await service.ingest(object_id, point)
        first = await service.drain()
        assert first  # the open trajectory sealed
        assert await service.drain() == first  # idempotent
        with pytest.raises(ServiceError):
            await service.ingest(object_id, points[0])
        assert await service.shutdown() == first

    asyncio.run(run())


def test_results_callback_and_prometheus_rendering(annotation_sources, car_dataset):
    config = _service_config(shards=2)
    streams = _object_streams(car_dataset.trajectories)
    seen: List[str] = []

    async def run() -> AnnotationService:
        service = AnnotationService(
            annotation_sources,
            config=config,
            on_result=lambda result: seen.append(result.trajectory.trajectory_id),
        )
        async with service:
            for object_id, points in sorted(streams.items()):
                await service.ingest_many((object_id, point) for point in points[:25])
            await service.drain()
        return service

    service = asyncio.run(run())
    assert seen == [r.trajectory.trajectory_id for r in service.results]
    rendered = service.render_prometheus()
    assert "semitri_service_events_total" in rendered
    assert 'shard="0"' in rendered and 'shard="1"' in rendered
    assert "semitri_service_ingest_latency_seconds_bucket" in rendered
    # p99 enqueue-to-absorbed latency is queryable straight off the histogram.
    assert service.metrics.ingest_latency.percentile(99.0) >= 0.0


# ------------------------------------------------------------------ HTTP facade
async def _http_request(
    port: int, method: str, path: str, payload: object = None
) -> Tuple[int, Dict[str, object], bytes]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    head = f"{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {len(body)}\r\n\r\n"
    writer.write(head.encode("ascii") + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    data = await reader.readexactly(length)
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionResetError:
        pass
    parsed: Dict[str, object] = {}
    if data.startswith(b"{"):
        parsed = json.loads(data)
    return status, parsed, data


def test_http_facade_roundtrip(annotation_sources, car_dataset):
    config = _service_config(shards=1)
    streams = _object_streams(car_dataset.trajectories)
    object_id, points = next(iter(sorted(streams.items())))
    events = [{"object_id": object_id, "x": p.x, "y": p.y, "t": p.t} for p in points[:40]]

    async def run() -> None:
        service = AnnotationService(annotation_sources, config=config)
        async with service:
            async with HttpIngestServer(service, port=0) as server:
                port = server.port
                status, reply, _ = await _http_request(
                    port, "POST", "/ingest", {"events": events[:30]}
                )
                assert (status, reply) == (200, {"accepted": 30})
                status, reply, _ = await _http_request(port, "POST", "/ingest", events[30])
                assert (status, reply) == (200, {"accepted": 1})
                status, reply, _ = await _http_request(port, "GET", "/healthz")
                assert status == 200 and reply["events"] == 31
                status, reply, _ = await _http_request(
                    port, "POST", "/ingest", {"events": [{"object_id": "broken"}]}
                )
                assert status == 400 and "error" in reply
                status, reply, _ = await _http_request(
                    port, "POST", "/close", {"object_id": object_id}
                )
                assert status == 200
                status, reply, _ = await _http_request(port, "POST", "/drain")
                assert status == 200 and reply["dropped"] == 0 and reply["results"] >= 1
                status, _, raw = await _http_request(port, "GET", "/metrics")
                assert status == 200 and b"semitri_service_events_total" in raw
                status, reply, _ = await _http_request(port, "POST", "/ingest", events[0])
                assert status == 409  # drained services refuse intake
                status, _, _ = await _http_request(port, "GET", "/nope")
                assert status == 404

    asyncio.run(run())
