"""POI sources: indexed collections of points of interest.

The Milan dataset of the paper has 39,772 POIs in five top-categories
(services, feedings, item sale, person life, unknown); this module provides
the indexed container (:class:`PoiSource`) the observation model and the HMM
initial probabilities are derived from.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import SourceError
from repro.core.places import PointOfInterest
from repro.geometry.primitives import BoundingBox, Point
from repro.index.flat import FlatSpatialIndex
from repro.index.grid_index import GridIndex


@dataclass(frozen=True)
class PoiArrays:
    """Columnar coordinates of every POI of a source.

    Contiguous float64 location columns plus each POI's row index, letting
    the vectorized observation model gather a neighbour set's geometry with
    one fancy-indexing operation.  Rows are keyed by
    ``(place_id, x, y, category)`` so the mapping survives pickling to
    spawn-workers; POIs colliding on that key share a row, which is harmless
    because exactly those fields determine the gathered columns.  Built once
    per source and treated as read-only;
    :class:`~repro.parallel.context.GeoContext` builds it eagerly so forked
    workers share the pages.
    """

    xs: np.ndarray
    ys: np.ndarray
    categories: Tuple[str, ...]
    row_of: Dict[Tuple[str, float, float, str], int]

    @staticmethod
    def key_of(poi: PointOfInterest) -> Tuple[str, float, float, str]:
        """The row key of a POI: every field the gathered columns depend on."""
        return (poi.place_id, poi.location.x, poi.location.y, poi.category)

#: The five Milan top-categories used throughout Section 4.3 and Figure 11.
DEFAULT_POI_CATEGORIES: Tuple[str, ...] = (
    "services",
    "feedings",
    "item sale",
    "person life",
    "unknown",
)


class PoiSource:
    """An indexed third-party source of points of interest."""

    def __init__(
        self,
        pois: Iterable[PointOfInterest],
        name: str = "pois",
        index_cell_size: float = 100.0,
    ):
        self._pois: List[PointOfInterest] = list(pois)
        if not self._pois:
            raise SourceError(f"POI source {name!r} contains no points of interest")
        self.name = name
        self._index = GridIndex(cell_size=index_cell_size)
        for poi in self._pois:
            self._index.insert(poi.location, poi)
        self._arrays: Optional[PoiArrays] = None
        self._flat_index: Optional[FlatSpatialIndex] = None

    def __len__(self) -> int:
        return len(self._pois)

    def freeze(self) -> "PoiSource":
        """Seal the source's grid index for read-only sharing across workers."""
        self._index.freeze()
        return self

    def coordinate_arrays(self) -> PoiArrays:
        """Cached columnar POI coordinates (built on first use)."""
        if self._arrays is None:
            count = len(self._pois)
            self._arrays = PoiArrays(
                xs=np.fromiter((p.location.x for p in self._pois), dtype=np.float64, count=count),
                ys=np.fromiter((p.location.y for p in self._pois), dtype=np.float64, count=count),
                categories=tuple(p.category for p in self._pois),
                row_of={PoiArrays.key_of(p): row for row, p in enumerate(self._pois)},
            )
        return self._arrays

    @property
    def pois(self) -> List[PointOfInterest]:
        """All points of interest in the source."""
        return list(self._pois)

    def categories(self) -> List[str]:
        """Distinct categories, ordered by first appearance then alphabetically.

        The category order determines the HMM state order; keeping it stable
        makes the decoded state indices reproducible.
        """
        seen: Dict[str, None] = {}
        for poi in self._pois:
            seen.setdefault(poi.category, None)
        return list(seen.keys())

    def category_counts(self) -> Dict[str, int]:
        """Number of POIs per category (used for the initial probabilities pi)."""
        return dict(Counter(poi.category for poi in self._pois))

    def initial_probabilities(self) -> Dict[str, float]:
        """pi: fraction of POIs belonging to each category (Section 4.3)."""
        counts = self.category_counts()
        total = sum(counts.values())
        return {category: count / total for category, count in counts.items()}

    def flat_index(self) -> FlatSpatialIndex:
        """The batch flat index compiled from the grid (built on first use).

        Compiling freezes the grid (the POI set never grows after
        construction); batch queries return the same POIs in the same
        ``(distance, row)`` order as :meth:`pois_within`.
        """
        if self._flat_index is None:
            self._flat_index = FlatSpatialIndex.from_grid(self._index)
        return self._flat_index

    def pois_within(self, center: Point, radius: float) -> List[Tuple[float, PointOfInterest]]:
        """POIs within ``radius`` of ``center``, sorted by distance."""
        return [
            (distance, poi) for distance, _, poi in self._index.query_radius(center, radius)
        ]

    def pois_within_batch(
        self, centers: Sequence[Point], radius: float
    ) -> List[List[Tuple[float, PointOfInterest]]]:
        """Batch :meth:`pois_within`: one flat-index query for all centres."""
        return self.flat_index().within_distance_pairs(centers, radius)

    def pois_in_box(self, box: BoundingBox) -> List[PointOfInterest]:
        """POIs falling inside a query rectangle."""
        return [poi for _, poi in self._index.query_box(box)]

    def nearest(self, center: Point, count: int = 1) -> List[Tuple[float, PointOfInterest]]:
        """The ``count`` POIs nearest to ``center``."""
        return [
            (distance, poi) for distance, _, poi in self._index.nearest(center, count=count)
        ]

    def bounds(self) -> BoundingBox:
        """Bounding box of all POIs."""
        box = self._index.bounds()
        assert box is not None
        return box

    def density_per_category(self, box: Optional[BoundingBox] = None) -> Dict[str, float]:
        """POIs per square kilometre for each category over ``box`` (or the full extent)."""
        extent = box if box is not None else self.bounds()
        area_km2 = max(extent.area / 1e6, 1e-9)
        counts: Dict[str, int] = {}
        pois = self.pois_in_box(extent) if box is not None else self._pois
        for poi in pois:
            counts[poi.category] = counts.get(poi.category, 0) + 1
        return {category: count / area_km2 for category, count in counts.items()}


def category_counts(pois: Sequence[PointOfInterest]) -> Dict[str, int]:
    """Number of POIs per category for a plain sequence of POIs."""
    return dict(Counter(poi.category for poi in pois))
