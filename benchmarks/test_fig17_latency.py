"""Figure 17: per-stage latency of processing daily trajectories.

The paper reports the mean time per daily (phone) trajectory spent in each
pipeline stage: computing episodes, storing episodes, map matching, storing
the matched result and the landuse join; computation/annotation is much
cheaper than storage.  This benchmark runs the full pipeline with persistence
into the SQLite store and reports the same per-stage means.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.core import PipelineConfig, SeMiTriPipeline
from repro.store.store import SemanticTrajectoryStore


def test_fig17_latency(benchmark, world, people_dataset, annotation_sources):
    def run_pipeline():
        store = SemanticTrajectoryStore()
        pipeline = SeMiTriPipeline(PipelineConfig.for_people(), store=store)
        results = pipeline.annotate_many(
            people_dataset.all_trajectories, annotation_sources, persist=True
        )
        merged = SeMiTriPipeline.merge_latencies(results)
        store.close()
        return merged

    profile = benchmark.pedantic(run_pipeline, rounds=1, iterations=1)

    rows = []
    for stage in (
        "compute_episode",
        "store_episode",
        "map_match",
        "store_match_result",
        "landuse_join",
        "poi_annotation",
    ):
        if profile.count(stage) == 0:
            continue
        rows.append(
            [stage, profile.count(stage), f"{profile.mean(stage):.4f}", f"{profile.total(stage):.3f}"]
        )
    text = render_table(
        ["stage", "#daily trajectories", "mean seconds", "total seconds"],
        rows,
        title="Figure 17 - Latency per processing stage (people trajectories)",
    )
    save_result("fig17_latency", text)

    assert profile.count("compute_episode") == len(people_dataset.all_trajectories)
    # Episode computation is cheap relative to the heavier annotation stages,
    # mirroring the ordering in the paper's latency figure.
    assert profile.mean("compute_episode") <= profile.mean("map_match") + profile.mean(
        "landuse_join"
    )
