"""Activity inference and trajectory classification (Equation 8).

Once stops carry POI-category annotations, two further semantics are derived:

* a human-readable *activity* label per stop (a category such as "feedings"
  maps to the activity "eating");
* the *trajectory category* of Equation 8: the category with the maximum total
  stop time over the trajectory, used in Figure 11's third column as a
  semantic classification of raw trajectories.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

#: Default mapping from POI top-category to the activity label used in stops.
ACTIVITY_BY_CATEGORY: Dict[str, str] = {
    "services": "errands",
    "feedings": "eating",
    "item sale": "shopping",
    "person life": "leisure",
    "unknown": "unknown",
    "home": "rest",
    "office": "work",
}


def activity_for_category(category: str) -> str:
    """Activity label for a POI category (falls back to the category itself)."""
    return ACTIVITY_BY_CATEGORY.get(category, category)


def trajectory_category(
    stop_categories: Sequence[str], stop_durations: Sequence[float]
) -> Optional[str]:
    """Equation 8: the category with maximum total stop time.

    ``stop_categories[i]`` is the POI category inferred for the i-th stop and
    ``stop_durations[i]`` its duration ``time_out - time_in``.  Returns None
    for trajectories without stops.
    """
    if len(stop_categories) != len(stop_durations):
        raise ValueError("categories and durations must have the same length")
    totals: Dict[str, float] = {}
    for category, duration in zip(stop_categories, stop_durations):
        totals[category] = totals.get(category, 0.0) + max(duration, 0.0)
    if not totals:
        return None
    return max(totals.items(), key=lambda pair: (pair[1], pair[0]))[0]


def category_distribution(labels: Sequence[str]) -> Dict[str, float]:
    """Normalised frequency of each label (used for the Figure 11 columns)."""
    if not labels:
        return {}
    counts: Dict[str, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    total = len(labels)
    return {label: count / total for label, count in counts.items()}
