"""Canonical, byte-stable serialisation of pipeline results.

The parallel runner promises output *byte-identical* to the sequential
pipeline.  That promise needs a definition of "bytes": this module renders a
:class:`~repro.core.pipeline.PipelineResult` (or a list of them) into a
canonical JSON document covering everything the pipeline computed — the
trajectory, the episode boundaries and every annotation of every layer —
while excluding wall-clock latency samples, which are measurement noise, not
output.  Two runs agree if and only if their canonical bytes agree, which is
exactly what the parity tests and the scaling benchmark assert.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Sequence

from repro.core.annotations import Annotation
from repro.core.episodes import Episode
from repro.core.pipeline import PipelineResult
from repro.core.trajectory import StructuredSemanticTrajectory


def canonical_annotation(annotation: Annotation) -> List[Any]:
    """Order-stable rendering of one annotation."""
    return [
        annotation.kind.value,
        getattr(annotation, "place_id", None),
        getattr(annotation, "category", None),
        getattr(annotation, "label", None),
        repr(getattr(annotation, "value", None)),
        annotation.confidence,
    ]


def canonical_episode(episode: Episode) -> Dict[str, Any]:
    """Order-stable rendering of one episode and its annotations."""
    return {
        "kind": episode.kind.value,
        "start_index": episode.start_index,
        "end_index": episode.end_index,
        "time_in": episode.time_in,
        "time_out": episode.time_out,
        "annotations": [canonical_annotation(a) for a in episode.annotations],
    }


def canonical_structured(structured: Optional[StructuredSemanticTrajectory]) -> Optional[List[Any]]:
    """Order-stable rendering of a structured semantic trajectory."""
    if structured is None:
        return None
    return [
        [
            record.place.place_id if record.place is not None else None,
            record.time_in,
            record.time_out,
            record.kind.value,
            [canonical_annotation(a) for a in record.annotations],
        ]
        for record in structured
    ]


def canonical_result(result: PipelineResult) -> Dict[str, Any]:
    """Everything one pipeline result computed, minus latency samples."""
    trajectory = result.trajectory
    return {
        "trajectory_id": trajectory.trajectory_id,
        "object_id": trajectory.object_id,
        "points": [point.as_tuple() for point in trajectory.points],
        "episodes": [canonical_episode(e) for e in result.episodes],
        "region": canonical_structured(result.region_trajectory),
        "lines": [canonical_structured(t) for t in result.line_trajectories],
        "point": canonical_structured(result.point_trajectory),
        "category": result.trajectory_category,
    }


def canonical_bytes(results: Sequence[PipelineResult]) -> bytes:
    """Canonical JSON bytes for an ordered sequence of pipeline results."""
    payload = [canonical_result(result) for result in results]
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def canonical_digest(results: Sequence[PipelineResult]) -> str:
    """SHA-256 hex digest of :func:`canonical_bytes`.

    The compact form of the byte-equality contract, suitable for recording in
    benchmark sidecars and comparing across runs without shipping the full
    canonical document.
    """
    return hashlib.sha256(canonical_bytes(results)).hexdigest()
