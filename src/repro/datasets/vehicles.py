"""Vehicle trajectory simulators: taxis and private cars.

Substitutes for the Lausanne taxi dataset (two taxis, 1 s sampling, five
months) and the Milan private-car dataset (~17k cars, ~40 s sampling, one
week) of Table 1.  Record counts are scaled down so the experiments run on a
laptop, but the structural properties the experiments depend on are kept:

* taxis spend most of their time driving on the urban road network with short
  pick-up/drop-off stops, so their GPS points concentrate in building and
  transportation landuse cells (Figure 9);
* private cars make a small number of trips per day, each ending in a stop
  near POIs whose category mix is dominated by shopping ("item sale") and
  leisure ("person life"), which is what Figure 11 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.points import RawTrajectory
from repro.datasets.movement import PathSample, concatenate, sample_dwell, sample_path
from repro.datasets.routing import RoadRouter
from repro.datasets.world import SyntheticWorld
from repro.geometry.primitives import Point

#: Stop-purpose mix of private-car trips; chosen so the inferred stop categories
#: reproduce the ordering of Figure 11 (item sale > person life > feedings...).
PRIVATE_CAR_PURPOSE_MIX: Dict[str, float] = {
    "item sale": 0.50,
    "person life": 0.25,
    "feedings": 0.12,
    "services": 0.10,
    "unknown": 0.03,
}


@dataclass
class VehicleDataset:
    """A generated vehicle dataset: daily trajectories plus ground truth."""

    trajectories: List[RawTrajectory]
    truth_segments: Dict[str, List[Optional[str]]] = field(default_factory=dict)
    stop_purposes: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def gps_record_count(self) -> int:
        """Total number of GPS fixes in the dataset."""
        return sum(len(trajectory) for trajectory in self.trajectories)

    @property
    def object_ids(self) -> List[str]:
        """Distinct moving-object identifiers."""
        return sorted({trajectory.object_id for trajectory in self.trajectories})


class TaxiFleetSimulator:
    """Simulates a small taxi fleet driving fares across the city all day."""

    def __init__(
        self,
        world: SyntheticWorld,
        taxi_count: int = 2,
        days: int = 2,
        fares_per_day: int = 10,
        sample_interval: float = 5.0,
        noise_sigma: float = 6.0,
        seed: int = 11,
    ):
        self._world = world
        self._taxi_count = taxi_count
        self._days = days
        self._fares_per_day = fares_per_day
        self._sample_interval = sample_interval
        self._noise_sigma = noise_sigma
        self._seed = seed
        self._router = RoadRouter(world.road_network(), allowed_types=("road", "highway"))

    def generate(self) -> VehicleDataset:
        """Generate one daily trajectory per taxi per day."""
        trajectories: List[RawTrajectory] = []
        truth: Dict[str, List[Optional[str]]] = {}
        for taxi_index in range(self._taxi_count):
            for day in range(self._days):
                rng = np.random.default_rng(self._seed + taxi_index * 1000 + day)
                trajectory_id = f"taxi{taxi_index}-day{day}"
                sample = self._simulate_day(rng, day)
                trajectory = RawTrajectory(
                    sample.points, object_id=f"taxi{taxi_index}", trajectory_id=trajectory_id
                )
                trajectories.append(trajectory)
                truth[trajectory_id] = sample.truth_segment_ids
        return VehicleDataset(trajectories=trajectories, truth_segments=truth)

    def _simulate_day(self, rng: np.random.Generator, day: int) -> PathSample:
        start_time = day * 86_400.0 + 6 * 3600.0
        position = self._world.random_core_location(rng)
        pieces: List[PathSample] = []
        current_time = start_time
        for _ in range(self._fares_per_day):
            destination = self._world.random_core_location(rng)
            waypoints, segment_ids = self._router.shortest_path(position, destination)
            speed = float(rng.uniform(8.0, 12.0))
            drive = sample_path(
                waypoints,
                segment_ids,
                speed=speed,
                sample_interval=self._sample_interval,
                noise_sigma=self._noise_sigma,
                rng=rng,
                start_time=current_time,
            )
            pieces.append(drive)
            current_time = drive.end_time
            # Pull over into the block for the pick-up / drop-off dwell: the
            # fare's doorstep is some tens of metres away from the crossing.
            arrival = waypoints[-1] if waypoints else destination
            dwell_location = Point(
                arrival.x + float(rng.uniform(55.0, 90.0)) * (1 if rng.random() < 0.5 else -1),
                arrival.y + float(rng.uniform(55.0, 90.0)) * (1 if rng.random() < 0.5 else -1),
            )
            dwell_duration = float(rng.uniform(240.0, 720.0))
            dwell = sample_dwell(
                dwell_location,
                duration=dwell_duration,
                sample_interval=self._sample_interval,
                noise_sigma=self._noise_sigma * 0.4,
                rng=rng,
                start_time=current_time,
            )
            pieces.append(dwell)
            current_time = dwell.end_time
            position = arrival
        return concatenate(pieces)


class PrivateCarSimulator:
    """Simulates private cars making purpose-driven trips ending near POIs."""

    def __init__(
        self,
        world: SyntheticWorld,
        car_count: int = 40,
        trips_per_car: int = 2,
        sample_interval: float = 40.0,
        noise_sigma: float = 10.0,
        seed: int = 23,
    ):
        self._world = world
        self._car_count = car_count
        self._trips_per_car = trips_per_car
        self._sample_interval = sample_interval
        self._noise_sigma = noise_sigma
        self._seed = seed
        self._router = RoadRouter(world.road_network(), allowed_types=("road", "highway"))
        self._poi_source = world.poi_source()
        self._purposes = list(PRIVATE_CAR_PURPOSE_MIX.keys())
        self._purpose_probabilities = np.array(
            [PRIVATE_CAR_PURPOSE_MIX[purpose] for purpose in self._purposes]
        )
        self._purpose_probabilities /= self._purpose_probabilities.sum()

    def generate(self) -> VehicleDataset:
        """Generate one daily trajectory per car, with purpose-driven stops."""
        trajectories: List[RawTrajectory] = []
        truth: Dict[str, List[Optional[str]]] = {}
        purposes: Dict[str, List[str]] = {}
        for car_index in range(self._car_count):
            rng = np.random.default_rng(self._seed + car_index)
            trajectory_id = f"car{car_index}-day0"
            sample, trip_purposes = self._simulate_day(rng)
            if len(sample.points) < 5:
                continue
            trajectory = RawTrajectory(
                sample.points, object_id=f"car{car_index}", trajectory_id=trajectory_id
            )
            trajectories.append(trajectory)
            truth[trajectory_id] = sample.truth_segment_ids
            purposes[trajectory_id] = trip_purposes
        return VehicleDataset(
            trajectories=trajectories, truth_segments=truth, stop_purposes=purposes
        )

    def _simulate_day(self, rng: np.random.Generator) -> Tuple[PathSample, List[str]]:
        home = self._world.random_home(rng)
        position = home
        current_time = 9 * 3600.0 + float(rng.uniform(0, 3600.0))
        pieces: List[PathSample] = []
        trip_purposes: List[str] = []
        for _ in range(self._trips_per_car):
            purpose = self._purposes[
                int(rng.choice(len(self._purposes), p=self._purpose_probabilities))
            ]
            destination = self._destination_for_purpose(purpose, rng)
            waypoints, segment_ids = self._router.shortest_path(position, destination)
            drive = sample_path(
                waypoints,
                segment_ids,
                speed=float(rng.uniform(8.0, 14.0)),
                sample_interval=self._sample_interval,
                noise_sigma=self._noise_sigma,
                rng=rng,
                start_time=current_time,
            )
            pieces.append(drive)
            current_time = drive.end_time
            # Park next to the destination POI and perform the activity.
            dwell_location = Point(
                destination.x + float(rng.normal(0.0, 6.0)),
                destination.y + float(rng.normal(0.0, 6.0)),
            )
            dwell = sample_dwell(
                dwell_location,
                duration=float(rng.uniform(900.0, 3600.0)),
                sample_interval=self._sample_interval,
                noise_sigma=self._noise_sigma * 0.6,
                rng=rng,
                start_time=current_time,
            )
            pieces.append(dwell)
            current_time = dwell.end_time
            trip_purposes.append(purpose)
            position = dwell_location
        # Return home.
        waypoints, segment_ids = self._router.shortest_path(position, home)
        pieces.append(
            sample_path(
                waypoints,
                segment_ids,
                speed=float(rng.uniform(8.0, 14.0)),
                sample_interval=self._sample_interval,
                noise_sigma=self._noise_sigma,
                rng=rng,
                start_time=current_time,
            )
        )
        return concatenate(pieces), trip_purposes

    def _destination_for_purpose(self, purpose: str, rng: np.random.Generator) -> Point:
        """A location next to a random POI of the requested category."""
        candidates = [poi for poi in self._poi_source.pois if poi.category == purpose]
        if not candidates:
            return self._world.random_core_location(rng)
        poi = candidates[int(rng.integers(0, len(candidates)))]
        return poi.location
