"""Property-based parity: flat batch queries equal per-point scalar queries.

Hand-rolled hypothesis-style generator (seeded ``numpy.random.Generator``,
like the rest of the property suites): every seed produces a random point /
box cloud — including duplicate boxes and coincident points — plus a random
query batch, and the flat index compiled from the scalar index must return
exactly the same results per query: same payloads, same order, bit-identical
distances.  Degenerate shapes (empty results, single-entry indexes, collinear
point sets, zero radius, ``count`` larger than the index) are covered
explicitly.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest

from repro.geometry.primitives import BoundingBox, Point
from repro.index.flat import FlatSpatialIndex
from repro.index.grid_index import GridIndex
from repro.index.rtree import RTree, RTreeEntry


def _random_entries(rng: np.random.Generator, count: int) -> List[RTreeEntry]:
    entries: List[RTreeEntry] = []
    for index in range(count):
        x, y = rng.uniform(0.0, 1000.0, size=2)
        w, h = rng.uniform(0.0, 40.0, size=2)
        entries.append(RTreeEntry(BoundingBox(x, y, x + w, y + h), index))
    # Duplicate boxes: distinct payloads sharing identical geometry must keep
    # a deterministic relative order in every query.
    for duplicate in range(count // 10):
        box = entries[duplicate].box
        entries.append(RTreeEntry(box, count + duplicate))
    return entries


def _random_queries(
    rng: np.random.Generator, count: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    xs = rng.uniform(-200.0, 1200.0, size=count)
    ys = rng.uniform(-200.0, 1200.0, size=count)
    ws = rng.uniform(0.0, 100.0, size=count)
    hs = rng.uniform(0.0, 100.0, size=count)
    return xs, ys, xs + ws, ys + hs


def _assert_rtree_parity(tree: RTree, flat: FlatSpatialIndex, rng: np.random.Generator) -> None:
    query_count = 64
    min_xs, min_ys, max_xs, max_ys = _random_queries(rng, query_count)

    offsets, rows = flat.query_boxes_batch(min_xs, min_ys, max_xs, max_ys)
    for i in range(query_count):
        box = BoundingBox(min_xs[i], min_ys[i], max_xs[i], max_ys[i])
        scalar = [entry.item for entry in tree.search(box)]
        batch = [flat.payloads[rows[k]] for k in range(offsets[i], offsets[i + 1])]
        assert batch == scalar

    for radius in (0.0, 35.0, 90.0):
        offsets, rows, distances = flat.within_distance_batch(min_xs, min_ys, radius)
        for i in range(query_count):
            point = Point(min_xs[i], min_ys[i])
            scalar = [(d, entry.item) for d, entry in tree.within_distance(point, radius)]
            batch = [
                (float(distances[k]), flat.payloads[rows[k]])
                for k in range(offsets[i], offsets[i + 1])
            ]
            assert batch == scalar  # distances compared exactly, not approximately

    for count in (1, 3, len(tree) + 5):
        offsets, rows, distances = flat.nearest_batch(min_xs, min_ys, count)
        for i in range(query_count):
            point = Point(min_xs[i], min_ys[i])
            scalar = [(d, entry.item) for d, entry in tree.nearest(point, count=count)]
            batch = [
                (float(distances[k]), flat.payloads[rows[k]])
                for k in range(offsets[i], offsets[i + 1])
            ]
            assert batch == scalar


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_rtree_flat_parity_bulk_loaded(seed):
    rng = np.random.default_rng(seed)
    tree = RTree.bulk_load(_random_entries(rng, 150))
    flat = FlatSpatialIndex.from_rtree(tree)
    assert len(flat) == len(tree)
    _assert_rtree_parity(tree, flat, rng)


@pytest.mark.parametrize("seed", [5, 19])
def test_rtree_flat_parity_insertion_built(seed):
    """The flat compiler handles insertion-grown (split-shaped) trees too."""
    rng = np.random.default_rng(seed)
    tree = RTree(max_entries=8)
    for entry in _random_entries(rng, 90):
        tree.insert(entry.box, entry.item)
    flat = FlatSpatialIndex.from_rtree(tree)
    _assert_rtree_parity(tree, flat, rng)


def test_rtree_flat_degenerate_shapes():
    rng = np.random.default_rng(3)

    # Empty tree: every batch query is empty but well-formed CSR.
    empty = FlatSpatialIndex.from_rtree(RTree.bulk_load([]))
    offsets, rows = empty.query_boxes_batch(
        np.array([0.0]), np.array([0.0]), np.array([10.0]), np.array([10.0])
    )
    assert offsets.tolist() == [0, 0] and len(rows) == 0
    offsets, rows, distances = empty.nearest_batch(np.array([0.0]), np.array([0.0]), 3)
    assert offsets.tolist() == [0, 0] and len(rows) == 0 and len(distances) == 0

    # Single-entry tree (root is a leaf, no internal levels beyond it).
    single = RTree.bulk_load([RTreeEntry(BoundingBox(5.0, 5.0, 6.0, 6.0), "only")])
    flat = FlatSpatialIndex.from_rtree(single)
    _assert_rtree_parity(single, flat, rng)

    # Collinear degenerate (zero-area) boxes along one axis.
    collinear = RTree.bulk_load(
        [RTreeEntry(BoundingBox(float(i), 50.0, float(i), 50.0), i) for i in range(40)]
    )
    flat = FlatSpatialIndex.from_rtree(collinear)
    _assert_rtree_parity(collinear, flat, rng)

    # Queries far away from everything: all-empty result sets.
    offsets, rows, distances = flat.within_distance_batch(
        np.array([10_000.0, -10_000.0]), np.array([10_000.0, -10_000.0]), 5.0
    )
    assert offsets.tolist() == [0, 0, 0] and len(rows) == 0


def _assert_grid_parity(
    grid: GridIndex,
    flat: FlatSpatialIndex,
    rng: np.random.Generator,
    nearest_counts: Tuple[int, ...] = (1, 4),
) -> None:
    # ``nearest_counts`` must stay <= the number of reachable points: the
    # scalar ring-doubling search degenerates to a near-exhaustive cell scan
    # when it can never satisfy the count (see test_grid_flat_nearest_cap).
    query_count = 64
    min_xs, min_ys, max_xs, max_ys = _random_queries(rng, query_count)

    offsets, rows = flat.query_boxes_batch(min_xs, min_ys, max_xs, max_ys)
    for i in range(query_count):
        box = BoundingBox(min_xs[i], min_ys[i], max_xs[i], max_ys[i])
        scalar = [item for _, item in grid.query_box(box)]
        batch = [flat.payloads[rows[k]] for k in range(offsets[i], offsets[i + 1])]
        assert batch == scalar

    for radius in (0.0, 60.0):
        offsets, rows, distances = flat.within_distance_batch(min_xs, min_ys, radius)
        for i in range(query_count):
            center = Point(min_xs[i], min_ys[i])
            scalar = [(d, item) for d, _, item in grid.query_radius(center, radius)]
            batch = [
                (float(distances[k]), flat.payloads[rows[k]])
                for k in range(offsets[i], offsets[i + 1])
            ]
            assert batch == scalar

    for count in nearest_counts:
        offsets, rows, distances = flat.nearest_batch(min_xs, min_ys, count)
        for i in range(query_count):
            center = Point(min_xs[i], min_ys[i])
            scalar = [(d, item) for d, _, item in grid.nearest(center, count=count)]
            batch = [
                (float(distances[k]), flat.payloads[rows[k]])
                for k in range(offsets[i], offsets[i + 1])
            ]
            assert batch == scalar


@pytest.mark.parametrize("seed", [7, 29])
def test_grid_flat_parity(seed):
    rng = np.random.default_rng(seed)
    grid = GridIndex(cell_size=50.0)
    for index, (x, y) in enumerate(rng.uniform(0.0, 1000.0, size=(300, 2))):
        grid.insert(Point(float(x), float(y)), index)
    # Coincident points: equal distance to every query, so their relative
    # order exercises the (distance, row) tie-break.
    for duplicate in range(15):
        grid.insert(Point(333.0, 444.0), 1000 + duplicate)
    flat = FlatSpatialIndex.from_grid(grid)
    assert len(flat) == len(grid)
    _assert_grid_parity(grid, flat, rng)


def test_grid_flat_degenerate_shapes():
    rng = np.random.default_rng(13)

    # Single point.
    grid = GridIndex(cell_size=10.0)
    grid.insert(Point(1.0, 2.0), "only")
    flat = FlatSpatialIndex.from_grid(grid)
    _assert_grid_parity(grid, flat, rng, nearest_counts=(1,))

    # Collinear points in one cell column.
    grid = GridIndex(cell_size=25.0)
    for i in range(30):
        grid.insert(Point(12.0, float(i)), i)
    flat = FlatSpatialIndex.from_grid(grid)
    _assert_grid_parity(grid, flat, rng)


def test_grid_flat_nearest_cap():
    """The flat index honours the scalar ring-doubling's radius cap.

    ``GridIndex.nearest`` stops doubling once the radius would exceed
    ``cell_size * 1e6``, i.e. the largest radius it ever scans is
    ``cell_size * 2**19``; anything farther is invisible to it.  Running the
    scalar search all the way to that cap is infeasible (the cell loop grows
    as 4^k in the doublings), so this asserts the flat index's replication of
    the cap analytically: a payload just inside it is found, one outside is
    not — matching what the scalar semantics prescribe.
    """
    grid = GridIndex(cell_size=1.0)
    inside = float(2**19) - 1.0
    grid.insert(Point(0.0, 0.0), "near")
    grid.insert(Point(inside, 0.0), "at-cap")
    grid.insert(Point(2.0e6, 0.0), "beyond-cap")
    flat = FlatSpatialIndex.from_grid(grid)
    offsets, rows, distances = flat.nearest_batch(np.array([0.0]), np.array([0.0]), 3)
    batch = [flat.payloads[rows[k]] for k in range(offsets[0], offsets[1])]
    assert batch == ["near", "at-cap"]
    assert distances.tolist() == [0.0, inside]


def test_flat_compile_freezes_source():
    tree = RTree.bulk_load([RTreeEntry(BoundingBox(0.0, 0.0, 1.0, 1.0), "a")])
    FlatSpatialIndex.from_rtree(tree)
    assert tree.frozen
    with pytest.raises(TypeError):
        tree.insert(BoundingBox(2.0, 2.0, 3.0, 3.0), "b")

    grid = GridIndex(cell_size=5.0)
    grid.insert(Point(0.0, 0.0), "a")
    FlatSpatialIndex.from_grid(grid)
    assert grid.frozen
    with pytest.raises(TypeError):
        grid.insert(Point(1.0, 1.0), "b")


def test_flat_negative_radius_rejected():
    tree = RTree.bulk_load([RTreeEntry(BoundingBox(0.0, 0.0, 1.0, 1.0), "a")])
    flat = FlatSpatialIndex.from_rtree(tree)
    with pytest.raises(ValueError):
        flat.within_distance_batch(np.array([0.0]), np.array([0.0]), -1.0)
