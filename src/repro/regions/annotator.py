"""Trajectory annotation with regions of interest (Algorithm 1).

The annotator spatial-joins a raw trajectory (or its episodes) against a
:class:`~repro.regions.sources.RegionSource`, groups consecutive GPS points
falling in the same region, approximates entry/exit times and merges adjacent
tuples that reference the same region — producing the coarse-grained
structured semantic trajectory ``T_region`` of Section 4.1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.annotations import region_annotation
from repro.core.config import RegionAnnotationConfig
from repro.core.episodes import Episode, EpisodeKind
from repro.core.places import RegionOfInterest
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.core.trajectory import SemanticEpisodeRecord, StructuredSemanticTrajectory
from repro.regions.sources import RegionSource

#: Point batches below this stay on the scalar tree even under the flat index
#: backend (the fixed per-call overhead of the batch arrays would dominate).
#: The results are identical either way — the flat index is order- and
#: bit-parity with the tree — so the cutoff only selects a code path.
_FLAT_MIN_BATCH = 8


class RegionAnnotator:
    """Implements Algorithm 1: trajectory annotation with ROIs."""

    def __init__(
        self,
        source: RegionSource,
        config: RegionAnnotationConfig = RegionAnnotationConfig(),
        index_backend: str = "tree",
    ):
        self._source = source
        self._config = config
        self._index_backend = index_backend

    @property
    def source(self) -> RegionSource:
        """The region source used for the spatial join."""
        return self._source

    @property
    def config(self) -> RegionAnnotationConfig:
        """The active region-annotation configuration."""
        return self._config

    @property
    def index_backend(self) -> str:
        """The active spatial-index backend (``"flat"`` or ``"tree"``)."""
        return self._index_backend

    def _regions_for_points(
        self, points: Sequence[SpatioTemporalPoint]
    ) -> List[Optional[RegionOfInterest]]:
        """Region of every GPS point: one batch flat query or per-point tree walks."""
        if self._index_backend == "flat" and len(points) >= _FLAT_MIN_BATCH:
            return self._source.first_regions_containing_batch(
                [point.position for point in points]
            )
        return [self._source.first_region_containing(point.position) for point in points]

    # ------------------------------------------------------------ Algorithm 1
    def annotate_trajectory(self, trajectory: RawTrajectory) -> StructuredSemanticTrajectory:
        """Annotate every GPS record of ``trajectory`` with its region.

        Consecutive points falling in the same region are grouped into a single
        tuple ``(region, t_in, t_out)``; adjacent tuples with the same region
        are merged, exactly as the pseudocode of Algorithm 1 does.
        """
        result = StructuredSemanticTrajectory(
            trajectory_id=f"{trajectory.trajectory_id}:region",
            object_id=trajectory.object_id,
        )
        current_region: Optional[RegionOfInterest] = None
        group_start: Optional[int] = None

        points = trajectory.points
        regions: List[Optional[RegionOfInterest]] = self._regions_for_points(points)

        for index in range(len(points) + 1):
            region = regions[index] if index < len(points) else None
            boundary = index == len(points)
            same_group = (
                not boundary
                and group_start is not None
                and _same_region(current_region, region)
            )
            if same_group:
                continue
            if group_start is not None:
                record = SemanticEpisodeRecord(
                    place=current_region,
                    time_in=points[group_start].t,
                    time_out=points[index - 1].t,
                    kind=EpisodeKind.MOVE,
                    annotations=(
                        [region_annotation(current_region)] if current_region is not None else []
                    ),
                )
                result.append(record)
            if boundary:
                break
            current_region = region
            group_start = index

        return result.merged()

    def annotate_episodes(self, episodes: Sequence[Episode]) -> StructuredSemanticTrajectory:
        """Annotate episodes (instead of every GPS record) with regions.

        Stops are joined by their centre point (when configured) and moves by
        the region containing each point, keeping the dominant region; this is
        the "spatial join computed only for selected episodes" variant the
        paper mentions.
        """
        if not episodes:
            raise ValueError("annotate_episodes requires at least one episode")
        trajectory = episodes[0].trajectory
        result = StructuredSemanticTrajectory(
            trajectory_id=f"{trajectory.trajectory_id}:region-episodes",
            object_id=trajectory.object_id,
        )
        for episode in sorted(episodes, key=lambda ep: ep.start_index):
            result.append(self.annotate_episode(episode))
        return result

    def annotate_episode(self, episode: Episode) -> SemanticEpisodeRecord:
        """Annotate a single episode with its region (one tuple of ``T_region``).

        Attaches the region annotation to the episode and returns the
        corresponding structured record; the streaming engine calls this for
        every episode as soon as it is sealed.
        """
        region = self._region_for_episode(episode)
        annotations = [region_annotation(region)] if region is not None else []
        record = SemanticEpisodeRecord(
            place=region,
            time_in=episode.time_in,
            time_out=episode.time_out,
            kind=episode.kind,
            annotations=annotations,
            source_episode=episode,
        )
        if region is not None:
            episode.add_annotation(region_annotation(region))
        return record

    def _region_for_episode(self, episode: Episode) -> Optional[RegionOfInterest]:
        if episode.is_stop and self._config.use_episode_center_for_stops:
            return self._source.first_region_containing(episode.center())
        if self._config.join_predicate == "intersects":
            candidates = self._source.regions_intersecting(episode.bounding_box())
            if not candidates:
                return None
            return self._dominant_region(episode, candidates)
        return self._dominant_region(episode, None)

    def _dominant_region(
        self, episode: Episode, candidates: Optional[List[RegionOfInterest]]
    ) -> Optional[RegionOfInterest]:
        """The region covering the most GPS points of the episode."""
        counts: Dict[str, int] = {}
        by_id: Dict[str, RegionOfInterest] = {}
        episode_points = episode.points
        point_regions: Optional[List[Optional[RegionOfInterest]]] = None
        if candidates is None:
            point_regions = self._regions_for_points(episode_points)
        for index, point in enumerate(episode_points):
            if point_regions is not None:
                region = point_regions[index]
            else:
                assert candidates is not None
                region = next(
                    (candidate for candidate in candidates if candidate.contains(point.position)),
                    None,
                )
            if region is None:
                continue
            counts[region.place_id] = counts.get(region.place_id, 0) + 1
            by_id[region.place_id] = region
        if not counts:
            return None
        best_id = max(counts.items(), key=lambda pair: (pair[1], pair[0]))[0]
        return by_id[best_id]

    # --------------------------------------------------------------- metrics
    def point_category_distribution(self, trajectories: Sequence[RawTrajectory]) -> Dict[str, int]:
        """Number of GPS points per region category across ``trajectories``.

        This is the per-point distribution plotted in Figure 9 (the
        "trajectory" column) and Figure 14.
        """
        counts: Dict[str, int] = {}
        for trajectory in trajectories:
            for region in self._regions_for_points(trajectory.points):
                if region is None:
                    continue
                counts[region.category] = counts.get(region.category, 0) + 1
        return counts

    def episode_category_distribution(self, episodes: Sequence[Episode]) -> Dict[str, int]:
        """Number of episodes per region category (Figure 9 move/stop columns)."""
        counts: Dict[str, int] = {}
        for episode in episodes:
            region = self._region_for_episode(episode)
            if region is None:
                continue
            counts[region.category] = counts.get(region.category, 0) + 1
        return counts


def _same_region(a: Optional[RegionOfInterest], b: Optional[RegionOfInterest]) -> bool:
    if a is None and b is None:
        return True
    if a is None or b is None:
        return False
    return a.place_id == b.place_id
