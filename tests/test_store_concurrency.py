"""Store concurrency: interleaved sharded commits equal a single-writer run.

The :class:`ShardedStoreWriter` receives per-shard results in arbitrary
completion order (and, in-process, from multiple threads); its commit must
produce exactly the row set, row order and autoincrement identifiers of a
sequential single-writer run — and must be atomic when any row is rejected.
"""

from __future__ import annotations

import threading
from typing import List, Tuple

import pytest

from repro.core.annotations import activity_annotation
from repro.core.config import StopMoveConfig
from repro.core.episodes import Episode, EpisodeKind
from repro.core.errors import StoreError
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.parallel import ShardedStoreWriter
from repro.preprocessing.stops import StopMoveDetector
from repro.store.store import SemanticTrajectoryStore


def _make_workload(count: int = 8) -> List[Tuple[RawTrajectory, List[Episode]]]:
    """Trajectories with real segmented episodes and an annotation each."""
    detector = StopMoveDetector(StopMoveConfig())
    workload = []
    for index in range(count):
        points = []
        t = 0.0
        for i in range(6):  # move
            points.append(SpatioTemporalPoint(50.0 * i, 10.0 * index, t))
            t += 10.0
        for i in range(5):  # dwell
            points.append(SpatioTemporalPoint(300.0 + 0.1 * i, 10.0 * index, t))
            t += 90.0
        trajectory = RawTrajectory(
            points, object_id=f"obj{index % 3}", trajectory_id=f"obj{index % 3}-t{index}"
        )
        episodes = detector.segment(trajectory)
        assert episodes
        episodes[0].annotations.append(
            activity_annotation("errand", category=f"cat-{index}")
        )
        workload.append((trajectory, episodes))
    return workload


def _single_writer_store(workload) -> SemanticTrajectoryStore:
    store = SemanticTrajectoryStore()
    for trajectory, episodes in workload:
        store.save_trajectory(trajectory)
        store.save_episodes(episodes)
    return store


def _assert_stores_identical(got: SemanticTrajectoryStore, want: SemanticTrajectoryStore):
    assert got.stop_move_summary() == want.stop_move_summary()
    assert got.annotation_count() == want.annotation_count()
    assert got.trajectory_ids() == want.trajectory_ids()
    for trajectory_id in want.trajectory_ids():
        want_rows = want.episodes_for(trajectory_id)
        got_rows = got.episodes_for(trajectory_id)
        assert got_rows == want_rows  # includes autoincrement episode ids
        for row in want_rows:
            assert got.annotations_for(row["episode_id"]) == want.annotations_for(
                row["episode_id"]
            )


def test_interleaved_shard_commits_match_single_writer():
    """Shards finishing out of order still commit single-writer rows."""
    workload = _make_workload()
    reference = _single_writer_store(workload)

    store = SemanticTrajectoryStore()
    writer = ShardedStoreWriter(store)
    # Completion order scrambled across 3 shards: last shard reports first.
    shard_of = lambda order: order % 3
    for order in (7, 2, 5, 0, 3, 6, 1, 4):
        trajectory, episodes = workload[order]
        writer.add(shard_of(order), order, trajectory, episodes)
    assert writer.pending_count == len(workload)
    assert writer.shard_indexes == [0, 1, 2]
    writer.commit()
    assert writer.pending_count == 0
    assert writer.committed_total == len(workload)

    _assert_stores_identical(store, reference)
    reference.close()
    store.close()


def test_threaded_shard_adds_match_single_writer():
    """Concurrent in-process adds (one thread per shard) stay consistent."""
    workload = _make_workload()
    reference = _single_writer_store(workload)

    store = SemanticTrajectoryStore()
    writer = ShardedStoreWriter(store)
    shards = {0: [0, 3, 6], 1: [1, 4, 7], 2: [2, 5]}

    def feed(shard_index: int, orders: List[int]) -> None:
        for order in orders:
            trajectory, episodes = workload[order]
            writer.add_result(
                shard_index,
                order,
                type("R", (), {"trajectory": trajectory, "episodes": episodes})(),
            )

    threads = [
        threading.Thread(target=feed, args=(shard_index, orders))
        for shard_index, orders in shards.items()
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    writer.commit()

    _assert_stores_identical(store, reference)
    reference.close()
    store.close()


def test_commit_is_atomic_on_rejected_row():
    """A duplicate trajectory in the batch rolls the whole commit back."""
    workload = _make_workload(count=4)
    store = SemanticTrajectoryStore()
    # The first trajectory is already stored -> the batch must be rejected.
    store.save_trajectory(workload[0][0])
    writer = ShardedStoreWriter(store)
    for order, (trajectory, episodes) in enumerate(workload):
        writer.add(order % 2, order, trajectory, episodes)
    with pytest.raises(StoreError):
        writer.commit()
    # Nothing from the batch landed; the buffers survive for inspection/retry.
    assert store.trajectory_count() == 1
    assert store.episode_count() == 0
    assert store.annotation_count() == 0
    assert writer.pending_count == len(workload)
    store.close()


def test_multiple_commits_append_in_order():
    """Successive commits extend the store exactly like continued sequential writes."""
    workload = _make_workload()
    reference = _single_writer_store(workload)

    store = SemanticTrajectoryStore()
    writer = ShardedStoreWriter(store)
    for order in (1, 0, 2):
        writer.add(0, order, *workload[order])
    writer.commit()
    for order in (5, 7, 3, 4, 6):
        writer.add(1, order, *workload[order])
    writer.commit()
    assert writer.committed_total == len(workload)

    _assert_stores_identical(store, reference)
    reference.close()
    store.close()
