"""The result-ordering tie-break contract of the scalar and flat indexes.

The contract (documented in :mod:`repro.index.rtree` and
:mod:`repro.index.grid_index`): every query returns results ordered by
``(distance, structural row)`` — or plain row order for box searches — where
an entry's *row* is its position in the index's structural enumeration
(R-tree DFS leaf order, grid ``(cell, insertion)`` order).  Equal-distance
neighbours and duplicate bounding boxes therefore have a *provable* relative
order, not an accidental one: these tests construct exact ties (coordinates
chosen so distances are bit-equal floats) and pin the order on both the
scalar indexes and the flat batch indexes.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import BoundingBox, Point
from repro.index.flat import FlatSpatialIndex
from repro.index.grid_index import GridIndex
from repro.index.rtree import RTree, RTreeEntry


def _structural_rows(tree: RTree):
    """Payloads in structural (DFS leaf) order, via the flat compiler's layout."""
    return FlatSpatialIndex.from_rtree(tree).payloads


def test_rtree_duplicate_boxes_keep_row_order_in_search():
    """Duplicate bounding boxes appear in structural row order, repeatably."""
    box = BoundingBox(10.0, 10.0, 20.0, 20.0)
    entries = [RTreeEntry(box, f"dup-{i}") for i in range(10)]
    entries += [RTreeEntry(BoundingBox(100.0, 100.0, 110.0, 110.0), "far")]
    tree = RTree.bulk_load(entries, max_entries=4)
    flat = FlatSpatialIndex.from_rtree(tree)
    rows = flat.payloads

    query = BoundingBox(0.0, 0.0, 50.0, 50.0)
    scalar = [entry.item for entry in tree.search(query)]
    assert scalar == [item for item in rows if item.startswith("dup")]
    # Repeat: the order is deterministic, not incidental.
    assert [entry.item for entry in tree.search(query)] == scalar

    offsets, indices = flat.query_boxes_batch(
        np.array([0.0]), np.array([0.0]), np.array([50.0]), np.array([50.0])
    )
    assert [rows[i] for i in indices[offsets[0] : offsets[1]]] == scalar


def test_rtree_equal_distance_within_distance_ties_by_row():
    """Four corners exactly 5.0 from the centre: ties resolve by row."""
    corners = [
        RTreeEntry(BoundingBox(5.0, 0.0, 5.0, 0.0), "east"),
        RTreeEntry(BoundingBox(-5.0, 0.0, -5.0, 0.0), "west"),
        RTreeEntry(BoundingBox(0.0, 5.0, 0.0, 5.0), "north"),
        RTreeEntry(BoundingBox(0.0, -5.0, 0.0, -5.0), "south"),
        RTreeEntry(BoundingBox(1.0, 0.0, 1.0, 0.0), "inner"),
    ]
    tree = RTree.bulk_load(corners)
    flat = FlatSpatialIndex.from_rtree(tree)
    rows = flat.payloads
    center = Point(0.0, 0.0)

    scalar = tree.within_distance(center, 5.0)
    assert [d for d, _ in scalar] == [1.0, 5.0, 5.0, 5.0, 5.0]
    # The tie block equals the structural row order of the tied entries.
    tied = [entry.item for _, entry in scalar[1:]]
    assert tied == [item for item in rows if item != "inner"]

    offsets, indices, distances = flat.within_distance_batch(
        np.array([0.0]), np.array([0.0]), 5.0
    )
    batch = [rows[i] for i in indices[offsets[0] : offsets[1]]]
    assert batch == [entry.item for _, entry in scalar]
    assert distances.tolist() == [d for d, _ in scalar]


def test_rtree_equal_distance_nearest_ties_by_row():
    """nearest() on a frozen tree emits equal-distance entries in row order.

    The truncation boundary is the interesting case: with count=3 and four
    entries tied at distance 5, the kept entries must be the three with the
    smallest rows — the heap's node-before-entry popping guarantees no
    unexpanded subtree can hide a smaller-row tie.
    """
    entries = [
        RTreeEntry(BoundingBox(5.0, 0.0, 5.0, 0.0), "a"),
        RTreeEntry(BoundingBox(0.0, 5.0, 0.0, 5.0), "b"),
        RTreeEntry(BoundingBox(-5.0, 0.0, -5.0, 0.0), "c"),
        RTreeEntry(BoundingBox(0.0, -5.0, 0.0, -5.0), "d"),
    ]
    # Spread across several leaves so ties span node boundaries.
    filler = [
        RTreeEntry(BoundingBox(50.0 + i, 50.0 + i, 51.0 + i, 51.0 + i), f"f{i}")
        for i in range(12)
    ]
    tree = RTree.bulk_load(entries + filler, max_entries=4)
    tree.freeze()
    flat = FlatSpatialIndex.from_rtree(tree)
    rows = flat.payloads
    tied_rows = [item for item in rows if item in ("a", "b", "c", "d")]

    center = Point(0.0, 0.0)
    scalar_all = tree.nearest(center, count=4)
    assert [entry.item for _, entry in scalar_all] == tied_rows
    scalar_three = tree.nearest(center, count=3)
    assert [entry.item for _, entry in scalar_three] == tied_rows[:3]

    offsets, indices, _ = flat.nearest_batch(np.array([0.0]), np.array([0.0]), 3)
    assert [rows[i] for i in indices[offsets[0] : offsets[1]]] == tied_rows[:3]


def test_rtree_insertion_invalidates_rows():
    """Rows are re-derived after inserts, so the contract survives growth."""
    tree = RTree(max_entries=4)
    for i in range(8):
        tree.insert(BoundingBox(float(i), 0.0, float(i), 0.0), f"p{i}")
    first = [entry.item for _, entry in tree.nearest(Point(3.5, 10.0), count=8)]
    # Two inserts that tie at the query distance with existing entries.
    tree.insert(BoundingBox(3.0, 20.0, 3.0, 20.0), "late-a")
    tree.insert(BoundingBox(4.0, 20.0, 4.0, 20.0), "late-b")
    structural = _structural_rows(tree)
    result = [entry.item for _, entry in tree.nearest(Point(3.5, 10.0), count=10)]
    # (distance, row) order, with rows from the *current* structure.
    expected = sorted(
        structural,
        key=lambda item: (
            Point(3.5, 10.0).distance_to(
                Point(
                    float(item[1:]) if item.startswith("p") else (3.0 if item == "late-a" else 4.0),
                    0.0 if item.startswith("p") else 20.0,
                )
            ),
            structural.index(item),
        ),
    )
    assert result == expected
    assert set(result) == set(first) | {"late-a", "late-b"}


def test_grid_ties_follow_cell_then_insertion_order():
    """Grid ties: lexicographic cell order first, insertion order within a cell."""
    grid = GridIndex(cell_size=10.0)
    # Two coincident points in one cell (insertion order), plus two points in
    # different cells at exactly the same distance from the query centre.
    grid.insert(Point(15.0, 5.0), "cell-a-first")
    grid.insert(Point(15.0, 5.0), "cell-a-second")
    grid.insert(Point(-15.0, 5.0), "cell-west")  # same |dx| as cell-a points
    center = Point(0.0, 5.0)

    scalar = [item for _, _, item in grid.query_radius(center, 20.0)]
    # cell (-2, 0) sorts before cell (1, 0), so at equal distance the west
    # point precedes the two coincident east points, which keep their
    # insertion order.
    assert scalar == ["cell-west", "cell-a-first", "cell-a-second"]
    assert [item for _, _, item in grid.nearest(center, count=3)] == scalar

    flat = FlatSpatialIndex.from_grid(grid)
    offsets, indices, _ = flat.within_distance_batch(np.array([0.0]), np.array([5.0]), 20.0)
    assert [flat.payloads[i] for i in indices[offsets[0] : offsets[1]]] == scalar
