"""Metrics registry: primitives, renderers and the engine/store/stream bundles.

The cross-cutting assertions live here: all three executors publish the same
``engine_*_total`` counter vocabulary, the store's transaction counters
reconcile exactly with its row counts, and the streaming session-manager
signals (evictions, gap close-outs, depth gauges) track the LRU machinery.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import ObservabilityConfig, PipelineConfig
from repro.core.config import StreamingConfig
from repro.core.errors import ConfigurationError
from repro.engine import (
    MicroBatchExecutor,
    Plan,
    ProcessPoolExecutor,
    SequentialExecutor,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    StreamingMetrics,
    bucket_counts,
)
from repro.store.store import SemanticTrajectoryStore
from repro.streaming.session import SessionManager

from test_parallel_parity import _random_multi_user_stream

OBSERVED = ObservabilityConfig(enabled=True)


def _observed_config(**streaming) -> PipelineConfig:
    return dataclasses.replace(
        PipelineConfig.for_people(),
        streaming=StreamingConfig(micro_batch_size=5, apply_cleaning=False, **streaming),
        observability=OBSERVED,
    )


def _trajectories(plan: Plan, seed: int = 17, users: int = 2, points: int = 110):
    streams = _random_multi_user_stream(seed, users=users, points_per_user=points)
    trajectories = []
    for object_id, stream in streams.items():
        trajectories.extend(plan.ingest(stream, object_id=object_id))
    assert trajectories
    return trajectories


# ----------------------------------------------------------------- primitives
def test_counter_is_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("events_total", help="events")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ConfigurationError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(7)
    gauge.inc(2)
    gauge.dec(4)
    assert gauge.value == 5


def test_histogram_buckets_and_mean():
    histogram = MetricsRegistry().histogram("latency", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.1, 0.5, 2.0, 50.0):
        histogram.observe(value)
    # inclusive upper bounds, one overflow bucket
    assert histogram.counts == [2, 1, 1, 1]
    assert histogram.count == 5
    assert histogram.mean() == pytest.approx(52.65 / 5)
    with pytest.raises(ConfigurationError):
        Histogram("bad", (), buckets=(1.0, 0.5))
    with pytest.raises(ConfigurationError):
        Histogram("bad", (), buckets=())


def test_bucket_counts_matches_histogram_binning():
    samples = [0.05, 0.1, 0.5, 2.0, 50.0]
    assert bucket_counts(samples, (0.1, 1.0, 10.0)) == [2, 1, 1, 1]
    assert sum(bucket_counts(samples, DEFAULT_LATENCY_BUCKETS)) == len(samples)


# ------------------------------------------------------------------- registry
def test_registry_get_or_create_and_kind_conflicts():
    registry = MetricsRegistry()
    a = registry.counter("writes_total", executor="sequential")
    b = registry.counter("writes_total", executor="sequential")
    other = registry.counter("writes_total", executor="process")
    assert a is b and a is not other
    assert registry.value("writes_total", executor="sequential") == 0
    assert registry.value("never_registered") is None
    with pytest.raises(ConfigurationError):
        registry.gauge("writes_total", executor="sequential")
    with pytest.raises(ConfigurationError):
        registry.histogram("writes_total", executor="sequential")


def test_registry_snapshot_is_json_shaped():
    import json

    registry = MetricsRegistry()
    registry.counter("a_total", help="a").inc(3)
    registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
    profile_source = MetricsRegistry().stage_latency  # fresh, empty
    registry.observe_latency(profile_source)
    registry.stage_latency.add("map_match", 0.2)
    snapshot = registry.snapshot()
    json.dumps(snapshot)  # must be serialisable as-is
    names = {entry["name"] for entry in snapshot["metrics"]}
    assert names == {"a_total", "h"}
    assert snapshot["stage_latency"]["map_match"]["count"] == 1


def test_prometheus_rendering():
    registry = MetricsRegistry()
    registry.counter("events_total", help="Events seen", executor="sequential").inc(3)
    registry.counter("events_total", help="Events seen", executor="process").inc(5)
    registry.histogram("batch_rows", buckets=(1, 10)).observe(4)
    registry.stage_latency.add("map_match", 0.004)
    text = registry.render_prometheus()
    # HELP/TYPE emitted once per metric name, not once per label set
    assert text.count("# HELP semitri_events_total Events seen") == 1
    assert 'semitri_events_total{executor="sequential"} 3' in text
    assert 'semitri_events_total{executor="process"} 5' in text
    # histogram: cumulative buckets, +Inf, sum and count series
    assert 'semitri_batch_rows_bucket{le="10"} 1' in text
    assert 'semitri_batch_rows_bucket{le="+Inf"} 1' in text
    assert "semitri_batch_rows_count 1" in text
    # the stage-latency backend renders as a per-stage histogram
    assert 'semitri_stage_latency_seconds_bucket{le="0.005",stage="map_match"} 1' in text
    assert 'semitri_stage_latency_seconds_count{stage="map_match"} 1' in text


def test_summary_renders_tables():
    registry = MetricsRegistry()
    registry.counter("events_total", executor="sequential").inc(2)
    registry.stage_latency.add("map_match", 0.5)
    text = registry.summary()
    assert "events_total" in text and "executor=sequential" in text
    assert "map_match" in text and "stage latency" in text


# -------------------------------------------------- engine counters (3 ways)
def test_engine_counters_cover_all_three_executors(annotation_sources):
    """The EngineStats vocabulary is observable for sequential and pool runs
    too — not just micro-batch — with one comparable series per executor."""
    plan = Plan.compile(annotation_sources, config=_observed_config())
    registry = plan.telemetry.metrics
    assert registry is not None
    trajectories = _trajectories(plan)
    expected_events = sum(len(trajectory) for trajectory in trajectories)

    sequential = SequentialExecutor().run(plan, trajectories)
    with ProcessPoolExecutor(workers=2) as pool:
        parallel = pool.run(plan, trajectories)
    micro = MicroBatchExecutor(plan)
    streamed = micro.run(plan, trajectories)

    for executor, results in (
        ("sequential", sequential),
        ("process", parallel),
        ("micro_batch", streamed),
    ):
        assert registry.value("engine_events_total", executor=executor) == expected_events
        assert registry.value("engine_results_total", executor=executor) == len(results)
        assert registry.value("engine_episodes_sealed_total", executor=executor) == sum(
            len(result.episodes) for result in results
        )
    # the live micro-batch counters agree with the legacy EngineStats
    assert registry.value("engine_events_total", executor="micro_batch") == micro.stats.events
    assert (
        registry.value("engine_processing_passes_total", executor="micro_batch")
        == micro.stats.processing_passes
        > 0
    )


def test_disabled_telemetry_registers_nothing(annotation_sources, monkeypatch):
    monkeypatch.delenv("SEMITRI_OBSERVABILITY", raising=False)
    plan = Plan.compile(annotation_sources, config=PipelineConfig.for_people())
    assert plan.telemetry.metrics is None and plan.telemetry.tracer is None
    results = SequentialExecutor().run(plan, _trajectories(plan, users=1, points=80))
    assert results and all(result.spans == [] for result in results)


# -------------------------------------------------------------- store metrics
def test_store_metrics_reconcile_with_store_contents(annotation_sources):
    """Every committed row is counted: the rows_written counter equals the
    store's own table counts, and each per-trajectory transaction commits."""
    store = SemanticTrajectoryStore()
    plan = Plan.compile(
        annotation_sources, config=_observed_config(), store=store, persist=True
    )
    registry = plan.telemetry.metrics
    assert registry is not None
    trajectories = _trajectories(plan, seed=29, users=1, points=90)
    SequentialExecutor().run(plan, trajectories)

    expected_rows = (
        store.trajectory_count()
        + store.gps_record_count()
        + store.episode_count()
        + store.annotation_count()
    )
    assert registry.value("store_rows_written_total") == expected_rows
    assert registry.value("store_commits_total") == len(trajectories)
    assert registry.value("store_rollbacks_total") == 0
    histogram = registry.histogram("store_batch_rows")
    assert histogram.count > 0 and histogram.sum == expected_rows
    store.close()


def test_store_metrics_count_rollbacks(annotation_sources):
    from repro.core.errors import StoreError

    store = SemanticTrajectoryStore()
    plan = Plan.compile(
        annotation_sources, config=_observed_config(), store=store, persist=True
    )
    registry = plan.telemetry.metrics
    assert registry is not None
    trajectories = _trajectories(plan, seed=31, users=1, points=80)
    executor = SequentialExecutor()
    executor.run(plan, trajectories[:1])
    commits = registry.value("store_commits_total")
    with pytest.raises(StoreError):
        executor.run(plan, trajectories[:1])  # duplicate id: transaction fails
    assert registry.value("store_rollbacks_total") == 1
    assert registry.value("store_commits_total") == commits
    store.close()


# ---------------------------------------------------------- streaming metrics
def test_streaming_metrics_track_evictions_and_depth():
    config = dataclasses.replace(
        PipelineConfig.for_people(),
        streaming=StreamingConfig(micro_batch_size=4, max_sessions=2),
    )
    metrics = StreamingMetrics(MetricsRegistry())
    manager = SessionManager(config, apply_cleaning=False, metrics=metrics)
    for object_id in ("a", "b", "c"):  # third acquire evicts the LRU ("a")
        manager.acquire(object_id)
    assert metrics.evictions.value == manager.evicted_total == 1
    assert metrics.open_sessions.value == len(manager) == 2
    manager.pop("b")
    assert metrics.open_sessions.value == 1
    manager.pop_all()
    assert metrics.open_sessions.value == 0


def test_streaming_metrics_count_gap_closeouts(annotation_sources):
    from repro.core.points import SpatioTemporalPoint

    config = _observed_config()
    max_gap = config.identification.max_time_gap
    plan = Plan.compile(annotation_sources, config=config)
    executor = MicroBatchExecutor(plan)
    registry = plan.telemetry.metrics
    assert registry is not None
    # a dense run, a gap far beyond the close-out threshold, another dense run
    points = [SpatioTemporalPoint(float(i) * 5.0, 0.0, float(i) * 10.0) for i in range(30)]
    points += [
        SpatioTemporalPoint(500.0 + float(i) * 5.0, 0.0, max_gap * 3 + float(i) * 10.0)
        for i in range(30)
    ]
    for point in points:
        executor.ingest("walker", point)
    executor.close_all()
    assert registry.value("streaming_gap_closeouts_total") == 1
    assert registry.value("engine_trajectories_discarded_total", executor="micro_batch") == 0
