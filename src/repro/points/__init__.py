"""Semantic Point Annotation Layer (Section 4.3, Algorithm 3).

Annotates stop episodes with the most probable POI category using a Hidden
Markov Model whose observation probabilities are computed from the Gaussian
influence of nearby POIs (Lemma 1), discretised on a grid for efficiency, and
decoded with the Viterbi algorithm.
"""

from repro.points.poi import PoiSource, category_counts
from repro.points.hmm import HiddenMarkovModel, ViterbiResult
from repro.points.observation import PoiObservationModel
from repro.points.annotator import PointAnnotator
from repro.points.activity import ACTIVITY_BY_CATEGORY, trajectory_category

__all__ = [
    "PoiSource",
    "category_counts",
    "HiddenMarkovModel",
    "ViterbiResult",
    "PoiObservationModel",
    "PointAnnotator",
    "ACTIVITY_BY_CATEGORY",
    "trajectory_category",
]
