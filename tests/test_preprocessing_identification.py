"""Unit tests for raw trajectory identification (gap-based splitting)."""

from __future__ import annotations

import pytest

from repro.core.config import TrajectoryIdentificationConfig
from repro.core.points import SpatioTemporalPoint
from repro.preprocessing.identification import TrajectoryIdentifier


def _stream(*triples):
    return [SpatioTemporalPoint(x, y, t) for x, y, t in triples]


class TestSplit:
    def test_no_gap_single_trajectory(self):
        identifier = TrajectoryIdentifier(
            TrajectoryIdentificationConfig(max_time_gap=100, max_distance_gap=100, min_points=2)
        )
        points = _stream(*[(i, 0, i * 10) for i in range(10)])
        trajectories = identifier.split(points, object_id="o")
        assert len(trajectories) == 1
        assert len(trajectories[0]) == 10

    def test_time_gap_splits(self):
        identifier = TrajectoryIdentifier(
            TrajectoryIdentificationConfig(max_time_gap=50, max_distance_gap=1e9, min_points=2)
        )
        points = _stream((0, 0, 0), (1, 0, 10), (2, 0, 20), (3, 0, 500), (4, 0, 510))
        trajectories = identifier.split(points)
        assert len(trajectories) == 2
        assert len(trajectories[0]) == 3
        assert len(trajectories[1]) == 2

    def test_distance_gap_splits(self):
        identifier = TrajectoryIdentifier(
            TrajectoryIdentificationConfig(max_time_gap=1e9, max_distance_gap=10, min_points=2)
        )
        points = _stream((0, 0, 0), (1, 0, 1), (500, 0, 2), (501, 0, 3))
        trajectories = identifier.split(points)
        assert len(trajectories) == 2

    def test_short_fragments_discarded(self):
        identifier = TrajectoryIdentifier(
            TrajectoryIdentificationConfig(max_time_gap=50, max_distance_gap=1e9, min_points=3)
        )
        points = _stream((0, 0, 0), (1, 0, 10), (2, 0, 20), (3, 0, 500), (4, 0, 510))
        trajectories = identifier.split(points)
        assert len(trajectories) == 1

    def test_empty_stream(self):
        assert TrajectoryIdentifier().split([]) == []

    def test_trajectory_ids_are_unique(self):
        identifier = TrajectoryIdentifier(
            TrajectoryIdentificationConfig(max_time_gap=5, max_distance_gap=1e9, min_points=1)
        )
        points = _stream((0, 0, 0), (1, 0, 100), (2, 0, 200))
        trajectories = identifier.split(points, object_id="obj")
        ids = [t.trajectory_id for t in trajectories]
        assert len(ids) == len(set(ids)) == 3
        assert all(t.object_id == "obj" for t in trajectories)


class TestSplitDaily:
    def test_splits_at_midnight(self):
        identifier = TrajectoryIdentifier(
            TrajectoryIdentificationConfig(max_time_gap=1e9, max_distance_gap=1e9, min_points=1)
        )
        day = 86_400.0
        points = _stream((0, 0, 100), (1, 0, 200), (2, 0, day + 100), (3, 0, day + 200))
        trajectories = identifier.split_daily(points, object_id="u")
        assert len(trajectories) == 2

    def test_daily_plus_gap_splitting(self):
        identifier = TrajectoryIdentifier(
            TrajectoryIdentificationConfig(max_time_gap=50, max_distance_gap=1e9, min_points=1)
        )
        points = _stream((0, 0, 0), (1, 0, 10), (2, 0, 500), (3, 0, 510))
        trajectories = identifier.split_daily(points)
        assert len(trajectories) == 2

    def test_empty_daily(self):
        assert TrajectoryIdentifier().split_daily([]) == []
