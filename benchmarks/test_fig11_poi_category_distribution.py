"""Figure 11: semantic stops and trajectories by point annotation.

For the Milan private cars the paper reports three distributions over the five
POI categories: the POI source itself, the inferred stop categories (dominated
by "item sale", then "person life"), and the trajectory categories obtained by
Equation 8 (statistically similar to the stop distribution because there are
few stops per trajectory).  This benchmark reproduces all three columns.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analytics.distributions import normalize_counts
from repro.analytics.reporting import render_table
from repro.points.annotator import PointAnnotator
from repro.preprocessing.stops import StopMoveDetector


def test_fig11_poi_category_distribution(benchmark, world, car_dataset, vehicle_pipeline):
    poi_source = world.poi_source()
    annotator = PointAnnotator(poi_source, vehicle_pipeline.config.point)
    detector = StopMoveDetector(vehicle_pipeline.config.stop_move)
    stops_per_trajectory = {
        trajectory.trajectory_id: detector.stops(trajectory)
        for trajectory in car_dataset.trajectories
    }

    def annotate_all():
        stop_categories = []
        trajectory_categories = []
        for trajectory in car_dataset.trajectories:
            stops = stops_per_trajectory[trajectory.trajectory_id]
            if not stops:
                continue
            categories = annotator.infer_stop_categories(stops)
            stop_categories.extend(categories)
            category = annotator.classify_trajectory(stops)
            if category is not None:
                trajectory_categories.append(category)
        return stop_categories, trajectory_categories

    stop_categories, trajectory_categories = benchmark.pedantic(
        annotate_all, rounds=1, iterations=1
    )

    poi_distribution = poi_source.initial_probabilities()
    stop_distribution = normalize_counts(
        {c: stop_categories.count(c) for c in set(stop_categories)}
    )
    trajectory_distribution = normalize_counts(
        {c: trajectory_categories.count(c) for c in set(trajectory_categories)}
    )

    rows = []
    for category in poi_source.categories():
        rows.append(
            [
                category,
                f"{100 * poi_distribution.get(category, 0.0):.1f}",
                f"{100 * stop_distribution.get(category, 0.0):.1f}",
                f"{100 * trajectory_distribution.get(category, 0.0):.1f}",
            ]
        )
    header = (
        "Figure 11 - Semantic stops / trajectories by point annotation (percent)\n"
        f"{len(poi_source)} POIs, {len(stop_categories)} stops, "
        f"{len(trajectory_categories)} classified trajectories"
    )
    text = render_table(["category", "POI", "stop", "trajectory"], rows, title=header)
    save_result("fig11_poi_category_distribution", text)

    # The paper's ordering: stops are dominated by item sale, then person life.
    assert stop_distribution.get("item sale", 0.0) == max(stop_distribution.values())
    assert stop_distribution.get("person life", 0.0) > stop_distribution.get("feedings", 0.0)
    # Trajectory categories track the stop categories (few stops per trajectory).
    assert (
        max(trajectory_distribution, key=trajectory_distribution.get)
        == max(stop_distribution, key=stop_distribution.get)
    )
