"""POI observation model: Pr(o | category) from Gaussian POI influence.

Section 4.3 / Lemma 1: the probability of observing a stop ``o`` given that
the moving object is interested in category ``Ci`` is proportional to the sum
of the influence of the individual POIs of that category around the stop, each
modelled as an isotropic 2-D Gaussian centred at the POI with a
category-specific variance ``sigma_c^2``.

For efficiency the model discretises the POI area into grid cells and
pre-computes ``Pr(grid_jk | Ci)`` lazily per visited cell, considering only the
POIs within ``neighbor_radius`` of the cell (the "neighbouring POIs in that
box" optimisation of Figure 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import PointAnnotationConfig
from repro.core.episodes import Episode
from repro.geometry.grid import GridSpec
from repro.geometry.kernels import gaussian_2d_density
from repro.geometry.primitives import BoundingBox, Point
from repro.geometry.vectorized import gaussian_2d_densities
from repro.points.poi import PoiSource

#: Neighbour sets smaller than this are summed with the scalar loop even
#: under the numpy backend (fixed kernel overhead would dominate).
_VECTOR_MIN_NEIGHBORS = 8


class PoiObservationModel:
    """Computes ``Pr(stop | category)`` for the point-annotation HMM.

    ``backend`` selects how the Gaussian influence sums of Lemma 1 are
    evaluated per grid cell: ``"numpy"`` gathers the neighbouring POIs'
    coordinates from the source's cached columnar arrays and sums their
    densities with one vectorized kernel sweep, ``"python"`` is the scalar
    reference.  Both accumulate per category in the same neighbour order; the
    densities agree to within 1 ulp (``exp``), and the decoded categories are
    compared exactly by the parity tests.
    """

    def __init__(
        self,
        source: PoiSource,
        config: PointAnnotationConfig = PointAnnotationConfig(),
        backend: str = "numpy",
        index_backend: str = "tree",
    ):
        self._source = source
        self._config = config
        self._backend = backend
        self._index_backend = index_backend
        self._categories = source.categories()
        self._category_index = {category: i for i, category in enumerate(self._categories)}
        bounds = source.bounds().expanded(config.neighbor_radius)
        self._grid = GridSpec.covering(bounds, config.grid_cell_size)
        self._cell_cache: Dict[Tuple[int, int], Dict[str, float]] = {}

    @property
    def categories(self) -> List[str]:
        """Categories the model can score (the HMM hidden states)."""
        return list(self._categories)

    @property
    def grid(self) -> GridSpec:
        """The discretisation grid."""
        return self._grid

    @property
    def config(self) -> PointAnnotationConfig:
        """The active point-annotation configuration."""
        return self._config

    def sigma_for(self, category: str) -> float:
        """Gaussian influence radius sigma_c of a category."""
        return self._config.category_sigmas.get(category, self._config.default_sigma)

    # ---------------------------------------------------------- probabilities
    def probability(self, category: str, stop_center: Point) -> float:
        """``Pr(o | category)`` for a stop observed at ``stop_center``.

        When grid discretisation is possible (the stop falls inside the POI
        area) the pre-computed cell probability is used; otherwise the exact
        Gaussian sum is evaluated at the stop centre.
        """
        cell = self._grid.cell_of(stop_center)
        if cell is None:
            return self._exact_probability(category, stop_center)
        probabilities = self._cell_probabilities(cell)
        return probabilities.get(category, self._config.min_probability)

    def probability_for_episode(self, category: str, episode: Episode) -> float:
        """``Pr(o | category)`` using the stop episode's centre as the observation."""
        return self.probability(category, episode.center())

    def prime(self, points: Sequence[Point]) -> int:
        """Pre-compute the cell probabilities every point in ``points`` will hit.

        Under the flat index backend the uncached cells' neighbour sets are
        fetched with **one** batch query (instead of one grid walk per cell
        per state during Viterbi decoding); the per-cell accumulation then
        follows the active compute backend, so the cached values are identical
        to what the lazy per-cell path would have produced.  Returns the
        number of cells computed; points outside the grid are skipped (they
        take the exact-evaluation path like the scalar code).
        """
        pending: List[Tuple[int, int]] = []
        seen = set(self._cell_cache)
        for point in points:
            cell = self._grid.cell_of(point)
            if cell is None or cell in seen:
                continue
            seen.add(cell)
            pending.append(cell)
        if not pending:
            return 0
        centers = [self._grid.cell_center(cell) for cell in pending]
        if self._index_backend == "flat":
            neighbor_lists = self._source.pois_within_batch(
                centers, self._config.neighbor_radius
            )
        else:
            neighbor_lists = [
                self._source.pois_within(center, self._config.neighbor_radius)
                for center in centers
            ]
        for cell, center, neighbors in zip(pending, centers, neighbor_lists):
            self._cell_cache[cell] = self._probabilities_from_neighbors(center, neighbors)
        return len(pending)

    def category_scores(self, stop_center: Point) -> Dict[str, float]:
        """All category probabilities for one stop (normalised to sum to 1)."""
        raw = {category: self.probability(category, stop_center) for category in self._categories}
        total = sum(raw.values())
        if total <= 0:
            uniform = 1.0 / len(self._categories)
            return {category: uniform for category in self._categories}
        return {category: value / total for category, value in raw.items()}

    def most_likely_category(self, stop_center: Point) -> str:
        """The single most probable category for a stop (no HMM context)."""
        scores = self.category_scores(stop_center)
        return max(scores.items(), key=lambda pair: (pair[1], pair[0]))[0]

    # -------------------------------------------------------------- internals
    def _cell_probabilities(self, cell: Tuple[int, int]) -> Dict[str, float]:
        cached = self._cell_cache.get(cell)
        if cached is not None:
            return cached
        center = self._grid.cell_center(cell)
        probabilities = self._exact_probabilities(center)
        self._cell_cache[cell] = probabilities
        return probabilities

    def _exact_probability(self, category: str, point: Point) -> float:
        return self._exact_probabilities(point).get(category, self._config.min_probability)

    def _exact_probabilities(self, point: Point) -> Dict[str, float]:
        """Lemma 1: sum the Gaussian influence of neighbouring POIs per category."""
        neighbors = self._source.pois_within(point, self._config.neighbor_radius)
        return self._probabilities_from_neighbors(point, neighbors)

    def _probabilities_from_neighbors(self, point: Point, neighbors) -> Dict[str, float]:
        """Per-category Gaussian sums over an already-fetched neighbour list.

        The accumulation path depends only on the compute backend and the
        neighbour set — never on which index produced the set — so the flat
        batch priming and the lazy per-cell path cache identical values.
        """
        # The cutoff is a deterministic function of the neighbour set, so
        # every execution mode evaluates a given cell the same way.
        if self._backend == "numpy" and len(neighbors) >= _VECTOR_MIN_NEIGHBORS:
            return self._exact_probabilities_arrays(point, neighbors)
        sums: Dict[str, float] = {category: 0.0 for category in self._categories}
        for _, poi in neighbors:
            sigma = self.sigma_for(poi.category)
            sums[poi.category] = sums.get(poi.category, 0.0) + gaussian_2d_density(
                point, poi.location, sigma
            )
        floor = self._config.min_probability
        return {category: max(value, floor) for category, value in sums.items()}

    def _exact_probabilities_arrays(self, point: Point, neighbors) -> Dict[str, float]:
        """Vectorized Lemma 1 over the source's columnar POI coordinates.

        Gathers the neighbour rows from :meth:`PoiSource.coordinate_arrays`,
        evaluates every Gaussian density in one kernel call and accumulates
        per category with an ordered scatter-add (``np.add.at`` applies
        updates in index order, i.e. the scalar loop's neighbour order).
        """
        arrays = self._source.coordinate_arrays()
        count = len(neighbors)
        rows = np.fromiter(
            (arrays.row_of[arrays.key_of(poi)] for _, poi in neighbors),
            dtype=np.intp,
            count=count,
        )
        sigmas = np.fromiter(
            (self.sigma_for(arrays.categories[row]) for row in rows),
            dtype=np.float64,
            count=count,
        )
        densities = gaussian_2d_densities(
            point.x, point.y, arrays.xs[rows], arrays.ys[rows], sigmas
        )
        codes = np.fromiter(
            (self._category_index[arrays.categories[row]] for row in rows),
            dtype=np.intp,
            count=count,
        )
        sums = np.zeros(len(self._categories), dtype=np.float64)
        np.add.at(sums, codes, densities)
        floor = self._config.min_probability
        return {
            category: max(float(sums[i]), floor) for i, category in enumerate(self._categories)
        }

    def cache_size(self) -> int:
        """Number of grid cells whose probabilities have been pre-computed."""
        return len(self._cell_cache)

    def precompute_box(self, box: BoundingBox) -> int:
        """Eagerly pre-compute cell probabilities for every cell in ``box``.

        Returns the number of cells computed; used by benchmarks that compare
        the discretised against the exact observation model.
        """
        count = 0
        for cell in self._grid.cells_in_box(box):
            if cell not in self._cell_cache:
                self._cell_probabilities(cell)
                count += 1
        return count
