"""Unit and property-based tests for the R-tree."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.primitives import BoundingBox, Point
from repro.index.rtree import RTree, RTreeEntry


def _box_for(x: float, y: float, w: float = 1.0, h: float = 1.0) -> BoundingBox:
    return BoundingBox(x, y, x + w, y + h)


class TestRTreeBasics:
    def test_empty_tree(self):
        tree = RTree()
        assert len(tree) == 0
        assert tree.bounds is None
        assert tree.search(_box_for(0, 0)) == []
        assert tree.nearest(Point(0, 0)) == []

    def test_insert_and_search(self):
        tree = RTree()
        tree.insert(_box_for(0, 0), "a")
        tree.insert(_box_for(10, 10), "b")
        hits = tree.search_items(_box_for(-1, -1, 3, 3))
        assert hits == ["a"]

    def test_insert_point(self):
        tree = RTree()
        tree.insert_point(Point(5, 5), "p")
        assert tree.query_point(Point(5, 5))[0].item == "p"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RTree(max_entries=2)
        with pytest.raises(ValueError):
            RTree(max_entries=8, min_entries=5)

    def test_bulk_load_matches_inserted_content(self):
        entries = [RTreeEntry(_box_for(i, i), i) for i in range(100)]
        tree = RTree.bulk_load(entries, max_entries=8)
        assert len(tree) == 100
        assert sorted(entry.item for entry in tree.all_entries()) == list(range(100))

    def test_bulk_load_empty(self):
        tree = RTree.bulk_load([])
        assert len(tree) == 0

    def test_query_point_exact_containment(self):
        tree = RTree()
        tree.insert(BoundingBox(0, 0, 10, 10), "big")
        tree.insert(BoundingBox(20, 20, 30, 30), "far")
        hits = [entry.item for entry in tree.query_point(Point(5, 5))]
        assert hits == ["big"]

    def test_nearest_returns_sorted_distances(self):
        tree = RTree()
        for i in range(10):
            tree.insert_point(Point(i * 10, 0), i)
        results = tree.nearest(Point(2, 0), count=3)
        assert [entry.item for _, entry in results] == [0, 1, 2]
        distances = [distance for distance, _ in results]
        assert distances == sorted(distances)

    def test_nearest_with_custom_distance(self):
        tree = RTree()
        tree.insert(BoundingBox(0, 0, 10, 0.1), "h")
        tree.insert(BoundingBox(5, 5, 5.1, 15), "v")
        results = tree.nearest(
            Point(5, 3), count=2, distance_fn=lambda p, e: e.box.min_distance_to_point(p)
        )
        assert results[0][1].item == "v" or results[0][0] <= results[1][0]

    def test_within_distance(self):
        tree = RTree()
        for i in range(20):
            tree.insert_point(Point(i, 0), i)
        results = tree.within_distance(Point(0, 0), radius=5.0)
        assert [entry.item for _, entry in results] == [0, 1, 2, 3, 4, 5]

    def test_within_distance_negative_radius_raises(self):
        tree = RTree()
        with pytest.raises(ValueError):
            tree.within_distance(Point(0, 0), radius=-1.0)


class TestRTreeScale:
    def test_many_inserts_keep_invariants(self):
        rng = random.Random(3)
        tree = RTree(max_entries=8)
        boxes = []
        for i in range(400):
            x, y = rng.uniform(0, 1000), rng.uniform(0, 1000)
            box = _box_for(x, y, rng.uniform(1, 20), rng.uniform(1, 20))
            boxes.append((box, i))
            tree.insert(box, i)
        tree.check_invariants()
        # Every inserted item must be findable through its own box.
        for box, item in boxes:
            assert item in tree.search_items(box)

    def test_search_agrees_with_linear_scan(self):
        rng = random.Random(7)
        boxes = [
            (_box_for(rng.uniform(0, 500), rng.uniform(0, 500), 5, 5), i) for i in range(300)
        ]
        tree = RTree.bulk_load([RTreeEntry(box, item) for box, item in boxes], max_entries=10)
        tree.check_invariants()
        query = BoundingBox(100, 100, 200, 250)
        expected = sorted(item for box, item in boxes if box.intersects(query))
        actual = sorted(tree.search_items(query))
        assert actual == expected

    def test_nearest_agrees_with_linear_scan(self):
        rng = random.Random(11)
        points = [(Point(rng.uniform(0, 100), rng.uniform(0, 100)), i) for i in range(200)]
        tree = RTree()
        for point, item in points:
            tree.insert_point(point, item)
        query = Point(50, 50)
        expected = min(points, key=lambda pair: pair[0].distance_to(query))[1]
        actual = tree.nearest(query, count=1)[0][1].item
        assert actual == expected


@st.composite
def boxes(draw):
    x = draw(st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False))
    y = draw(st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False))
    w = draw(st.floats(min_value=0, max_value=50, allow_nan=False, allow_infinity=False))
    h = draw(st.floats(min_value=0, max_value=50, allow_nan=False, allow_infinity=False))
    return BoundingBox(x, y, x + w, y + h)


class TestRTreeProperties:
    @given(st.lists(boxes(), min_size=0, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_insertion_preserves_invariants_and_count(self, box_list):
        tree = RTree(max_entries=6)
        for index, box in enumerate(box_list):
            tree.insert(box, index)
        tree.check_invariants()
        assert len(tree) == len(box_list)

    @given(st.lists(boxes(), min_size=1, max_size=60), boxes())
    @settings(max_examples=50, deadline=None)
    def test_range_query_matches_linear_scan(self, box_list, query):
        tree = RTree.bulk_load(
            [RTreeEntry(box, index) for index, box in enumerate(box_list)], max_entries=6
        )
        expected = sorted(index for index, box in enumerate(box_list) if box.intersects(query))
        assert sorted(tree.search_items(query)) == expected

    @given(st.lists(boxes(), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_every_entry_found_by_point_query_at_its_center(self, box_list):
        tree = RTree(max_entries=5)
        for index, box in enumerate(box_list):
            tree.insert(box, index)
        for index, box in enumerate(box_list):
            hits = [entry.item for entry in tree.query_point(box.center)]
            assert index in hits
