"""Kernel smoothing weights and Gaussian influence functions.

Two places in the paper use Gaussian kernels:

* Equation 4 weighs the neighbouring points of a GPS sample inside the global
  map-matching context window: ``w_k = exp(-d(Q0,Qk)^2 / (2 sigma^2))`` when
  the neighbour lies within the view radius ``R`` and zero otherwise.
* Section 4.3 models each POI's influence on a stop as a two-dimensional
  isotropic Gaussian centred at the POI with a category-specific variance.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.geometry.primitives import Point


def gaussian_kernel_weight(distance: float, bandwidth: float, radius: float) -> float:
    """Equation 4: kernel weight of a neighbour at ``distance`` from the centre.

    ``bandwidth`` is the kernel width sigma and ``radius`` the global view
    radius R; neighbours outside the radius get a zero weight.
    """
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    if radius <= 0:
        raise ValueError("radius must be positive")
    if distance >= radius:
        return 0.0
    return math.exp(-(distance * distance) / (2.0 * bandwidth * bandwidth))


def kernel_weights(
    center: Point,
    neighbors: Sequence[Point],
    bandwidth: float,
    radius: float,
) -> list:
    """Kernel weight of every neighbour relative to ``center``.

    Returns a list of floats aligned with ``neighbors``; neighbours farther
    than ``radius`` from the centre receive weight 0.
    """
    weights = []
    for neighbor in neighbors:
        distance = center.distance_to(neighbor)
        weights.append(gaussian_kernel_weight(distance, bandwidth, radius))
    return weights


def gaussian_2d_density(point: Point, mean: Point, sigma: float) -> float:
    """Isotropic 2-D Gaussian density of ``point`` around ``mean``.

    This is the POI influence model of Section 4.3: the mean is the POI's
    physical position and the (diagonal) covariance is ``sigma^2 I`` with a
    category-specific ``sigma``.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    dx = point.x - mean.x
    dy = point.y - mean.y
    exponent = -(dx * dx + dy * dy) / (2.0 * sigma * sigma)
    normalization = 1.0 / (2.0 * math.pi * sigma * sigma)
    return normalization * math.exp(exponent)


def gaussian_2d_mass_in_box(
    mean: Point,
    sigma: float,
    min_x: float,
    min_y: float,
    max_x: float,
    max_y: float,
) -> float:
    """Probability mass of an isotropic Gaussian inside an axis-aligned box.

    Because the covariance is diagonal the mass factorises into the product of
    two one-dimensional normal CDF differences.  Used when pre-computing the
    discretised observation probabilities ``Pr(grid_jk | Ci)``.
    """
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    return (_normal_cdf(max_x, mean.x, sigma) - _normal_cdf(min_x, mean.x, sigma)) * (
        _normal_cdf(max_y, mean.y, sigma) - _normal_cdf(min_y, mean.y, sigma)
    )


def _normal_cdf(value: float, mean: float, sigma: float) -> float:
    """Cumulative distribution function of a 1-D normal distribution."""
    return 0.5 * (1.0 + math.erf((value - mean) / (sigma * math.sqrt(2.0))))
