"""Unit tests for episodes and episode partitions."""

from __future__ import annotations

import pytest

from repro.core.annotations import AnnotationKind, transport_mode_annotation
from repro.core.episodes import (
    Episode,
    EpisodeKind,
    episode_kind_counts,
    validate_episode_partition,
)
from repro.core.errors import DataQualityError
from repro.core.points import build_trajectory


@pytest.fixture()
def trajectory():
    triples = [(float(i), 0.0, float(i * 10)) for i in range(10)]
    return build_trajectory(triples, object_id="obj", trajectory_id="traj")


class TestEpisode:
    def test_basic_properties(self, trajectory):
        episode = Episode(EpisodeKind.MOVE, trajectory, 2, 6)
        assert len(episode) == 4
        assert episode.time_in == 20
        assert episode.time_out == 50
        assert episode.duration == 30
        assert episode.is_move and not episode.is_stop

    def test_invalid_range_raises(self, trajectory):
        with pytest.raises(DataQualityError):
            Episode(EpisodeKind.STOP, trajectory, 5, 5)
        with pytest.raises(DataQualityError):
            Episode(EpisodeKind.STOP, trajectory, -1, 2)
        with pytest.raises(DataQualityError):
            Episode(EpisodeKind.STOP, trajectory, 0, 99)

    def test_center_and_bbox(self, trajectory):
        episode = Episode(EpisodeKind.STOP, trajectory, 0, 3)
        assert episode.center().x == pytest.approx(1.0)
        assert episode.bounding_box().max_x == pytest.approx(2.0)

    def test_path_length_and_speed(self, trajectory):
        episode = Episode(EpisodeKind.MOVE, trajectory, 0, 5)
        assert episode.path_length() == pytest.approx(4.0)
        assert episode.average_speed() == pytest.approx(4.0 / 40.0)

    def test_single_point_episode_speed_zero(self, trajectory):
        episode = Episode(EpisodeKind.STOP, trajectory, 0, 1)
        assert episode.average_speed() == 0.0

    def test_annotations(self, trajectory):
        episode = Episode(EpisodeKind.MOVE, trajectory, 0, 3)
        episode.add_annotation(transport_mode_annotation("bus"))
        assert len(episode.annotations_of_kind(AnnotationKind.TRANSPORT_MODE)) == 1
        assert episode.first_annotation_of_kind(AnnotationKind.TRANSPORT_MODE).value == "bus"
        assert episode.first_annotation_of_kind(AnnotationKind.REGION) is None


class TestPartitionValidation:
    def test_valid_partition(self, trajectory):
        episodes = [
            Episode(EpisodeKind.STOP, trajectory, 0, 4),
            Episode(EpisodeKind.MOVE, trajectory, 4, 10),
        ]
        validate_episode_partition(trajectory, episodes)

    def test_partition_must_start_at_zero(self, trajectory):
        episodes = [Episode(EpisodeKind.MOVE, trajectory, 1, 10)]
        with pytest.raises(DataQualityError):
            validate_episode_partition(trajectory, episodes)

    def test_partition_must_cover_end(self, trajectory):
        episodes = [Episode(EpisodeKind.MOVE, trajectory, 0, 9)]
        with pytest.raises(DataQualityError):
            validate_episode_partition(trajectory, episodes)

    def test_partition_must_be_contiguous(self, trajectory):
        episodes = [
            Episode(EpisodeKind.STOP, trajectory, 0, 4),
            Episode(EpisodeKind.MOVE, trajectory, 5, 10),
        ]
        with pytest.raises(DataQualityError):
            validate_episode_partition(trajectory, episodes)

    def test_empty_partition_rejected(self, trajectory):
        with pytest.raises(DataQualityError):
            validate_episode_partition(trajectory, [])

    def test_kind_counts(self, trajectory):
        episodes = [
            Episode(EpisodeKind.STOP, trajectory, 0, 4),
            Episode(EpisodeKind.MOVE, trajectory, 4, 8),
            Episode(EpisodeKind.STOP, trajectory, 8, 10),
        ]
        assert episode_kind_counts(episodes) == (2, 1)
