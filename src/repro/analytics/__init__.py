"""Semantic Trajectory Analytics Layer.

Computes the aggregate statistics the paper reports: landuse/POI category
distributions (Figures 9, 11, 14), episode length distributions (Figures 12
and 13), storage compression (Section 5.2) and per-stage latency profiles
(Figure 17), plus the plain-text table/series renderers the benchmark harness
prints.
"""

from repro.analytics.distributions import (
    category_distribution,
    log_log_histogram,
    normalize_counts,
    top_k_categories,
)
from repro.analytics.compression import CompressionReport, compression_report
from repro.analytics.latency import LatencyProfile, StageTimer
from repro.analytics.statistics import (
    EpisodeStatistics,
    episode_statistics,
    per_user_summary,
)
from repro.analytics.places import FrequentPlace, FrequentPlaceMiner, label_home_and_work
from repro.analytics.patterns import (
    MobilityStatistics,
    SequencePattern,
    frequent_sequences,
    mobility_statistics,
    radius_of_gyration,
)
from repro.analytics.reporting import render_distribution_table, render_series, render_table

__all__ = [
    "category_distribution",
    "log_log_histogram",
    "normalize_counts",
    "top_k_categories",
    "CompressionReport",
    "compression_report",
    "LatencyProfile",
    "StageTimer",
    "EpisodeStatistics",
    "episode_statistics",
    "per_user_summary",
    "FrequentPlace",
    "FrequentPlaceMiner",
    "label_home_and_work",
    "MobilityStatistics",
    "SequencePattern",
    "frequent_sequences",
    "mobility_statistics",
    "radius_of_gyration",
    "render_distribution_table",
    "render_series",
    "render_table",
]
