"""Streaming GPS cleaner: exact parity with the batch cleaner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CleaningConfig
from repro.core.errors import DataQualityError
from repro.core.points import SpatioTemporalPoint
from repro.preprocessing.cleaning import GpsCleaner
from repro.streaming import StreamingGpsCleaner, clean_stream


def _random_stream(seed: int, n: int, outlier_rate: float = 0.1):
    rng = np.random.default_rng(seed)
    points = []
    t = 0.0
    x, y = 0.0, 0.0
    for _ in range(n):
        t += float(rng.uniform(1.0, 30.0))
        x += float(rng.normal(0.0, 20.0))
        y += float(rng.normal(0.0, 20.0))
        if rng.random() < outlier_rate:
            points.append(SpatioTemporalPoint(x + 50_000.0, y, t))
        elif rng.random() < 0.05:
            points.append(SpatioTemporalPoint(x, y, t))  # duplicate timestamp later
        else:
            points.append(SpatioTemporalPoint(x, y, t))
    return points


@pytest.mark.parametrize(
    "config",
    [
        CleaningConfig(),
        CleaningConfig(smoothing_window=5, smoothing_method="mean"),
        CleaningConfig(smoothing_window=1),
        CleaningConfig(smoothing_method="none"),
        CleaningConfig(max_speed=5.0, smoothing_window=7),
    ],
)
def test_streaming_clean_matches_batch(config):
    points = _random_stream(seed=3, n=300)
    batch = GpsCleaner(config).clean(points)
    streamed = clean_stream(points, config)
    assert [p.as_tuple() for p in streamed] == [p.as_tuple() for p in batch]


@pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
def test_streaming_clean_tiny_streams(n):
    config = CleaningConfig(smoothing_window=3)
    points = _random_stream(seed=9, n=n, outlier_rate=0.0)
    batch = GpsCleaner(config).clean(points)
    streamed = clean_stream(points, config)
    assert [p.as_tuple() for p in streamed] == [p.as_tuple() for p in batch]


def test_duplicate_timestamps_are_dropped_like_batch():
    config = CleaningConfig()
    points = [
        SpatioTemporalPoint(0, 0, 0.0),
        SpatioTemporalPoint(5, 0, 0.0),  # duplicate timestamp
        SpatioTemporalPoint(10, 0, 10.0),
        SpatioTemporalPoint(20, 0, 20.0),
    ]
    batch = GpsCleaner(config).clean(points)
    streamed = clean_stream(points, config)
    assert [p.as_tuple() for p in streamed] == [p.as_tuple() for p in batch]


def test_emission_lag_is_bounded_by_half_window():
    config = CleaningConfig(smoothing_window=5)
    cleaner = StreamingGpsCleaner(config)
    for index in range(50):
        cleaner.push(SpatioTemporalPoint(float(index), 0.0, float(index)))
        assert cleaner.pending_count <= config.smoothing_window // 2
    assert cleaner.finish()
    assert cleaner.pending_count == 0


def test_decreasing_timestamps_raise():
    cleaner = StreamingGpsCleaner(CleaningConfig())
    cleaner.push(SpatioTemporalPoint(0, 0, 10.0))
    with pytest.raises(DataQualityError):
        cleaner.push(SpatioTemporalPoint(1, 0, 5.0))


def test_push_after_finish_raises():
    cleaner = StreamingGpsCleaner(CleaningConfig())
    cleaner.push(SpatioTemporalPoint(0, 0, 0.0))
    cleaner.finish()
    with pytest.raises(DataQualityError):
        cleaner.push(SpatioTemporalPoint(1, 0, 1.0))
