"""Unified telemetry for the SeMiTri reproduction.

Three layers, matching the tentpole design:

* :mod:`repro.obs.trace` — per-trajectory spans (trace id = trajectory id)
  that survive the process-pool boundary by riding back on pickled results
  and being *adopted* into the parent-process tracer;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms,
  with the existing :class:`~repro.analytics.latency.LatencyProfile` as the
  stage-latency histogram backend so the Figure 17 numbers stay bitwise
  identical;
* :mod:`repro.obs.exporters` — JSONL span/metric dumps, a Prometheus
  text-format renderer and a human ``summary()`` table.

:class:`~repro.obs.runtime.Telemetry` bundles them per compiled plan;
``PipelineConfig.observability`` (or the ``SEMITRI_OBSERVABILITY`` env var)
selects what runs, defaulting to the zero-allocation :data:`DISABLED` no-op.
"""

from repro.obs.exporters import JsonlExporter, PrometheusExporter, read_spans
from repro.obs.metrics import (
    DEFAULT_BATCH_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    EngineCounters,
    Gauge,
    Histogram,
    MetricsRegistry,
    StoreMetrics,
    StreamingMetrics,
    bucket_counts,
)
from repro.obs.runtime import DISABLED, Telemetry
from repro.obs.trace import (
    Span,
    SpanNode,
    Tracer,
    TrajectoryTrace,
    build_span_tree,
    render_span_tree,
)

__all__ = [
    "Span",
    "SpanNode",
    "Tracer",
    "TrajectoryTrace",
    "build_span_tree",
    "render_span_tree",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EngineCounters",
    "StreamingMetrics",
    "StoreMetrics",
    "bucket_counts",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_BATCH_BUCKETS",
    "Telemetry",
    "DISABLED",
    "JsonlExporter",
    "PrometheusExporter",
    "read_spans",
]
