"""Online/batch parity: the streaming engine reproduces ``annotate_many`` exactly.

Every seed dataset is fed point-by-point through the streaming engine; the
sealed results must carry identical episode boundaries, matched segments and
annotations to the batch pipeline run on the same trajectories.  A second
suite checks the full-stream path (cleaning + gap identification) against
``ingest_stream`` + ``annotate_many``, including trajectory numbering and
store contents.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np
import pytest

from repro.core import AnnotationSources, PipelineConfig, PipelineResult, SeMiTriPipeline
from repro.core.config import StreamingConfig, TrajectoryIdentificationConfig
from repro.core.points import SpatioTemporalPoint
from repro.store.store import SemanticTrajectoryStore
from repro.streaming import StreamingAnnotationEngine


def _annotation_signature(annotation):
    return (
        annotation.kind.value,
        getattr(annotation, "place_id", None),
        getattr(annotation, "category", None),
        getattr(annotation, "label", None),
        getattr(annotation, "value", None),
        annotation.confidence,
    )


def _episode_signature(episode):
    return (
        episode.kind.value,
        episode.start_index,
        episode.end_index,
        episode.time_in,
        episode.time_out,
        [_annotation_signature(a) for a in episode.annotations],
    )


def _structured_signature(structured):
    if structured is None:
        return None
    return [
        (
            record.place.place_id if record.place is not None else None,
            record.time_in,
            record.time_out,
            record.kind.value,
            [_annotation_signature(a) for a in record.annotations],
        )
        for record in structured
    ]


def _assert_results_match(batch: List[PipelineResult], streamed: List[PipelineResult]):
    assert len(batch) == len(streamed)
    for expected, got in zip(batch, streamed):
        assert len(expected.trajectory) == len(got.trajectory)
        assert [e for e in map(_episode_signature, expected.episodes)] == [
            e for e in map(_episode_signature, got.episodes)
        ]
        assert _structured_signature(expected.region_trajectory) == _structured_signature(
            got.region_trajectory
        )
        assert [_structured_signature(t) for t in expected.line_trajectories] == [
            _structured_signature(t) for t in got.line_trajectories
        ]
        assert _structured_signature(expected.point_trajectory) == _structured_signature(
            got.point_trajectory
        )
        assert expected.trajectory_category == got.trajectory_category


def _parity_config(base: PipelineConfig, micro_batch_size: int) -> PipelineConfig:
    """Batch ``annotate_many`` never splits or discards, so neutralise both."""
    return dataclasses.replace(
        base,
        identification=TrajectoryIdentificationConfig(
            max_time_gap=1e15, max_distance_gap=1e15, min_points=1
        ),
        streaming=StreamingConfig(micro_batch_size=micro_batch_size, apply_cleaning=False),
    )


def _run_engine(trajectories, sources, config) -> List[PipelineResult]:
    engine = StreamingAnnotationEngine(sources, config=config)
    results: List[PipelineResult] = []
    for trajectory in trajectories:
        for point in trajectory.points:
            results.extend(engine.ingest(trajectory.object_id, point))
        results.extend(engine.close_object(trajectory.object_id))
    assert engine.stats.episodes_sealed > 0
    return results


@pytest.mark.parametrize("micro_batch_size", [8])
def test_taxi_dataset_parity(taxi_dataset, annotation_sources, micro_batch_size):
    config = _parity_config(PipelineConfig.for_vehicles(), micro_batch_size)
    batch = SeMiTriPipeline(config).annotate_many(taxi_dataset.trajectories, annotation_sources)
    streamed = _run_engine(taxi_dataset.trajectories, annotation_sources, config)
    _assert_results_match(batch, streamed)


@pytest.mark.parametrize("micro_batch_size", [1, 16])
def test_car_dataset_parity(car_dataset, annotation_sources, micro_batch_size):
    config = _parity_config(PipelineConfig.for_vehicles(), micro_batch_size)
    batch = SeMiTriPipeline(config).annotate_many(car_dataset.trajectories, annotation_sources)
    streamed = _run_engine(car_dataset.trajectories, annotation_sources, config)
    _assert_results_match(batch, streamed)


@pytest.mark.parametrize("micro_batch_size", [8])
def test_people_dataset_parity(people_dataset, annotation_sources, micro_batch_size):
    config = _parity_config(PipelineConfig.for_people(), micro_batch_size)
    trajectories = people_dataset.all_trajectories
    batch = SeMiTriPipeline(config).annotate_many(trajectories, annotation_sources)
    streamed = _run_engine(trajectories, annotation_sources, config)
    _assert_results_match(batch, streamed)


def test_interleaved_objects_parity(car_dataset, annotation_sources):
    """Events from different objects interleaved like a live feed."""
    config = _parity_config(PipelineConfig.for_vehicles(), micro_batch_size=32)
    trajectories = car_dataset.trajectories[:6]
    batch = SeMiTriPipeline(config).annotate_many(trajectories, annotation_sources)

    events = sorted(
        (
            (point.t, trajectory.object_id, point)
            for trajectory in trajectories
            for point in trajectory.points
        ),
        key=lambda item: item[0],
    )
    engine = StreamingAnnotationEngine(annotation_sources, config=config)
    results = engine.ingest_many((object_id, point) for _, object_id, point in events)
    results.extend(engine.close_all())

    # close_all seals in LRU order; re-align by trajectory identity.
    by_object = {r.trajectory.object_id: r for r in results}
    assert len(by_object) == len(trajectories)
    reordered = [by_object[t.object_id] for t in trajectories]
    _assert_results_match(batch, reordered)


def test_full_stream_parity_with_cleaning_and_gaps(annotation_sources):
    """Raw noisy stream: engine == ingest_stream + annotate_many, ids included."""
    rng = np.random.default_rng(17)
    points = []
    t = 0.0
    x, y = 3000.0, 3000.0
    for index in range(500):
        t += float(rng.uniform(5.0, 40.0))
        if index in (150, 320):
            t += 7200.0  # forces a trajectory split
        x += float(rng.normal(0.0, 25.0))
        y += float(rng.normal(0.0, 25.0))
        if rng.random() < 0.04:
            points.append(SpatioTemporalPoint(x + 40_000.0, y, t))  # outlier
        else:
            points.append(SpatioTemporalPoint(x, y, t))

    config = dataclasses.replace(
        PipelineConfig.for_people(),
        streaming=StreamingConfig(micro_batch_size=5, apply_cleaning=True),
    )
    pipeline = SeMiTriPipeline(config)
    raw_trajectories = pipeline.ingest_stream(points, object_id="u0")
    assert len(raw_trajectories) >= 2
    batch = pipeline.annotate_many(raw_trajectories, annotation_sources)

    engine = StreamingAnnotationEngine(annotation_sources, config=config)
    streamed: List[PipelineResult] = []
    for point in points:
        streamed.extend(engine.ingest("u0", point))
    streamed.extend(engine.close_all())

    assert [r.trajectory.trajectory_id for r in streamed] == [
        t.trajectory_id for t in raw_trajectories
    ]
    for expected, got in zip(raw_trajectories, streamed):
        assert [p.as_tuple() for p in expected.points] == [
            p.as_tuple() for p in got.trajectory.points
        ]
    _assert_results_match(batch, streamed)


def test_store_contents_match_batch(taxi_dataset, annotation_sources):
    """Persisted rows (trajectories, episodes, annotations) are identical."""
    config = _parity_config(PipelineConfig.for_vehicles(), micro_batch_size=8)

    batch_store = SemanticTrajectoryStore()
    SeMiTriPipeline(config, store=batch_store).annotate_many(
        taxi_dataset.trajectories, annotation_sources, persist=True
    )

    stream_store = SemanticTrajectoryStore()
    engine = StreamingAnnotationEngine(
        annotation_sources, config=config, store=stream_store, persist=True
    )
    for trajectory in taxi_dataset.trajectories:
        for point in trajectory.points:
            engine.ingest(trajectory.object_id, point)
        engine.close_object(trajectory.object_id)

    assert stream_store.stop_move_summary() == batch_store.stop_move_summary()
    assert stream_store.annotation_count() == batch_store.annotation_count()
    assert stream_store.category_histogram() == batch_store.category_histogram()
    # Trajectory ids differ (dataset naming vs session numbering); rows are
    # compared positionally.
    for batch_id, stream_id in zip(batch_store.trajectory_ids(), stream_store.trajectory_ids()):
        batch_episodes = batch_store.episodes_for(batch_id)
        stream_episodes = stream_store.episodes_for(stream_id)
        strip = lambda rows: [
            {k: v for k, v in row.items() if k not in ("episode_id",)} for row in rows
        ]
        assert strip(stream_episodes) == strip(batch_episodes)
        for batch_row, stream_row in zip(batch_episodes, stream_episodes):
            assert stream_store.annotations_for(
                stream_row["episode_id"]
            ) == batch_store.annotations_for(batch_row["episode_id"])
    batch_store.close()
    stream_store.close()


def test_latency_profile_uses_figure17_stage_names(taxi_dataset, annotation_sources):
    config = _parity_config(PipelineConfig.for_vehicles(), micro_batch_size=8)
    store = SemanticTrajectoryStore()
    engine = StreamingAnnotationEngine(
        annotation_sources, config=config, store=store, persist=True
    )
    trajectory = taxi_dataset.trajectories[0]
    for point in trajectory.points:
        engine.ingest(trajectory.object_id, point)
    results = engine.close_object(trajectory.object_id)
    store.close()
    assert len(results) == 1
    stages = set(results[0].latency.stages())
    assert {
        "compute_episode",
        "store_episode",
        "landuse_join",
        "map_match",
        "poi_annotation",
        "store_match_result",
    } <= stages
