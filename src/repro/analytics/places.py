"""Frequent-place discovery from stop episodes.

The Semantic Trajectory Analytics Layer of Figure 2 lists clustering among its
methodologies ("frequent stops, trajectory patterns").  This module clusters
stop centres into *frequent places* — the personally meaningful locations
(home, office, favourite shop) that recur across the daily trajectories of one
moving object — with a simple density-based (DBSCAN-style) clustering over
stop centres.

The discovered places can then be named from the annotations the semantic
layers attached to their member stops (dominant landuse category, dominant
activity), which is how "home" / "office" style labels emerge without any
application database.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.annotations import AnnotationKind, GeographicReferenceAnnotation, ValueAnnotation
from repro.core.episodes import Episode
from repro.geometry.primitives import BoundingBox, Point
from repro.index.grid_index import GridIndex


@dataclass
class FrequentPlace:
    """A cluster of stop episodes that recur at (roughly) the same location."""

    place_index: int
    center: Point
    stops: List[Episode] = field(default_factory=list)

    @property
    def visit_count(self) -> int:
        """Number of stop episodes in the cluster."""
        return len(self.stops)

    @property
    def total_dwell_time(self) -> float:
        """Total time (seconds) spent at this place across all visits."""
        return sum(stop.duration for stop in self.stops)

    def bounding_box(self) -> BoundingBox:
        """Bounding box of the member stop centres."""
        return BoundingBox.from_points([stop.center() for stop in self.stops])

    def dominant_activity(self) -> Optional[str]:
        """The most frequent activity annotation among member stops, if any."""
        labels: List[str] = []
        for stop in self.stops:
            for annotation in stop.annotations_of_kind(AnnotationKind.ACTIVITY):
                if isinstance(annotation, ValueAnnotation) and annotation.value is not None:
                    labels.append(str(annotation.value))
        if not labels:
            return None
        return Counter(labels).most_common(1)[0][0]

    def dominant_region_category(self) -> Optional[str]:
        """The most frequent landuse category among member stops, if any."""
        labels: List[str] = []
        for stop in self.stops:
            for annotation in stop.annotations_of_kind(AnnotationKind.REGION):
                if isinstance(annotation, GeographicReferenceAnnotation):
                    labels.append(annotation.category)
        if not labels:
            return None
        return Counter(labels).most_common(1)[0][0]


class FrequentPlaceMiner:
    """Density-based clustering of stop centres into frequent places.

    Parameters
    ----------
    radius:
        Two stops closer than this (centre to centre) belong to the same place.
    min_visits:
        Clusters with fewer stops than this are discarded as one-off visits.
    """

    def __init__(self, radius: float = 100.0, min_visits: int = 2):
        if radius <= 0:
            raise ValueError("radius must be positive")
        if min_visits < 1:
            raise ValueError("min_visits must be at least 1")
        self._radius = radius
        self._min_visits = min_visits

    def mine(self, stops: Sequence[Episode]) -> List[FrequentPlace]:
        """Cluster ``stops`` and return the frequent places, most visited first."""
        stop_list = [stop for stop in stops if stop.is_stop]
        if not stop_list:
            return []

        index = GridIndex(cell_size=self._radius)
        for position, stop in enumerate(stop_list):
            index.insert(stop.center(), position)

        labels: Dict[int, int] = {}
        next_label = 0
        for position, stop in enumerate(stop_list):
            if position in labels:
                continue
            # Grow the cluster from this seed by breadth-first expansion.
            labels[position] = next_label
            frontier = [position]
            while frontier:
                current = frontier.pop()
                center = stop_list[current].center()
                for _, _, neighbor in index.query_radius(center, self._radius):
                    if neighbor not in labels:
                        labels[neighbor] = next_label
                        frontier.append(neighbor)
            next_label += 1

        clusters: Dict[int, List[Episode]] = {}
        for position, label in labels.items():
            clusters.setdefault(label, []).append(stop_list[position])

        places: List[FrequentPlace] = []
        for label, members in clusters.items():
            if len(members) < self._min_visits:
                continue
            centers = [stop.center() for stop in members]
            centroid = Point(
                sum(point.x for point in centers) / len(centers),
                sum(point.y for point in centers) / len(centers),
            )
            places.append(FrequentPlace(place_index=label, center=centroid, stops=members))

        places.sort(key=lambda place: (-place.visit_count, -place.total_dwell_time))
        for rank, place in enumerate(places):
            place.place_index = rank
        return places


def label_home_and_work(places: Sequence[FrequentPlace]) -> Dict[int, str]:
    """Heuristically label the discovered places as home / work / other.

    The place with the largest total dwell time whose visits centre on night
    hours is labelled ``"home"``; the largest remaining daytime place is
    labelled ``"work"``; everything else is ``"other"``.  Returns a mapping
    from place index to label.
    """
    labels: Dict[int, str] = {place.place_index: "other" for place in places}
    if not places:
        return labels

    def night_fraction(place: FrequentPlace) -> float:
        night = 0.0
        total = 0.0
        for stop in place.stops:
            hour = (stop.time_in % 86_400.0) / 3600.0
            total += stop.duration
            if hour >= 20.0 or hour < 8.0:
                night += stop.duration
        return night / total if total > 0 else 0.0

    by_dwell = sorted(places, key=lambda place: -place.total_dwell_time)
    home = max(by_dwell, key=lambda place: (night_fraction(place), place.total_dwell_time))
    labels[home.place_index] = "home"
    for place in by_dwell:
        if place.place_index != home.place_index:
            labels[place.place_index] = "work"
            break
    return labels
