"""SeMiTri reproduction: semantic annotation of heterogeneous trajectories.

A from-scratch Python implementation of the SeMiTri framework (Yan et al.,
EDBT 2011): the semantic trajectory model, the trajectory-computation layer
(cleaning, identification, stop/move segmentation), the three semantic
annotation layers (regions via spatial join, lines via global map matching and
transportation-mode inference, points via an HMM over POI categories), the
semantic trajectory store and analytics, and deterministic synthetic datasets
standing in for the paper's proprietary GPS and geographic sources.

Typical usage::

    from repro import SeMiTriPipeline, AnnotationSources, PipelineConfig
    from repro.datasets import SyntheticWorld, TaxiFleetSimulator

    world = SyntheticWorld()
    taxis = TaxiFleetSimulator(world).generate()
    pipeline = SeMiTriPipeline(PipelineConfig.for_vehicles())
    sources = AnnotationSources(
        regions=world.region_source(),
        road_network=world.road_network(),
        pois=world.poi_source(),
    )
    results = pipeline.annotate_many(taxis.trajectories, sources)
"""

from repro.core import (
    Annotation,
    AnnotationKind,
    AnnotationSources,
    Episode,
    EpisodeKind,
    LineOfInterest,
    MapMatchingConfig,
    PipelineConfig,
    PipelineResult,
    PointAnnotationConfig,
    PointOfInterest,
    RawTrajectory,
    RegionAnnotationConfig,
    RegionOfInterest,
    SeMiTriPipeline,
    SemanticPlace,
    SemanticTrajectory,
    SpatioTemporalPoint,
    StopMoveConfig,
    StreamingConfig,
    StructuredSemanticTrajectory,
)
from repro.streaming import StreamingAnnotationEngine

__version__ = "1.0.0"

__all__ = [
    "Annotation",
    "AnnotationKind",
    "AnnotationSources",
    "Episode",
    "EpisodeKind",
    "LineOfInterest",
    "MapMatchingConfig",
    "PipelineConfig",
    "PipelineResult",
    "PointAnnotationConfig",
    "PointOfInterest",
    "RawTrajectory",
    "RegionAnnotationConfig",
    "RegionOfInterest",
    "SeMiTriPipeline",
    "SemanticPlace",
    "SemanticTrajectory",
    "SpatioTemporalPoint",
    "StopMoveConfig",
    "StreamingAnnotationEngine",
    "StreamingConfig",
    "StructuredSemanticTrajectory",
    "__version__",
]
