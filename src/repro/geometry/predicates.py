"""Spatial predicates used by the spatial-join and annotation layers.

The region-annotation layer of the paper computes topological correlations
("spatial predicates") between trajectories and regions: intersection,
containment ("subsumption") and distance relations.  These helpers implement
the subset of predicates SeMiTri uses, for bounding boxes, points, segments
and simple polygons.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.distance import point_segment_distance
from repro.geometry.primitives import BoundingBox, Point, Polygon, Segment


def bbox_intersects(a: BoundingBox, b: BoundingBox) -> bool:
    """True when the two rectangles share at least one point."""
    return a.intersects(b)


def bbox_contains_point(box: BoundingBox, point: Point) -> bool:
    """True when ``point`` lies inside or on the boundary of ``box``."""
    return box.contains_point(point)


def bbox_contains_bbox(outer: BoundingBox, inner: BoundingBox) -> bool:
    """Spatial subsumption between rectangles: ``inner`` entirely in ``outer``."""
    return outer.contains_box(inner)


def point_in_polygon(polygon: Polygon, point: Point) -> bool:
    """True when ``point`` is inside (or on the boundary of) ``polygon``."""
    return polygon.contains(point)


def segments_intersect(a: Segment, b: Segment) -> bool:
    """True when the two segments intersect (including touching endpoints)."""

    def orientation(p: Point, q: Point, r: Point) -> int:
        value = (q.y - p.y) * (r.x - q.x) - (q.x - p.x) * (r.y - q.y)
        if abs(value) < 1e-12:
            return 0
        return 1 if value > 0 else 2

    def on_segment(p: Point, q: Point, r: Point) -> bool:
        return (
            min(p.x, r.x) - 1e-12 <= q.x <= max(p.x, r.x) + 1e-12
            and min(p.y, r.y) - 1e-12 <= q.y <= max(p.y, r.y) + 1e-12
        )

    o1 = orientation(a.start, a.end, b.start)
    o2 = orientation(a.start, a.end, b.end)
    o3 = orientation(b.start, b.end, a.start)
    o4 = orientation(b.start, b.end, a.end)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(a.start, b.start, a.end):
        return True
    if o2 == 0 and on_segment(a.start, b.end, a.end):
        return True
    if o3 == 0 and on_segment(b.start, a.start, b.end):
        return True
    if o4 == 0 and on_segment(b.start, a.end, b.end):
        return True
    return False


def polygon_intersects_bbox(polygon: Polygon, box: BoundingBox) -> bool:
    """True when ``polygon`` and ``box`` overlap.

    Handles the three configurations that matter for spatial joins: a polygon
    vertex inside the box, a box corner inside the polygon, or an edge
    crossing.
    """
    if not polygon.bounding_box.intersects(box):
        return False
    for vertex in polygon.vertices:
        if box.contains_point(vertex):
            return True
    corners = [
        Point(box.min_x, box.min_y),
        Point(box.max_x, box.min_y),
        Point(box.max_x, box.max_y),
        Point(box.min_x, box.max_y),
    ]
    for corner in corners:
        if polygon.contains(corner):
            return True
    box_edges = [
        Segment(corners[0], corners[1]),
        Segment(corners[1], corners[2]),
        Segment(corners[2], corners[3]),
        Segment(corners[3], corners[0]),
    ]
    vertices = polygon.vertices
    for i, current in enumerate(vertices):
        edge = Segment(current, vertices[(i + 1) % len(vertices)])
        for box_edge in box_edges:
            if segments_intersect(edge, box_edge):
                return True
    return False


def polygon_contains_bbox(polygon: Polygon, box: BoundingBox) -> bool:
    """Spatial subsumption: every corner of ``box`` lies in ``polygon``."""
    corners = [
        Point(box.min_x, box.min_y),
        Point(box.max_x, box.min_y),
        Point(box.max_x, box.max_y),
        Point(box.min_x, box.max_y),
    ]
    return all(polygon.contains(corner) for corner in corners)


def polyline_intersects_bbox(points: Sequence[Point], box: BoundingBox) -> bool:
    """True when any vertex or edge of the polyline enters ``box``."""
    for point in points:
        if box.contains_point(point):
            return True
    corners = [
        Point(box.min_x, box.min_y),
        Point(box.max_x, box.min_y),
        Point(box.max_x, box.max_y),
        Point(box.min_x, box.max_y),
    ]
    box_edges = [
        Segment(corners[0], corners[1]),
        Segment(corners[1], corners[2]),
        Segment(corners[2], corners[3]),
        Segment(corners[3], corners[0]),
    ]
    for previous, current in zip(points, points[1:]):
        edge = Segment(previous, current)
        for box_edge in box_edges:
            if segments_intersect(edge, box_edge):
                return True
    return False


def min_distance_point_to_polyline(point: Point, points: Sequence[Point]) -> float:
    """Smallest point-segment distance from ``point`` to the polyline."""
    if not points:
        raise ValueError("polyline must contain at least one point")
    if len(points) == 1:
        return point.distance_to(points[0])
    best = float("inf")
    for previous, current in zip(points, points[1:]):
        best = min(best, point_segment_distance(point, Segment(previous, current)))
    return best
