"""Scalar-tree versus flat-batch spatial index timings (the bench-gate set).

Times the three query families the annotation layers issue — box range
search, within-distance candidate selection and nearest-neighbour lookups —
on the seed benchmark sources (region R-tree geometry, the road network, the
POI grid), per-point through the scalar index APIs versus one batch call
through the compiled :class:`~repro.index.flat.FlatSpatialIndex`.

Before anything is timed, every family's results are materialised once from
both backends and compared exactly (payload identity, order and
bit-identical distances), so a "fast but wrong" index can never post a
speedup.  The timed region then covers the query APIs themselves — the
scalar per-point calls against the flat CSR batch call — which is the cost
the consumers actually trade when `compute.index_backend` flips.  The
recorded metrics are same-process ratios, which keeps the CI regression gate
robust to absolute machine speed; the acceptance floor is a >= 3x speedup on
the range and within-distance batches.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple

import numpy as np

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.geometry.primitives import BoundingBox, Point
from repro.index.flat import FlatSpatialIndex
from repro.index.rtree import RTree, RTreeEntry

QUERY_COUNT = 2_000
BOX_EXTENT = 120.0
WITHIN_RADIUS = 50.0
NEAREST_COUNT = 3
#: The acceptance floor for the gated query families (range + within).
REQUIRED_SPEEDUP = 3.0
_REPEATS = 5


def _best_of(fn: Callable[[], object], repeats: int = _REPEATS) -> Tuple[float, object]:
    """Minimum wall time over ``repeats`` runs, plus the last return value."""
    best = float("inf")
    value: object = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _csr_lists(offsets, rows, payload_of, distances=None):
    """Materialise a CSR batch result into per-query Python lists."""
    bounds = offsets.tolist()
    row_list = rows.tolist()
    if distances is None:
        return [
            [payload_of(row_list[k]) for k in range(bounds[i], bounds[i + 1])]
            for i in range(len(bounds) - 1)
        ]
    distance_list = distances.tolist()
    return [
        [(distance_list[k], payload_of(row_list[k])) for k in range(bounds[i], bounds[i + 1])]
        for i in range(len(bounds) - 1)
    ]


def test_index_backend_speedups(benchmark, annotation_sources):
    regions = annotation_sources.regions
    network = annotation_sources.road_network
    pois = annotation_sources.pois

    # Query workload: uniform points over the (padded) world extent, seeded
    # through the conftest RNG reset for run-to-run reproducibility.
    bounds = network.bounds()
    rng = np.random.default_rng(20110325)
    xs = rng.uniform(bounds.min_x - 200.0, bounds.max_x + 200.0, size=QUERY_COUNT)
    ys = rng.uniform(bounds.min_y - 200.0, bounds.max_y + 200.0, size=QUERY_COUNT)
    points = [Point(float(x), float(y)) for x, y in zip(xs, ys)]
    boxes = [
        BoundingBox(float(x), float(y), float(x) + BOX_EXTENT, float(y) + BOX_EXTENT)
        for x, y in zip(xs, ys)
    ]

    # Range queries run on an R-tree over the region geometry (the Algorithm 1
    # join index); the flat index is compiled from that same tree.
    region_tree = RTree.bulk_load(
        RTreeEntry(box=region.bounding_box(), item=region.place_id)
        for region in regions.regions
    )
    region_flat = FlatSpatialIndex.from_rtree(region_tree)
    road_flat = network.flat_index()
    poi_flat = pois.flat_index()
    poi_index = pois._index  # the scalar grid the flat index was compiled from

    # ---------------------------------------------------------------- parity
    # Materialise both sides once and compare exactly; only then time them.
    scalar_range_results = [[entry.item for entry in region_tree.search(box)] for box in boxes]
    assert scalar_range_results == _csr_lists(
        *region_flat.query_boxes_batch(xs, ys, xs + BOX_EXTENT, ys + BOX_EXTENT),
        lambda row: region_flat.payloads[row],
    )

    scalar_within_results = [
        [(d, segment.place_id) for d, segment in network.candidate_segments(p, WITHIN_RADIUS)]
        for p in points
    ]
    flat_offsets, flat_rows, flat_distances = road_flat.within_distance_batch(
        xs, ys, WITHIN_RADIUS
    )
    assert scalar_within_results == _csr_lists(
        flat_offsets,
        flat_rows,
        lambda row: road_flat.payloads[row].place_id,
        flat_distances,
    )

    scalar_nearest_results = [
        [(d, item.place_id) for d, _, item in poi_index.nearest(p, NEAREST_COUNT)]
        for p in points
    ]
    near_offsets, near_rows, near_distances = poi_flat.nearest_batch(xs, ys, NEAREST_COUNT)
    assert scalar_nearest_results == _csr_lists(
        near_offsets,
        near_rows,
        lambda row: poi_flat.payloads[row].place_id,
        near_distances,
    )

    # ---------------------------------------------------------------- timing
    cases = {
        "range_boxes": (
            lambda: [region_tree.search(box) for box in boxes],
            lambda: region_flat.query_boxes_batch(xs, ys, xs + BOX_EXTENT, ys + BOX_EXTENT),
        ),
        "within_distance": (
            lambda: [network.candidate_segments(p, WITHIN_RADIUS) for p in points],
            lambda: road_flat.within_distance_batch(xs, ys, WITHIN_RADIUS),
        ),
        "nearest": (
            lambda: [poi_index.nearest(p, NEAREST_COUNT) for p in points],
            lambda: poi_flat.nearest_batch(xs, ys, NEAREST_COUNT),
        ),
    }
    measured = {}

    def run_all():
        for name, (scalar_fn, flat_fn) in cases.items():
            scalar_seconds, _ = _best_of(scalar_fn)
            flat_seconds, _ = _best_of(flat_fn)
            measured[name] = (scalar_seconds, flat_seconds)
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    metrics = {}
    for name, (scalar_seconds, flat_seconds) in measured.items():
        speedup = scalar_seconds / flat_seconds
        metrics[f"speedup_{name}"] = round(speedup, 2)
        rows.append(
            [
                name,
                f"{scalar_seconds * 1e3:.2f}",
                f"{flat_seconds * 1e3:.2f}",
                f"{speedup:.1f}x",
            ]
        )
    text = render_table(
        ["query family", "scalar tree (ms)", "flat batch (ms)", "speedup"],
        rows,
        title=(
            f"Spatial index backends: scalar per-point vs flat batch "
            f"({QUERY_COUNT} queries, best of {_REPEATS})"
        ),
    )
    save_result(
        "index_backends",
        text,
        data={
            "query_count": QUERY_COUNT,
            "box_extent": BOX_EXTENT,
            "within_radius": WITHIN_RADIUS,
            "nearest_count": NEAREST_COUNT,
            "repeats": _REPEATS,
            "index_sizes": {
                "regions": len(regions),
                "road_segments": len(network),
                "pois": len(pois),
            },
            "seconds": {
                name: {"scalar": s, "flat": f} for name, (s, f) in measured.items()
            },
        },
        metrics=metrics,
    )

    # The acceptance floor: batch range + within-distance queries at >= 3x.
    for gated in ("range_boxes", "within_distance"):
        assert metrics[f"speedup_{gated}"] >= REQUIRED_SPEEDUP, (
            f"{gated} speedup {metrics[f'speedup_{gated}']}x below the "
            f"{REQUIRED_SPEEDUP}x acceptance floor"
        )
