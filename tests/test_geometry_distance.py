"""Unit tests for distance functions, including Equation 1 of the paper."""

from __future__ import annotations

import math

import pytest

from repro.geometry.distance import (
    closest_point_on_segment,
    euclidean_distance,
    frechet_distance,
    haversine_distance,
    path_length,
    perpendicular_distance,
    point_segment_distance,
    project_point_on_segment,
    squared_euclidean_distance,
)
from repro.geometry.primitives import Point, Segment


class TestEuclidean:
    def test_basic_345_triangle(self):
        assert euclidean_distance(Point(0, 0), Point(3, 4)) == pytest.approx(5.0)

    def test_zero_distance(self):
        assert euclidean_distance(Point(1, 1), Point(1, 1)) == 0.0

    def test_squared_matches_square_of_distance(self):
        a, b = Point(1, 2), Point(4, 6)
        assert squared_euclidean_distance(a, b) == pytest.approx(euclidean_distance(a, b) ** 2)


class TestHaversine:
    def test_same_point_is_zero(self):
        lausanne = Point(6.63, 46.52)
        assert haversine_distance(lausanne, lausanne) == 0.0

    def test_one_degree_longitude_at_equator(self):
        distance = haversine_distance(Point(0, 0), Point(1, 0))
        assert distance == pytest.approx(111_195, rel=0.01)

    def test_symmetry(self):
        a, b = Point(6.63, 46.52), Point(9.19, 45.46)  # Lausanne - Milan
        assert haversine_distance(a, b) == pytest.approx(haversine_distance(b, a))

    def test_lausanne_milan_plausible(self):
        distance = haversine_distance(Point(6.63, 46.52), Point(9.19, 45.46))
        assert 200_000 < distance < 260_000


class TestProjection:
    def test_projection_inside_segment(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        projection, t = project_point_on_segment(Point(4, 3), segment)
        assert projection == Point(4, 0)
        assert t == pytest.approx(0.4)

    def test_projection_before_start(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        _, t = project_point_on_segment(Point(-5, 1), segment)
        assert t < 0

    def test_degenerate_segment(self):
        segment = Segment(Point(2, 2), Point(2, 2))
        projection, t = project_point_on_segment(Point(5, 5), segment)
        assert projection == Point(2, 2)
        assert t == 0.0


class TestPointSegmentDistance:
    """Equation 1: perpendicular when the projection falls on the segment,
    distance to the closest crossing otherwise."""

    def test_perpendicular_case(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert point_segment_distance(Point(5, 3), segment) == pytest.approx(3.0)

    def test_endpoint_case_before_start(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert point_segment_distance(Point(-3, 4), segment) == pytest.approx(5.0)

    def test_endpoint_case_after_end(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert point_segment_distance(Point(13, 4), segment) == pytest.approx(5.0)

    def test_point_on_segment_is_zero(self):
        segment = Segment(Point(0, 0), Point(10, 10))
        assert point_segment_distance(Point(5, 5), segment) == pytest.approx(0.0)

    def test_never_smaller_than_perpendicular_only_when_projection_outside(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        point = Point(20, 1)
        assert point_segment_distance(point, segment) > perpendicular_distance(point, segment)

    def test_equals_perpendicular_when_projection_inside(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        point = Point(5, 7)
        assert point_segment_distance(point, segment) == pytest.approx(
            perpendicular_distance(point, segment)
        )

    def test_closest_point_on_segment_clamps(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert closest_point_on_segment(Point(-5, 3), segment) == Point(0, 0)
        assert closest_point_on_segment(Point(15, 3), segment) == Point(10, 0)
        assert closest_point_on_segment(Point(5, 3), segment) == Point(5, 0)


class TestPathLength:
    def test_empty_and_single_point(self):
        assert path_length([]) == 0.0
        assert path_length([Point(1, 1)]) == 0.0

    def test_polyline_length(self):
        points = [Point(0, 0), Point(3, 4), Point(3, 10)]
        assert path_length(points) == pytest.approx(11.0)


class TestFrechet:
    def test_identical_paths_zero(self):
        path = [Point(0, 0), Point(1, 0), Point(2, 0)]
        assert frechet_distance(path, path) == pytest.approx(0.0)

    def test_parallel_paths(self):
        a = [Point(0, 0), Point(1, 0), Point(2, 0)]
        b = [Point(0, 1), Point(1, 1), Point(2, 1)]
        assert frechet_distance(a, b) == pytest.approx(1.0)

    def test_empty_path_raises(self):
        with pytest.raises(ValueError):
            frechet_distance([], [Point(0, 0)])

    def test_is_at_least_endpoint_distance(self):
        a = [Point(0, 0), Point(5, 0)]
        b = [Point(0, 0), Point(5, 3)]
        assert frechet_distance(a, b) >= 3.0 - 1e-9
