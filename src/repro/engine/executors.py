"""Pluggable executors that run a :class:`~repro.engine.plan.Plan`.

Three executors drive the same compiled stage graph:

* :class:`SequentialExecutor` — one trajectory at a time, in-process; the
  batch mode of :meth:`SeMiTriPipeline.annotate_many`.  With
  ``deferred_writeback=True`` the store stages are skipped during execution
  and the merged batch is committed afterwards in one transaction (the
  single-writer row ordering the sharded runtimes need).
* :class:`ProcessPoolExecutor` — shards the batch by moving object, runs each
  shard in a worker process against a shared immutable
  :class:`~repro.parallel.context.GeoContext` snapshot and merges the
  results back into input order; byte-identical to sequential execution.
* :class:`MicroBatchExecutor` — the streaming session loop: events are
  micro-batched into per-object sessions, sealed episodes flow through the
  plan's incremental stage bodies and whole trajectories are finished (and
  persisted) at close.

Stage timing is owned here: executors wrap every stage body in the work
item's :class:`~repro.analytics.latency.StageTimer` under the stage's name,
so the Figure 17 latency vocabulary is emitted from exactly one place for
every runtime.
"""

from __future__ import annotations

import abc
import multiprocessing
import multiprocessing.context
import sys
import time
import weakref
from concurrent.futures import BrokenExecutor, as_completed
from concurrent.futures import ProcessPoolExecutor as _FuturesProcessPool
from contextlib import nullcontext
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    ContextManager,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.config import FailurePolicy
from repro.core.episodes import Episode
from repro.core.errors import ConfigurationError, SemitriError
from repro.core.pipeline import PipelineResult
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.engine.plan import Plan
from repro.engine.stages import MapMatchStage, WorkItem
from repro.faults.failures import (
    FailureEvent,
    TrajectoryFailure,
    failure_stage,
    tag_failure_stage,
)

if TYPE_CHECKING:  # pragma: no cover - import cycles broken at runtime
    from repro.parallel.context import GeoContext
    from repro.streaming.session import SealedTrajectory, Session, SessionUpdate

# One shard of work: (shard index, [(input order, trajectory), ...]).
Shard = Tuple[int, List[Tuple[int, RawTrajectory]]]


# ---------------------------------------------------------------- stage loop
def run_stages(
    plan: Plan,
    trajectory: RawTrajectory,
    include_writeback: bool = True,
    worker: bool = False,
) -> PipelineResult:
    """Run one trajectory through every stage of the plan, with timing.

    The single per-trajectory execution loop behind every executor.  When the
    plan persists (and ``include_writeback`` is true) the whole run happens
    inside one store transaction scope — committed on success, rolled back if
    any stage raises — so a trajectory is never half-persisted.

    Failures are *tagged* here (the originating stage rides on the exception,
    see :func:`~repro.faults.failures.tag_failure_stage`) but never handled:
    isolation, retries and quarantine live in :func:`run_stages_resilient`.
    ``worker`` marks execution inside a pool worker process, which is the
    only place ``kill`` fault specs may fire.
    """
    faults = plan.faults
    if faults.enabled:
        faults.on_trajectory(trajectory.object_id, worker=worker)
    item = WorkItem.start(trajectory, plan.telemetry)
    scope: ContextManager[object] = (
        plan.store if plan.persist and include_writeback and plan.store is not None
        else nullcontext()
    )
    try:
        with scope:
            for stage in plan.stages:
                if stage.writes_back and not include_writeback:
                    continue
                if stage.ready(item):
                    try:
                        with item.stage_scope(stage.name):
                            if faults.enabled:
                                faults.on_stage(stage.name, trajectory.object_id)
                            stage.run(item)
                    except BaseException as error:
                        tag_failure_stage(error, stage.name)
                        raise
    except BaseException as error:
        # Untagged here means the failure came from the scope exit itself —
        # the deferred store commit (first tag wins, so stage tags survive).
        tag_failure_stage(error, "store_commit")
        raise
    # Seal the trace onto the result, but never collect here: collection into
    # the plan's registry/tracer happens exactly once per result, in the
    # parent process (the executors and merge_shard_results), so worker-side
    # runs just ship their spans back attached to the pickled result.
    item.finish_trace()
    return item.result


def run_stages_resilient(
    plan: Plan,
    trajectory: RawTrajectory,
    include_writeback: bool = True,
    worker: bool = False,
) -> "PipelineResult | TrajectoryFailure":
    """Run one trajectory under the plan's failure policy.

    ``fail_fast`` (the default) is a pass-through to :func:`run_stages` —
    exceptions propagate exactly as before.  Under ``skip``/``retry`` a stage
    exception fails only this trajectory: the run is retried up to
    ``max_retries`` times with deterministic exponential backoff, and
    exhaustion returns a :class:`TrajectoryFailure` (never raises) for the
    caller to quarantine.  A retried-then-successful result carries its
    failure history in ``fault_events``.
    """
    policy = plan.failure_policy
    if not policy.isolates:
        return run_stages(plan, trajectory, include_writeback=include_writeback, worker=worker)
    events: List[FailureEvent] = []
    attempt = 0
    while True:
        attempt += 1
        try:
            result = run_stages(
                plan, trajectory, include_writeback=include_writeback, worker=worker
            )
        except Exception as error:
            stage = failure_stage(error)
            events.append(
                FailureEvent(
                    stage=stage, kind=type(error).__name__, attempt=attempt, error=repr(error)
                )
            )
            if attempt <= policy.retries:
                delay = policy.backoff(attempt)
                if delay > 0:
                    time.sleep(delay)
                continue
            return TrajectoryFailure(
                trajectory=trajectory,
                stage=stage,
                error=repr(error),
                attempts=attempt,
                events=events,
                exception=error,
            )
        if events:
            result.fault_events = list(events)
        return result


def _group_by_object(
    trajectories: Sequence[RawTrajectory],
) -> Tuple[Dict[str, List[Tuple[int, RawTrajectory]]], Dict[str, int]]:
    """Group a batch by object id (first-appearance order) with point loads."""
    by_object: Dict[str, List[Tuple[int, RawTrajectory]]] = {}
    loads: Dict[str, int] = {}
    for order, trajectory in enumerate(trajectories):
        by_object.setdefault(trajectory.object_id, []).append((order, trajectory))
        loads[trajectory.object_id] = loads.get(trajectory.object_id, 0) + len(trajectory)
    return by_object, loads


def shard_by_object(trajectories: Sequence[RawTrajectory], shard_count: int) -> List[Shard]:
    """Partition by object id into size-balanced shards, deterministically.

    Objects are assigned greedily (in first-appearance order) to the
    currently lightest shard, measured in GPS points — deterministic for a
    given input, and robust to skewed per-object workloads.  All trajectories
    of one object land in the same shard, which is what makes per-object
    sharding a pure reordering of the sequential output.
    """
    by_object, loads = _group_by_object(trajectories)
    shard_count = max(1, min(shard_count, len(by_object)))
    shards: List[List[Tuple[int, RawTrajectory]]] = [[] for _ in range(shard_count)]
    shard_loads = [0] * shard_count
    for object_id, items in by_object.items():
        target = min(range(shard_count), key=lambda index: (shard_loads[index], index))
        shards[target].extend(items)
        shard_loads[target] += loads[object_id]
    return [(index, items) for index, items in enumerate(shards) if items]


def shard_static(trajectories: Sequence[RawTrajectory], shard_count: int) -> List[Shard]:
    """Fixed object-id sharding: objects round-robin, ignoring per-object load.

    The historical dispatch, kept as the ``dispatch="static"`` baseline: one
    heavy object next to light ones leaves whole workers idle, which is the
    skew :func:`shard_by_object` (``"balanced"``/``"stealing"``) fixes.
    """
    by_object, _ = _group_by_object(trajectories)
    shard_count = max(1, min(shard_count, len(by_object)))
    shards: List[List[Tuple[int, RawTrajectory]]] = [[] for _ in range(shard_count)]
    for position, items in enumerate(by_object.values()):
        shards[position % shard_count].extend(items)
    return [(index, items) for index, items in enumerate(shards) if items]


def dispatch_shards(
    trajectories: Sequence[RawTrajectory], shard_count: int, dispatch: str = "balanced"
) -> List[Shard]:
    """Shard a batch according to a :class:`ParallelConfig` dispatch mode."""
    if dispatch == "static":
        return shard_static(trajectories, shard_count)
    if dispatch in ("balanced", "stealing"):
        return shard_by_object(trajectories, shard_count)
    raise ConfigurationError(
        f"unknown dispatch {dispatch!r}; expected 'static', 'balanced' or 'stealing'"
    )


def _shard_load(shard: Shard) -> int:
    """GPS points in one shard (the work-stealing submission-order key)."""
    return sum(len(trajectory) for _, trajectory in shard[1])


def _pool_mp_context() -> multiprocessing.context.BaseContext:
    """The explicit multiprocessing context every worker pool is built from.

    ``fork`` where it is the safe platform default (Linux: children inherit
    the frozen snapshot as copy-on-write memory), ``spawn`` everywhere else —
    macOS forks can crash inside frameworks the parent already loaded, and
    Windows has no fork.  Always explicit: relying on the *platform default*
    start method would silently flip macOS runs to spawn-and-pickle without
    the shared-memory auto mode noticing.
    """
    if sys.platform == "linux" and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context("spawn")


def merge_shard_results(
    plan: Plan,
    count: int,
    shard_results: Iterable[Tuple[int, List[Tuple[int, PipelineResult]]]],
) -> List[PipelineResult]:
    """Merge per-shard results into input order and commit deferred write-back.

    The merge is a pure reordering; when the plan persists, the merged rows
    go through a :class:`ShardedStoreWriter` into one transaction with the
    exact row order a single sequential writer would produce.

    This is also the parent-side failure collection point for sharded runs:
    retried-then-successful results fold their failure history into the
    plan's failure log, quarantined input positions are simply absent (the
    merge tolerates gaps), and under a ``retry`` policy a failed deferred
    commit is retried with backoff — the writer keeps its buffers across a
    failed commit, so a retry re-sends the identical batch.
    """
    from repro.parallel.store_writer import ShardedStoreWriter  # deferred: import cycle

    ordered: Dict[int, PipelineResult] = {}
    writer = (
        ShardedStoreWriter(plan.store) if plan.persist and plan.store is not None else None
    )
    telemetry = plan.telemetry if plan.telemetry.enabled else None
    for shard_index, items in shard_results:
        for order, result in items:
            if result.fault_events:
                plan.ensure_failure_log().absorb_result(result)
            if telemetry is not None:
                # The single collection point for sharded runs: latency folds
                # into the registry and worker-emitted spans are adopted
                # (re-parented) into the parent-process tracer.
                telemetry.collect(result)
            ordered[order] = result
            if writer is not None:
                writer.add_result(shard_index, order, result)
    if writer is not None:
        _commit_with_retry(plan, writer.commit)
    return [ordered[index] for index in range(count) if index in ordered]


def _commit_with_retry(plan: Plan, commit: Callable[[], object]) -> None:
    """Run a deferred store commit under the plan's failure policy.

    A failed commit is rolled back by the store, so retrying re-executes the
    batch from scratch without duplicating rows.  ``fail_fast`` and ``skip``
    raise immediately — a commit failure is not a per-trajectory event, so
    skip-isolation does not apply.
    """
    policy = plan.failure_policy
    attempt = 0
    while True:
        attempt += 1
        try:
            commit()
            return
        except Exception as error:
            retryable = policy.mode == "retry" and attempt <= policy.max_retries
            plan.ensure_failure_log().record_failure(
                failure_stage(error, "store_commit"), type(error).__name__, retried=retryable
            )
            if not retryable:
                raise
            delay = policy.backoff(attempt)
            if delay > 0:
                time.sleep(delay)


def _count_batch(
    plan: Plan,
    executor: str,
    trajectories: Sequence[RawTrajectory],
    results: Sequence[PipelineResult],
) -> None:
    """Fold one finished batch into the registry's engine throughput counters.

    Counterpart of the live :class:`EngineStats` counters of the micro-batch
    executor: the batch executors count whole batches after the fact, so all
    three executor kinds expose the same ``engine_*_total`` series (labelled
    by executor) from one registry.
    """
    counters = plan.telemetry.engine_counters(executor)
    if counters is None:
        return
    counters.events.inc(sum(len(trajectory) for trajectory in trajectories))
    counters.results.inc(len(results))
    counters.episodes_sealed.inc(sum(len(result.episodes) for result in results))


# ------------------------------------------------------------------ executors
class Executor(abc.ABC):
    """Something that can run a compiled plan over a batch of trajectories."""

    #: Short identifier used in configuration and reporting.
    kind: str = ""

    @abc.abstractmethod
    def run(self, plan: Plan, trajectories: Sequence[RawTrajectory]) -> List[PipelineResult]:
        """Annotate the batch; results come back in input order."""


class SequentialExecutor(Executor):
    """In-process, one trajectory at a time — the batch reference executor."""

    kind = "sequential"

    def __init__(self, deferred_writeback: bool = False):
        self._deferred = deferred_writeback

    def run(self, plan: Plan, trajectories: Sequence[RawTrajectory]) -> List[PipelineResult]:
        if plan.failure_policy.isolates:
            return self._run_isolating(plan, trajectories)
        if self._deferred and plan.persist:
            results = [
                run_stages(plan, trajectory, include_writeback=False)
                for trajectory in trajectories
            ]
            # merge_shard_results is the collection point for deferred runs.
            merged = merge_shard_results(
                plan, len(results), [(0, list(enumerate(results)))]
            )
            _count_batch(plan, self.kind, trajectories, merged)
            return merged
        results = [run_stages(plan, trajectory) for trajectory in trajectories]
        if plan.telemetry.enabled:
            for result in results:
                plan.telemetry.collect(result)
        _count_batch(plan, self.kind, trajectories, results)
        return results

    def _run_isolating(
        self, plan: Plan, trajectories: Sequence[RawTrajectory]
    ) -> List[PipelineResult]:
        """Batch run under ``skip``/``retry``: failed trajectories quarantine.

        Survivors keep their relative order (and, on the deferred path, their
        single-writer store row order); a quarantined trajectory is simply
        absent from the output, exactly like a too-short fragment.
        """
        log = plan.ensure_failure_log()
        if self._deferred and plan.persist:
            outputs = [
                run_stages_resilient(plan, trajectory, include_writeback=False)
                for trajectory in trajectories
            ]
            survivors: List[PipelineResult] = []
            for out in outputs:
                if isinstance(out, TrajectoryFailure):
                    log.quarantine(out)
                else:
                    survivors.append(out)
            merged = merge_shard_results(
                plan, len(survivors), [(0, list(enumerate(survivors)))]
            )
            _count_batch(plan, self.kind, trajectories, merged)
            return merged
        results: List[PipelineResult] = []
        for trajectory in trajectories:
            out = run_stages_resilient(plan, trajectory)
            if isinstance(out, TrajectoryFailure):
                log.quarantine(out)
                continue
            if out.fault_events:
                log.absorb_result(out)
            if plan.telemetry.enabled:
                plan.telemetry.collect(out)
            results.append(out)
        _count_batch(plan, self.kind, trajectories, results)
        return results

    def run_one(self, plan: Plan, trajectory: RawTrajectory) -> PipelineResult:
        """Annotate a single trajectory (inline write-back when persisting).

        A single-result API has no "skip" output, so even under an isolating
        policy an exhausted trajectory is quarantined *and* the terminal
        exception re-raised.
        """
        out = run_stages_resilient(plan, trajectory)
        if isinstance(out, TrajectoryFailure):
            plan.ensure_failure_log().quarantine(out)
            if out.exception is not None:
                raise out.exception
            raise SemitriError(
                f"trajectory {trajectory.trajectory_id!r} exhausted its retries "
                f"in stage {out.stage!r}: {out.error}"
            )
        if out.fault_events:
            plan.ensure_failure_log().absorb_result(out)
        if plan.telemetry.enabled:
            plan.telemetry.collect(out)
        _count_batch(plan, self.kind, [trajectory], [out])
        return out


# Worker-process state, set once by the pool initializer.  Under the ``fork``
# start method the snapshot travels to the children as inherited copy-on-write
# memory (the ``_FORK_CONTEXTS`` registry, keyed per pool so concurrent
# executors cannot cross-contaminate lazily-forked workers); with shared
# memory enabled the worker *attaches* to the parent's segment and rebuilds
# zero-copy views; otherwise it is pickled once per worker through the
# initializer arguments.
_FORK_CONTEXTS: Dict[int, GeoContext] = {}
_FORK_TOKENS = iter(range(1, 2**62))
_WORKER_PLAN: Optional[Plan] = None
# Keeps the attached shared-memory mapping alive for the worker's lifetime:
# the plan's index arrays are views into it.  Never closed worker-side — the
# parent owns the segment; process exit releases the mapping.
_WORKER_BUNDLE: Optional["SharedArrayBundle"] = None

if TYPE_CHECKING:  # pragma: no cover - import cycles broken at runtime
    from repro.parallel.shared import SharedArrayBundle, SharedContextSpec, SharedGeoContext


def _init_worker(
    token: Optional[int],
    pickled_context: Optional[GeoContext],
    shared_spec: Optional["SharedContextSpec"] = None,
) -> None:
    global _WORKER_PLAN, _WORKER_BUNDLE
    context = _FORK_CONTEXTS.get(token) if token is not None else None
    if context is None and shared_spec is not None:
        from repro.parallel.shared import attach_context  # deferred: import cycle

        context, _WORKER_BUNDLE = attach_context(shared_spec)
    if context is None:
        context = pickled_context
    assert context is not None, "worker started without a GeoContext"
    # Workers never persist (they cannot share the store connection), so the
    # worker-side plan is compiled without a store; write-back happens in the
    # parent after the merge.
    _WORKER_PLAN = Plan.from_context(context)


def _annotate_shard(
    shard: Shard,
) -> Tuple[int, List[Tuple[int, "PipelineResult | TrajectoryFailure"]]]:
    """Annotate one shard inside a worker process (never persists).

    Under an isolating policy, failed trajectories come back as
    :class:`TrajectoryFailure` records (their exception object stripped —
    arbitrary exceptions may not pickle; the repr travels) for the parent to
    quarantine.  The worker-side plan reads ``SEMITRI_FAULTS`` from the
    inherited environment, so injected chaos follows the shard into the pool.
    """
    shard_index, items = shard
    assert _WORKER_PLAN is not None, "worker used before initialization"
    outputs: List[Tuple[int, "PipelineResult | TrajectoryFailure"]] = []
    for order, trajectory in items:
        out = run_stages_resilient(_WORKER_PLAN, trajectory, worker=True)
        if isinstance(out, TrajectoryFailure):
            out.exception = None
        outputs.append((order, out))
    return shard_index, outputs


def _release_pool_resources(
    pool: _FuturesProcessPool,
    fork_token: Optional[int],
    shared: Optional["SharedGeoContext"] = None,
) -> None:
    """Tear down an executor's pool, fork-registry entry and shared segment.

    Runs on ``close()``, on garbage collection of a never-closed executor and
    at interpreter exit (``weakref.finalize``), so the shared-memory segment
    is unlinked on every path — including after a worker crash poisons the
    pool.  Unlinking while workers still run is safe: only the name goes
    away; their mappings stay valid until the processes exit.
    """
    if fork_token is not None:
        _FORK_CONTEXTS.pop(fork_token, None)
    pool.shutdown(wait=False)
    if shared is not None:
        shared.close()


class ProcessPoolExecutor(Executor):
    """Sharded execution on a pool of worker processes.

    The batch is partitioned by moving object into balanced shards; each
    shard is annotated in a worker against the plan's immutable
    :class:`GeoContext` snapshot and the results are merged back into input
    order, byte-identical to sequential execution.  The pool (primed with
    one snapshot) is kept warm across ``run`` calls for plans built from the
    same snapshot.
    """

    kind = "process"

    def __init__(
        self,
        workers: int = 2,
        shards_per_worker: int = 2,
        dispatch: str = "balanced",
        shared_memory: str = "auto",
    ):
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if dispatch not in ("static", "balanced", "stealing"):
            raise ConfigurationError(
                f"unknown dispatch {dispatch!r}; expected 'static', 'balanced' or 'stealing'"
            )
        if shared_memory not in ("auto", "on", "off"):
            raise ConfigurationError(
                f"unknown shared_memory mode {shared_memory!r}; expected 'auto', 'on' or 'off'"
            )
        self._workers = workers
        self._shards_per_worker = shards_per_worker
        self._dispatch = dispatch
        self._shared_memory = shared_memory
        self._pool: Optional[_FuturesProcessPool] = None
        self._pool_context: Optional[GeoContext] = None
        self._fork_token: Optional[int] = None
        self._shared: Optional["SharedGeoContext"] = None
        self._pool_finalizer: Optional[weakref.finalize] = None

    @property
    def workers(self) -> int:
        """Number of worker processes the pool uses."""
        return self._workers

    @property
    def dispatch(self) -> str:
        """The dispatch mode: ``"static"``, ``"balanced"`` or ``"stealing"``."""
        return self._dispatch

    @property
    def shared_segment_name(self) -> Optional[str]:
        """Name of the live shared-memory segment, when one is in use."""
        if self._shared is not None:
            return self._shared.segment_name
        return None

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Shut down the worker pool and unlink shared segments (idempotent)."""
        if self._pool_finalizer is not None:
            # Pops the fork registry, stops workers, unlinks the segment.
            self._pool_finalizer()
            self._pool_finalizer = None
        self._pool = None
        self._pool_context = None
        self._fork_token = None
        self._shared = None

    def __enter__(self) -> "ProcessPoolExecutor":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -------------------------------------------------------------- execution
    def run(self, plan: Plan, trajectories: Sequence[RawTrajectory]) -> List[PipelineResult]:
        trajectories = list(trajectories)
        if not trajectories:
            return []
        # Work stealing wants finer shards than the fixed assignment modes:
        # more pending shards means an idle worker always has something to
        # steal, at slightly higher scheduling/merge overhead.
        multiplier = self._shards_per_worker * (2 if self._dispatch == "stealing" else 1)
        shard_count = max(1, min(self._workers * multiplier, len(trajectories)))
        shards = dispatch_shards(trajectories, shard_count, self._dispatch)
        if len(shards) == 1:
            # A single shard gains nothing from the pool; run it inline.
            shard_results = [self._run_inline(plan, shards[0])]
        elif plan.failure_policy.isolates:
            shard_results = self._run_recovering(plan, shards, plan.failure_policy)
        else:
            pool = self._ensure_pool(plan.geo_context())
            try:
                if self._dispatch == "stealing":
                    # Largest-first submission (LPT): the futures pool's shared
                    # call queue lets whichever worker goes idle steal the next
                    # pending shard, so a skewed shard cannot serialise the
                    # tail.  Completion order is irrelevant — the merge below
                    # reorders by input position.
                    ordered = sorted(
                        shards, key=lambda shard: (-_shard_load(shard), shard[0])
                    )
                    futures = [pool.submit(_annotate_shard, shard) for shard in ordered]
                    shard_results = [
                        future.result() for future in as_completed(futures)
                    ]
                else:
                    shard_results = list(pool.map(_annotate_shard, shards))
            except BrokenExecutor:
                # A crashed worker poisons the pool; tear everything down now
                # (stops siblings, unlinks the shared segment) so a retry can
                # re-prime and nothing leaks even if the caller gives up.
                self.close()
                raise
        merged = merge_shard_results(plan, len(trajectories), shard_results)
        _count_batch(plan, self.kind, trajectories, merged)
        return merged

    def _run_inline(
        self, plan: Plan, shard: Shard
    ) -> Tuple[int, List[Tuple[int, PipelineResult]]]:
        """Run one shard in-process (single-shard batches skip the pool).

        Under ``fail_fast`` this raises exactly like the historical inline
        path; under an isolating policy exhausted trajectories quarantine
        here and the survivors proceed to the merge.
        """
        shard_index, items = shard
        outputs: List[Tuple[int, PipelineResult]] = []
        for order, trajectory in items:
            out = run_stages_resilient(plan, trajectory, include_writeback=False)
            if isinstance(out, TrajectoryFailure):
                plan.ensure_failure_log().quarantine(out)
            else:
                outputs.append((order, out))
        return shard_index, outputs

    def _run_recovering(
        self, plan: Plan, shards: List[Shard], policy: FailurePolicy
    ) -> List[Tuple[int, List[Tuple[int, PipelineResult]]]]:
        """Pool execution that survives worker loss (isolating policies only).

        A ``BrokenExecutor`` poisons every in-flight future, but results of
        already-completed shards are kept; the pool is torn down, re-primed,
        and only the unfinished shards are resubmitted.  A shard still
        pending after ``max_shard_retries`` whole-shard retries is *bisected*
        — halves inherit the attempt count, so repeated losses binary-search
        down to single-trajectory shards.  Because a broken multi-shard round
        cannot prove *which* shard killed the worker (queued siblings break
        too), an exhausted singleton is never quarantined by association:
        it is resubmitted **solo**, and only a shard that breaks the pool
        while running alone is quarantined as a ``WorkerLost`` failure with
        its raw events intact.  Canonical bytes of every surviving
        trajectory are untouched: recovery only re-runs work that never
        completed.
        """
        log = plan.ensure_failure_log()
        pending: Dict[int, List[Tuple[int, RawTrajectory]]] = {
            index: items for index, items in shards
        }
        attempts: Dict[int, int] = {index: 0 for index in pending}
        next_index = max(pending) + 1
        collected: List[Tuple[int, List[Tuple[int, PipelineResult]]]] = []
        while pending:
            pool = self._ensure_pool(plan.geo_context())
            # Exhausted singletons run solo, one per round: a broken solo
            # round pins the blame on that exact shard, so innocents caught
            # in a round a poison shard breaks are retried, not quarantined.
            suspects = sorted(
                index
                for index, items in pending.items()
                if len(items) == 1 and attempts[index] > policy.max_shard_retries
            )
            round_shards = (
                {suspects[0]: pending[suspects[0]]} if suspects else dict(pending)
            )
            submission = sorted(
                round_shards.items(),
                key=lambda entry: (-sum(len(t) for _, t in entry[1]), entry[0]),
            )
            futures = {
                pool.submit(_annotate_shard, (index, items)): index
                for index, items in submission
            }
            broken = False
            for future, index in futures.items():
                try:
                    shard_index, outputs = future.result()
                except BrokenExecutor:
                    broken = True
                    continue
                clean: List[Tuple[int, PipelineResult]] = []
                for order, out in outputs:
                    if isinstance(out, TrajectoryFailure):
                        log.quarantine(out)
                    else:
                        clean.append((order, out))
                collected.append((shard_index, clean))
                del pending[index]
            if not broken:
                continue
            # Tear the poisoned pool down (stops siblings, unlinks the
            # shared segment); the next loop iteration re-primes it.
            self.close()
            log.record_worker_loss()
            solo = len(round_shards) == 1
            for index in round_shards:
                if index not in pending:
                    continue  # completed before the pool broke
                items = pending[index]
                attempt = attempts[index] + 1
                attempts[index] = attempt
                if attempt <= policy.max_shard_retries:
                    continue  # whole-shard retry next round
                if solo and len(items) == 1:
                    # Proven poison: it alone was running when the worker
                    # died, and its retry budget is spent.
                    del pending[index]
                    order, trajectory = items[0]
                    log.quarantine(
                        TrajectoryFailure(
                            trajectory=trajectory,
                            stage="worker",
                            error=(
                                "worker process lost while annotating this "
                                "trajectory (SIGKILL/OOM)"
                            ),
                            attempts=attempt,
                            events=[
                                FailureEvent(
                                    stage="worker", kind="WorkerLost", attempt=prior + 1
                                )
                                for prior in range(attempt)
                            ],
                        )
                    )
                elif len(items) > 1:
                    del pending[index]
                    half = (len(items) + 1) // 2
                    for part in (items[:half], items[half:]):
                        pending[next_index] = part
                        attempts[next_index] = attempt
                        next_index += 1
                # else: an exhausted singleton from a multi-shard round —
                # kept pending; the suspect path above will run it solo.
        return collected

    def _ensure_pool(self, context: GeoContext) -> _FuturesProcessPool:
        if self._pool is not None:
            if self._pool_context is context:
                return self._pool
            self.close()  # a pool primed with another snapshot is stale
        mp_context = _pool_mp_context()
        start_method = mp_context.get_start_method()
        # "auto" shares via shared memory exactly when the start method would
        # otherwise pickle the snapshot per worker; under fork the blocks are
        # already shared as copy-on-write pages, so segments add nothing.
        use_shared = self._shared_memory == "on" or (
            self._shared_memory == "auto" and start_method != "fork"
        )
        initargs: Tuple[object, ...]
        if use_shared:
            from repro.parallel.shared import share_context  # deferred: import cycle

            self._shared = share_context(context)
            initargs = (None, None, self._shared.spec)
        elif start_method == "fork":
            # Children inherit the snapshot as copy-on-write memory; the
            # registry entry lives until close() so late worker forks see it.
            self._fork_token = next(_FORK_TOKENS)
            _FORK_CONTEXTS[self._fork_token] = context
            initargs = (self._fork_token, None, None)
        else:  # pragma: no cover - non-POSIX platforms
            initargs = (None, context, None)
        self._pool = _FuturesProcessPool(
            max_workers=self._workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=initargs,
        )
        self._pool_context = context
        # If the executor is garbage collected without close(), stop the
        # worker processes and release the registry entry and shared segment
        # instead of leaking them; finalize also runs at interpreter exit.
        self._pool_finalizer = weakref.finalize(
            self, _release_pool_resources, self._pool, self._fork_token, self._shared
        )
        return self._pool


# ------------------------------------------------------------- micro-batching
@dataclass
class EngineStats:
    """Counters a micro-batch executor maintains while processing the stream.

    Historically micro-batch-only.  When the plan's telemetry enables
    metrics, the same vocabulary is also published as ``engine_*_total``
    registry counters labelled by executor kind — for **all three**
    executors, so sequential and process-pool throughput is observable with
    the same series (see :class:`repro.obs.metrics.EngineCounters`).
    """

    events: int = 0
    results: int = 0
    episodes_sealed: int = 0
    trajectories_discarded: int = 0
    processing_passes: int = 0


class MicroBatchExecutor(Executor):
    """The streaming session loop as a plan executor.

    Events are buffered into micro-batches
    (``plan.config.streaming.micro_batch_size``); each processing pass
    appends the buffered points to their per-object sessions, lets every
    touched session seal episodes and routes each sealed episode through the
    plan's incremental stage bodies.  When a trajectory closes (gap,
    eviction or explicit close) the close-time stage bodies run — HMM point
    annotation over the full stop sequence and, when the plan persists,
    store write-back inside one commit-on-success transaction scope.
    """

    kind = "micro_batch"

    def __init__(
        self,
        plan: Plan,
        on_result: Optional[Callable[[PipelineResult], None]] = None,
        on_episode: Optional[Callable[[Episode], None]] = None,
    ):
        from repro.streaming.session import SessionManager  # deferred: import cycle

        self._plan = plan
        self._streaming = plan.config.streaming
        self._on_result = on_result
        self._on_episode = on_episode
        self._counters = plan.telemetry.engine_counters(self.kind)
        self._streaming_metrics = plan.telemetry.streaming_metrics()
        self._sessions = SessionManager(plan.config, metrics=self._streaming_metrics)
        self._pending: List[Tuple[str, SpatioTemporalPoint]] = []
        self._items: Dict[str, WorkItem] = {}
        # Trajectories whose incremental absorption failed under an isolating
        # policy: stage routing is suspended for them (events keep counting),
        # and close-time handling decides between batch-replay and quarantine.
        self._poisoned: Dict[str, List[FailureEvent]] = {}
        match_stage = plan.stage("map_match")
        self._windowed = (
            match_stage.make_windowed_matcher()
            if isinstance(match_stage, MapMatchStage)
            else None
        )
        self.stats = EngineStats()

    # ------------------------------------------------------------- properties
    @property
    def plan(self) -> Plan:
        """The compiled plan this executor drives."""
        return self._plan

    @property
    def open_session_count(self) -> int:
        """Number of currently open per-object sessions."""
        return len(self._sessions)

    @property
    def sessions_evicted(self) -> int:
        """Sessions closed because the LRU capacity was exceeded."""
        return self._sessions.evicted_total

    @property
    def pending_event_count(self) -> int:
        """Events buffered in the current micro-batch."""
        return len(self._pending)

    # -------------------------------------------------------------- execution
    def run(self, plan: Plan, trajectories: Sequence[RawTrajectory]) -> List[PipelineResult]:
        """Replay a batch of trajectories through the streaming loop.

        Each trajectory's points are fed as events for its object, then the
        object is closed, so results come back in input order with content
        (episodes, annotations) identical to the other executors.  Trajectory
        identifiers are re-assigned by the per-object session numbering,
        which can differ from externally assigned ids — for full canonical
        byte-parity, feed the original raw event stream through
        :meth:`ingest_many` / :meth:`close_all` instead, as the parity suite
        does.
        """
        if plan is not self._plan:
            raise ConfigurationError(
                "a MicroBatchExecutor is bound to the plan it was built with; "
                "construct a new executor for a different plan"
            )
        results: List[PipelineResult] = []
        for trajectory in trajectories:
            for point in trajectory.points:
                results.extend(self.ingest(trajectory.object_id, point))
            results.extend(self.close_object(trajectory.object_id))
        return results

    # ------------------------------------------------------------------ feed
    def ingest(self, object_id: str, point: SpatioTemporalPoint) -> List[PipelineResult]:
        """Feed one event; returns results for any trajectories sealed by it.

        Most calls only buffer the event and return ``[]``; every
        ``micro_batch_size`` events the executor runs a processing pass,
        during which gap close-outs, LRU evictions and episode sealing
        happen.
        """
        self._pending.append((object_id, point))
        self.stats.events += 1
        if self._counters is not None:
            self._counters.events.inc()
            assert self._streaming_metrics is not None
            self._streaming_metrics.pending_events.set(len(self._pending))
        if len(self._pending) >= self._streaming.micro_batch_size:
            return self._process_pending()
        return []

    def ingest_many(
        self, events: Iterable[Tuple[str, SpatioTemporalPoint]]
    ) -> List[PipelineResult]:
        """Feed several events in order; returns every sealed result."""
        results: List[PipelineResult] = []
        for object_id, point in events:
            results.extend(self.ingest(object_id, point))
        return results

    def flush(self) -> List[PipelineResult]:
        """Process the buffered micro-batch immediately.

        Sessions are not explicitly closed, but the pass itself may still
        seal trajectories: gap close-outs and LRU evictions triggered by the
        buffered events happen here, so results can be returned.
        """
        return self._process_pending()

    def close_object(self, object_id: str) -> List[PipelineResult]:
        """End of stream for one object: seal and annotate its open trajectory."""
        results = self._process_pending()
        session = self._sessions.pop(object_id)
        if session is not None:
            results.extend(self._close_session(session))
        return results

    def close_all(self) -> List[PipelineResult]:
        """End of stream for every object; returns all remaining results."""
        results = self._process_pending()
        for session in self._sessions.pop_all():
            results.extend(self._close_session(session))
        return results

    def evict_sessions(self, max_open: int) -> List[PipelineResult]:
        """Gracefully close least-recently-active sessions beyond ``max_open``.

        The memory-pressure hook the ingestion service drives: buffered
        events are processed first (so eviction cannot reorder absorption),
        then the LRU tail is sealed through the same close-out path a gap or
        an explicit close takes, and any sealed trajectories are returned.
        """
        results = self._process_pending()
        for session in self._sessions.evict_lru(max_open):
            results.extend(self._close_session(session))
        return results

    # ------------------------------------------------------------- processing
    def _process_pending(self) -> List[PipelineResult]:
        if not self._pending:
            return []
        self.stats.processing_passes += 1
        if self._counters is not None:
            self._counters.processing_passes.inc()
            assert self._streaming_metrics is not None
            self._streaming_metrics.pending_events.set(0)
        # Take the batch before touching any session: if a push or a stage
        # raises mid-pass, already-absorbed events must not be replayed into
        # their sessions by the next pass.
        pending, self._pending = self._pending, []
        results: List[PipelineResult] = []
        touched: Dict[str, Session] = {}
        for object_id, point in pending:
            session, evicted = self._sessions.acquire(object_id)
            for old in evicted:
                touched.pop(old.object_id, None)
                results.extend(self._close_session(old))
            update = session.push(point)
            results.extend(self._handle_update(update))
            touched[object_id] = session
        for session in touched.values():
            self._advance_session(session)
        return results

    def _advance_session(self, session: Session) -> None:
        trajectory = session.trajectory
        if trajectory is None:
            return
        item = self._item_for(trajectory)
        started = time.perf_counter()
        sealed = session.advance()
        item.record_stage("compute_episode", time.perf_counter() - started)
        for episode in sealed:
            self._absorb_episode(item, episode)

    def _close_session(self, session: Session) -> List[PipelineResult]:
        return self._handle_update(session.close())

    def _handle_update(self, update: SessionUpdate) -> List[PipelineResult]:
        results: List[PipelineResult] = []
        for sealed in update.sealed:
            result = self._finish_trajectory(sealed)
            if result is not None:
                results.append(result)
        return results

    def _finish_trajectory(self, sealed: SealedTrajectory) -> Optional[PipelineResult]:
        if sealed.discarded:
            self.stats.trajectories_discarded += 1
            if self._counters is not None:
                self._counters.trajectories_discarded.inc()
            self._items.pop(sealed.trajectory.trajectory_id, None)
            self._poisoned.pop(sealed.trajectory.trajectory_id, None)
            return None
        item = self._item_for(sealed.trajectory)
        item.record_stage("compute_episode", sealed.compute_seconds)
        for episode in sealed.final_episodes:
            self._absorb_episode(item, episode)

        plan = self._plan
        trajectory_id = item.trajectory.trajectory_id
        events = self._poisoned.pop(trajectory_id, [])
        result: Optional[PipelineResult]
        if events:
            result = self._replay_failed(sealed, events)
        else:
            try:
                self._finish_item(item)
                result = item.result
            except Exception as error:
                if not plan.failure_policy.isolates:
                    self._items.pop(trajectory_id, None)
                    raise
                events = [
                    FailureEvent(
                        stage=failure_stage(error),
                        kind=type(error).__name__,
                        attempt=1,
                        error=repr(error),
                    )
                ]
                result = self._replay_failed(sealed, events)

        self._items.pop(trajectory_id, None)
        if result is None:
            return None
        self.stats.results += 1
        if result is item.result:
            item.finish_trace()
        if plan.telemetry.enabled:
            plan.telemetry.collect(result)
        if self._counters is not None:
            self._counters.results.inc()
        if self._on_result is not None:
            self._on_result(result)
        return result

    def _finish_item(self, item: WorkItem) -> None:
        """Run close-out and close-time stage bodies (with write-back scope)."""
        plan = self._plan
        faults = plan.faults
        scope: ContextManager[object] = (
            plan.store if plan.persist and plan.store is not None else nullcontext()
        )
        try:
            with scope:
                for stage in plan.stages:
                    stage.close_out(item)
                    if stage.finishes(item):
                        try:
                            with item.stage_scope(stage.name):
                                if faults.enabled:
                                    faults.on_stage(stage.name, item.trajectory.object_id)
                                stage.finish(item)
                        except BaseException as error:
                            tag_failure_stage(error, stage.name)
                            raise
        except BaseException as error:
            tag_failure_stage(error, "store_commit")
            raise

    def _replay_failed(
        self, sealed: SealedTrajectory, events: List[FailureEvent]
    ) -> Optional[PipelineResult]:
        """Retry a failed streaming trajectory by batch-replaying it.

        Incremental absorption consumed the session's events, so the retry
        path re-runs the *sealed* trajectory through the batch stage loop —
        which the parity guarantee makes content-identical to an incremental
        pass — with the policy's backoff between attempts.  Exhaustion (or a
        poison trajectory whose fault keeps firing) quarantines the sealed
        trajectory with its raw events; the trajectory id is the session's,
        so a later replay-from-quarantine slots into the same identity.
        """
        plan = self._plan
        policy = plan.failure_policy
        log = plan.ensure_failure_log()
        trajectory = sealed.trajectory
        failures = list(events)
        attempt = failures[-1].attempt
        while attempt <= policy.retries:
            delay = policy.backoff(attempt)
            if delay > 0:
                time.sleep(delay)
            attempt += 1
            try:
                result = run_stages(plan, trajectory)
            except Exception as error:
                failures.append(
                    FailureEvent(
                        stage=failure_stage(error),
                        kind=type(error).__name__,
                        attempt=attempt,
                        error=repr(error),
                    )
                )
                continue
            result.fault_events = failures
            log.absorb_result(result)
            return result
        log.quarantine(
            TrajectoryFailure(
                trajectory=trajectory,
                stage=failures[-1].stage,
                error=failures[-1].error,
                attempts=attempt,
                events=failures,
            )
        )
        return None

    # ------------------------------------------------------------- annotation
    def _absorb_episode(self, item: WorkItem, episode: Episode) -> None:
        """Route one sealed episode through the plan's incremental stages.

        Under an isolating policy a stage failure poisons the trajectory —
        routing is suspended for the rest of its episodes (they still append
        and count) and close-time handling retries or quarantines it; under
        ``fail_fast`` the tagged exception propagates as before.
        """
        item.result.episodes.append(episode)
        plan = self._plan
        faults = plan.faults
        trajectory_id = item.trajectory.trajectory_id
        if trajectory_id not in self._poisoned:
            for stage in plan.stages:
                if stage.wants_episode(item, episode):
                    try:
                        with item.stage_scope(stage.name):
                            if faults.enabled:
                                faults.on_stage(stage.name, item.trajectory.object_id)
                            stage.absorb_episode(item, episode)
                    except Exception as error:
                        tag_failure_stage(error, stage.name)
                        if not plan.failure_policy.isolates:
                            raise
                        self._poisoned.setdefault(trajectory_id, []).append(
                            FailureEvent(
                                stage=stage.name,
                                kind=type(error).__name__,
                                attempt=1,
                                error=repr(error),
                            )
                        )
                        break
        self.stats.episodes_sealed += 1
        if self._counters is not None:
            self._counters.episodes_sealed.inc()
        if self._on_episode is not None:
            self._on_episode(episode)

    def _item_for(self, trajectory: RawTrajectory) -> WorkItem:
        item = self._items.get(trajectory.trajectory_id)
        if item is None:
            item = WorkItem.start(trajectory, self._plan.telemetry)
            item.windowed_matcher = self._windowed
            self._items[trajectory.trajectory_id] = item
        return item
