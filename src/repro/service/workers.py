"""Process-per-shard execution tier for the annotation service.

The thread transport keeps every shard's
:class:`~repro.engine.executors.MicroBatchExecutor` inside the service
process, so the GIL serializes all annotation work no matter how many shards
are configured.  This module is the ``transport="process"`` alternative: each
shard runs its executor in a dedicated worker process, attached zero-copy to
the parent's :class:`~repro.parallel.context.GeoContext` (PR 7's
``share_context``/``attach_context`` machinery — one shm segment, read-only
views), while the asyncio front end keeps ownership of routing, bounded
queues, backpressure and the WAL.

Wire discipline, chosen for amortized IPC on the hot path:

* **parent → worker** — batched frames over a ``multiprocessing`` pipe, one
  ``send_bytes`` per micro-batch.  A frame is newline-joined JSON lines using
  the WAL's fast-path encoder (cached object-id encoding, ``repr``-formatted
  finite floats): ``["e",id,x,y,t]`` events, ``["c",id]`` closes, ``["v",n]``
  evictions, plus the ``["drain"]``/``["stop"]`` control frames;
* **worker → parent** — pickled acks on a second pipe, one per frame and in
  frame order, each carrying the sealed :class:`PipelineResult` rows of that
  batch (results stream back incrementally — the parent preserves
  ``on_result`` ordering and its enqueue-to-absorbed latency histogram), the
  events absorbed, the open-session gauge and any dead-lettered quarantines.

Workers never persist: sealed rows ship to the parent, which commits at drain
in the same deterministic order as the thread transport.  A worker that dies
mid-stream is detected by the parent's reader task (pipe EOF) and recovered
from the WAL — see ``AnnotationService._recover_shard``.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import os
import signal
from dataclasses import replace
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.errors import SemitriError
from repro.core.pipeline import PipelineResult
from repro.core.points import SpatioTemporalPoint
from repro.engine.executors import MicroBatchExecutor, _pool_mp_context
from repro.engine.plan import Plan
from repro.faults.failures import FailureLog, TrajectoryFailure
from repro.faults.inject import FaultInjector, FaultPlan
from repro.faults.journal import ObjectIdEncoder, encode_point_fast
from repro.parallel.context import GeoContext
from repro.parallel.shared import SharedContextSpec, attach_context

__all__ = [
    "FrameEncoder",
    "ShardProcessHandle",
    "decode_frame",
    "shard_worker_main",
    "DRAIN_FRAME",
    "STOP_FRAME",
]

#: Wire tags of the per-item frame lines (events dominate, so one byte each).
_TAG_EVENT, _TAG_CLOSE, _TAG_EVICT = "e", "c", "v"

#: Control frames (single-line, no payload).
DRAIN_FRAME = b'["drain"]'
STOP_FRAME = b'["stop"]'

#: One decoded frame item: (tag, object id or eviction target, point or None).
FrameOp = Tuple[str, object, Optional[SpatioTemporalPoint]]

#: Exception types a worker batch may fail with that ship back to the parent
#: as an ``("error", ...)`` ack instead of killing the worker.  Mirrors the
#: service's ``_BATCH_ERRORS`` minus ``sqlite3.Error`` — worker plans never
#: touch a store.
_WORKER_BATCH_ERRORS = (
    SemitriError,
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    ArithmeticError,
    RuntimeError,
    OSError,
)


class FrameEncoder:
    """Encodes service queue items into one batched IPC frame.

    Reuses the WAL's fast-path discipline: object ids are JSON-encoded once
    and cached (:class:`~repro.faults.journal.ObjectIdEncoder`), finite float
    triples format via ``repr`` (byte-identical to ``json.dumps``), and the
    rare non-finite/non-float point falls back to a full ``json.dumps``.
    """

    def __init__(self) -> None:
        self._ids = ObjectIdEncoder()

    def encode_batch(
        self, items: Iterable[Sequence[object]]
    ) -> bytes:
        """One frame for ``items`` shaped ``(kind, id_or_target, point, ...)``.

        ``kind`` is the service's queue-item kind (``"event"``, ``"close"``
        or ``"evict"``); anything else (the stop sentinel) must be filtered
        by the caller.
        """
        lines: List[str] = []
        for item in items:
            kind, target, point = item[0], item[1], item[2]
            if kind == "event":
                assert point is not None
                fields = encode_point_fast(point.x, point.y, point.t)
                if fields is not None:
                    lines.append(f'["e",{self._ids.encode(str(target))},{fields}]')
                else:
                    lines.append(
                        json.dumps(
                            ["e", str(target), point.x, point.y, point.t],
                            separators=(",", ":"),
                        )
                    )
            elif kind == "close":
                lines.append(f'["c",{self._ids.encode(str(target))}]')
            else:  # evict: target carries the open-session budget
                lines.append(f'["v",{int(target)}]')  # type: ignore[call-overload]
        return "\n".join(lines).encode("utf-8")


def decode_frame(data: bytes) -> List[FrameOp]:
    """Parse one batched frame back into per-item operations."""
    ops: List[FrameOp] = []
    for line in data.decode("utf-8").split("\n"):
        if not line:
            continue
        payload = json.loads(line)
        tag = payload[0]
        if tag == _TAG_EVENT:
            ops.append(
                (
                    tag,
                    payload[1],
                    SpatioTemporalPoint(
                        x=float(payload[2]), y=float(payload[3]), t=float(payload[4])
                    ),
                )
            )
        elif tag == _TAG_CLOSE:
            ops.append((tag, payload[1], None))
        elif tag == _TAG_EVICT:
            ops.append((tag, int(payload[1]), None))
        else:  # "drain" / "stop" control frames are single-line
            ops.append((tag, None, None))
    return ops


def _materialize_context(
    payload: Union[SharedContextSpec, GeoContext],
) -> Tuple[GeoContext, object]:
    """The worker-side context, plus whatever must stay referenced for it.

    A :class:`SharedContextSpec` attaches to the parent's shm segment and
    rebuilds read-only aliasing views — the returned bundle must live as long
    as the context (its arrays alias the mapping) and is never unlinked here
    (the parent owns the segment).  A plain :class:`GeoContext` arrived via
    fork inheritance (copy-on-write, no pickling) or via the spawn pickle.
    """
    if isinstance(payload, SharedContextSpec):
        return attach_context(payload)
    return payload, None


def shard_worker_main(
    index: int,
    payload: Union[SharedContextSpec, GeoContext],
    per_shard_sessions: int,
    fault_plan: str,
    requests: "multiprocessing.connection.Connection",
    responses: "multiprocessing.connection.Connection",
) -> None:
    """Entry point of one shard's worker process.

    Drives a :class:`MicroBatchExecutor` over the attached snapshot: decode a
    frame, absorb its items in order, ack with the sealed results.  Acks are
    sent in frame order on a FIFO pipe, which is what lets the parent keep
    per-shard absorption order (and therefore canonical parity) identical to
    the thread transport.
    """
    # The parent handles SIGINT for the whole service; a Ctrl-C must not kill
    # workers before the parent decides whether to drain or shut down.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    context, bundle = _materialize_context(payload)
    del payload
    config = replace(
        context.config,
        streaming=replace(context.config.streaming, max_sessions=per_shard_sessions),
    )
    faults = (
        FaultInjector(FaultPlan.parse(fault_plan))
        if fault_plan
        else FaultInjector.from_env()
    )
    # Worker-local failure log: its counters are never read (the parent's log
    # is the single counting point); only the buffered quarantines ship back.
    failure_log = FailureLog(config.failure)
    plan = Plan.compile(
        sources=context.sources,
        config=config,
        annotators=context.annotators,
        faults=faults,
        failure_log=failure_log,
    )
    executor = MicroBatchExecutor(plan)
    # ``bundle`` stays referenced for the life of this frame loop — the
    # context's arrays alias its shared-memory mapping.

    while True:
        try:
            data = requests.recv_bytes()
        except (EOFError, OSError):
            break  # parent went away; nothing useful left to do
        ops = decode_frame(data)
        if ops and ops[0][0] == "stop":
            break
        if ops and ops[0][0] == "drain":
            sealed = executor.close_all()
            responses.send(
                (
                    "drained",
                    sealed,
                    _pop_quarantines(failure_log),
                    executor.sessions_evicted,
                )
            )
            continue
        results: List[PipelineResult] = []
        absorbed = 0
        try:
            for tag, target, point in ops:
                if tag == _TAG_EVENT:
                    object_id = str(target)
                    # Kill-style chaos follows the shard into its process:
                    # the hook fires per event here (streams have no
                    # trajectory boundary until sealing).
                    faults.on_trajectory(object_id, worker=True)
                    results.extend(executor.ingest(object_id, point))
                    absorbed += 1
                elif tag == _TAG_CLOSE:
                    results.extend(executor.close_object(str(target)))
                else:
                    results.extend(executor.evict_sessions(int(target)))  # type: ignore[arg-type]
        except _WORKER_BATCH_ERRORS as error:
            object_ids = sorted(
                {str(target) for tag, target, _ in ops if tag in (_TAG_EVENT, _TAG_CLOSE)}
            )
            responses.send(
                (
                    "error",
                    type(error).__name__,
                    repr(error),
                    object_ids,
                    len(ops),
                    absorbed,
                    executor.open_session_count,
                    executor.sessions_evicted,
                    _pop_quarantines(failure_log),
                )
            )
            continue
        responses.send(
            (
                "ok",
                results,
                absorbed,
                executor.open_session_count,
                executor.sessions_evicted,
                _pop_quarantines(failure_log),
            )
        )


def _pop_quarantines(failure_log: FailureLog) -> List[TrajectoryFailure]:
    """Drain the worker log's buffered dead letters for shipping.

    Exceptions are stripped before pickling (arbitrary exception objects may
    not cross process boundaries; the repr travels on the record).
    """
    quarantines = failure_log.drain_pending()
    for failure in quarantines:
        failure.exception = None
    return quarantines


class ShardProcessHandle:
    """Parent-side handle for one shard's worker process and its pipes.

    Owns the per-shard IPC bookkeeping the service's consumer and reader
    tasks share: the request/response connections, the counters mirrored from
    acks (events absorbed, open sessions, evictions), how many WAL-covered
    operations have been handed to the worker (``sent_ops`` — the replay
    prefix after a worker loss), and the in-flight frame metadata the reader
    pops to observe per-event latency.
    """

    #: Frames allowed in flight per shard before the consumer awaits an ack.
    #: Two keeps the worker busy while the parent encodes the next batch;
    #: frames are a few KB, so the pipe buffer never fills and ``send_bytes``
    #: never blocks the event loop.
    max_inflight = 2

    def __init__(
        self,
        index: int,
        payload: Union[SharedContextSpec, GeoContext],
        per_shard_sessions: int,
        fault_plan: str = "",
    ):
        self.index = index
        self._payload = payload
        self._per_shard_sessions = per_shard_sessions
        self._fault_plan = fault_plan
        self._mp_ctx = _pool_mp_context()
        self._process: Optional[multiprocessing.process.BaseProcess] = None
        self._requests: Optional[multiprocessing.connection.Connection] = None
        self._responses: Optional[multiprocessing.connection.Connection] = None
        self.encoder = FrameEncoder()
        # Counters mirrored from worker acks (the worker owns the truth; the
        # parent's copy is what service properties and metrics read).
        self.events_absorbed = 0
        self.open_sessions = 0
        self.sessions_evicted = 0
        #: WAL-covered operations (events + closes) handed to the worker so
        #: far — recovery replays exactly this prefix of the shard's journal.
        self.sent_ops = 0
        #: Per in-flight frame: (enqueue timestamps of its items, its event
        #: count) — popped FIFO as acks arrive (the pipe preserves order).
        self.pending: List[Tuple[List[float], int]] = []
        self.restarts = 0
        #: Events of proven-poison objects skipped at the shard boundary.
        #: Counted in ``sent_ops`` (they are journaled) but never framed;
        #: recomputed from the WAL prefix at each recovery, incremented live
        #: in between.  Survives respawns — these were handled, not lost.
        self.poison_skipped = 0
        #: Whether the service already asked this shard to drain; recovery
        #: re-sends the drain frame when the ack died with the worker.
        self.drain_requested = False

    # ------------------------------------------------------------- lifecycle
    def spawn(self) -> None:
        """Start (or restart) the worker process on fresh pipes."""
        self._close_connections()
        parent_req, child_req = self._mp_ctx.Pipe(duplex=False)
        parent_resp, child_resp = self._mp_ctx.Pipe(duplex=False)
        self._process = self._mp_ctx.Process(
            target=shard_worker_main,
            args=(
                self.index,
                self._payload,
                self._per_shard_sessions,
                self._fault_plan,
                parent_req,
                child_resp,
            ),
            name=f"semitri-shard-{self.index}",
            daemon=True,
        )
        self._process.start()
        # The child holds its own ends now; closing ours makes a worker death
        # surface as EOF on the response pipe instead of a hang.
        parent_req.close()
        child_resp.close()
        self._requests = child_req
        self._responses = parent_resp
        # A respawned worker starts from an empty executor: its counters (and
        # any un-acked frame metadata) died with the previous process.
        self.events_absorbed = 0
        self.open_sessions = 0
        self.sessions_evicted = 0
        self.pending = []

    def respawn(self) -> None:
        """Replace a dead worker with a fresh one (counted as a restart)."""
        if self._process is not None and self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        self.restarts += 1
        self.spawn()

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker (fault-injection harness for recovery tests)."""
        if self._process is not None and self._process.pid is not None:
            os.kill(self._process.pid, signal.SIGKILL)

    def close(self) -> None:
        """Best-effort stop + join + release both pipe ends (idempotent)."""
        if self._requests is not None:
            try:
                self._requests.send_bytes(STOP_FRAME)
            except (OSError, ValueError):
                pass
        if self._process is not None:
            self._process.join(timeout=5.0)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout=5.0)
            self._process = None
        self._close_connections()

    def _close_connections(self) -> None:
        for connection in (self._requests, self._responses):
            if connection is not None:
                try:
                    connection.close()
                except OSError:
                    pass
        self._requests = None
        self._responses = None

    # ------------------------------------------------------------------- IPC
    def send_frame(self, data: bytes) -> None:
        """Ship one encoded frame (raises ``OSError`` once the worker died)."""
        assert self._requests is not None, "worker not spawned"
        self._requests.send_bytes(data)

    def recv(self) -> Tuple[object, ...]:
        """Blocking ack read — runs on the service's IPC reader thread."""
        assert self._responses is not None, "worker not spawned"
        return self._responses.recv()
