"""Unit tests for POI sources."""

from __future__ import annotations

import pytest

from repro.core.errors import SourceError
from repro.core.places import PointOfInterest
from repro.geometry.primitives import BoundingBox, Point
from repro.points.poi import DEFAULT_POI_CATEGORIES, PoiSource, category_counts


def _poi(place_id: str, x: float, y: float, category: str) -> PointOfInterest:
    return PointOfInterest(place_id=place_id, name=place_id, category=category, location=Point(x, y))


@pytest.fixture()
def small_source() -> PoiSource:
    pois = [
        _poi("p0", 0, 0, "feedings"),
        _poi("p1", 10, 0, "feedings"),
        _poi("p2", 100, 100, "item sale"),
        _poi("p3", 110, 100, "item sale"),
        _poi("p4", 120, 100, "item sale"),
        _poi("p5", 500, 500, "services"),
    ]
    return PoiSource(pois, name="small", index_cell_size=50)


class TestPoiSource:
    def test_empty_source_rejected(self):
        with pytest.raises(SourceError):
            PoiSource([], name="empty")

    def test_len_and_pois(self, small_source):
        assert len(small_source) == 6
        assert len(small_source.pois) == 6

    def test_categories_preserve_first_appearance_order(self, small_source):
        assert small_source.categories() == ["feedings", "item sale", "services"]

    def test_category_counts(self, small_source):
        counts = small_source.category_counts()
        assert counts == {"feedings": 2, "item sale": 3, "services": 1}

    def test_initial_probabilities_sum_to_one(self, small_source):
        pi = small_source.initial_probabilities()
        assert sum(pi.values()) == pytest.approx(1.0)
        assert pi["item sale"] == pytest.approx(0.5)

    def test_pois_within_radius(self, small_source):
        nearby = small_source.pois_within(Point(0, 0), radius=20)
        assert [poi.place_id for _, poi in nearby] == ["p0", "p1"]

    def test_pois_in_box(self, small_source):
        inside = small_source.pois_in_box(BoundingBox(90, 90, 130, 110))
        assert {poi.place_id for poi in inside} == {"p2", "p3", "p4"}

    def test_nearest(self, small_source):
        results = small_source.nearest(Point(499, 499), count=1)
        assert results[0][1].place_id == "p5"

    def test_bounds_cover_all_pois(self, small_source):
        bounds = small_source.bounds()
        for poi in small_source.pois:
            assert bounds.contains_point(poi.location)

    def test_density_per_category(self, small_source):
        density = small_source.density_per_category()
        assert density["item sale"] > density["services"]


class TestCategoryCounts:
    def test_plain_sequence(self):
        pois = [_poi("a", 0, 0, "services"), _poi("b", 1, 1, "services")]
        assert category_counts(pois) == {"services": 2}

    def test_default_categories_match_milan(self):
        assert DEFAULT_POI_CATEGORIES == (
            "services",
            "feedings",
            "item sale",
            "person life",
            "unknown",
        )


class TestWorldPoiSource:
    def test_world_pois_have_milan_categories(self, poi_source):
        assert set(poi_source.categories()) <= set(DEFAULT_POI_CATEGORIES)

    def test_world_poi_mix_is_item_sale_and_person_life_heavy(self, poi_source):
        pi = poi_source.initial_probabilities()
        assert pi["person life"] > pi["services"]
        assert pi["item sale"] > pi["feedings"]

    def test_world_pois_inside_world(self, world, poi_source):
        for poi in poi_source.pois[:200]:
            assert world.bounds.contains_point(poi.location)
