"""GPS cleaning: outlier removal and smoothing of random errors.

The Trajectory Computation Layer first removes GPS outliers (fixes that imply
a physically impossible speed) and smooths the remaining random error with a
small sliding-window filter.  Both operations preserve timestamps; only the
spatial coordinates change.

The ``numpy`` backend accelerates both passes without changing a single
output bit:

* outlier removal first runs a vectorized precheck over the whole stream —
  when every consecutive step has positive duration and legal speed (the
  overwhelmingly common case) nothing can be dropped and the input is
  returned as-is; otherwise the exact greedy scalar scan runs, because the
  anchor-based filter is inherently sequential once a fix is dropped;
* median smoothing (the default method) is a selection, not a sum, so the
  vectorized sliding-window median is bit-for-bit identical to the scalar
  loop.  Mean smoothing intentionally stays scalar: ``statistics.fmean`` is
  exactly rounded while ``numpy.mean`` is not, and the cleaning parity
  contract is byte-equality.
"""

from __future__ import annotations

import statistics
from typing import List, Sequence

import numpy as np

from repro.core.arrays import TrajectoryArrays
from repro.core.config import CleaningConfig
from repro.core.errors import DataQualityError
from repro.core.points import SpatioTemporalPoint
from repro.geometry.vectorized import consecutive_distances

#: Streams shorter than this stay on the scalar passes even under the numpy
#: backend (fixed kernel overhead would dominate); both paths are bit-equal,
#: so the cutoff never changes output.
_VECTOR_MIN_POINTS = 32


class GpsCleaner:
    """Removes speed outliers and smooths GPS noise.

    Parameters
    ----------
    config:
        Cleaning thresholds; see :class:`repro.core.config.CleaningConfig`.
    backend:
        ``"numpy"`` (vectorized fast paths) or ``"python"`` (scalar reference).
    """

    def __init__(self, config: CleaningConfig = CleaningConfig(), backend: str = "numpy"):
        self._config = config
        self._backend = backend

    @property
    def config(self) -> CleaningConfig:
        """The active cleaning configuration."""
        return self._config

    @property
    def backend(self) -> str:
        """The active compute backend (``"numpy"`` or ``"python"``)."""
        return self._backend

    # ------------------------------------------------------------- outliers
    def remove_outliers(
        self, points: Sequence[SpatioTemporalPoint]
    ) -> List[SpatioTemporalPoint]:
        """Drop fixes that imply a speed above ``max_speed`` from their predecessor.

        The filter is greedy: it walks the stream keeping an anchor at the last
        accepted fix, so a single wild fix is dropped without discarding the
        valid fixes that follow it.
        """
        if not points:
            return []
        if (
            self._backend == "numpy"
            and len(points) >= _VECTOR_MIN_POINTS
            and self._all_steps_legal(points)
        ):
            return list(points)
        return self._remove_outliers_scalar(points)

    def _all_steps_legal(self, points: Sequence[SpatioTemporalPoint]) -> bool:
        """Vectorized precheck: True when the greedy filter cannot drop anything.

        When every consecutive step has ``dt > 0`` and speed at most
        ``max_speed``, the anchor never diverges from the predecessor and no
        fix is dropped, so the scalar scan would return the input unchanged.
        Any violation (including negative or duplicate timestamps) falls back
        to the scalar scan, which owns the exact drop/raise semantics.
        """
        arrays = TrajectoryArrays.from_points(points)
        dt = arrays.ts[1:] - arrays.ts[:-1]
        if not bool((dt > 0.0).all()):
            return False
        distances = consecutive_distances(arrays.xs, arrays.ys)
        return bool((distances / dt <= self._config.max_speed).all())

    def _remove_outliers_scalar(
        self, points: Sequence[SpatioTemporalPoint]
    ) -> List[SpatioTemporalPoint]:
        cleaned: List[SpatioTemporalPoint] = [points[0]]
        for candidate in points[1:]:
            anchor = cleaned[-1]
            dt = candidate.t - anchor.t
            if dt < 0:
                raise DataQualityError("GPS stream timestamps must be non-decreasing")
            if dt == 0:
                # Duplicate timestamp: keep the first fix, drop the duplicate.
                continue
            speed = anchor.distance_to(candidate) / dt
            if speed <= self._config.max_speed:
                cleaned.append(candidate)
        return cleaned

    # ------------------------------------------------------------ smoothing
    def smooth(self, points: Sequence[SpatioTemporalPoint]) -> List[SpatioTemporalPoint]:
        """Smooth coordinates with a centred sliding-window filter.

        The window size and method (median or mean) come from the
        configuration; timestamps are untouched and the first/last fixes keep
        their original position so trajectory endpoints stay anchored.
        """
        window = self._config.smoothing_window
        method = self._config.smoothing_method
        if window <= 1 or method == "none" or len(points) < 3:
            return list(points)
        if (
            self._backend == "numpy"
            and method == "median"
            and len(points) >= _VECTOR_MIN_POINTS
        ):
            return self._smooth_median_arrays(points, window)
        return self._smooth_scalar(points, window, method)

    def _smooth_scalar(
        self, points: Sequence[SpatioTemporalPoint], window: int, method: str
    ) -> List[SpatioTemporalPoint]:
        half = window // 2
        aggregate = statistics.median if method == "median" else statistics.fmean
        smoothed: List[SpatioTemporalPoint] = []
        for index, point in enumerate(points):
            if index == 0 or index == len(points) - 1:
                smoothed.append(point)
                continue
            lo = max(0, index - half)
            hi = min(len(points), index + half + 1)
            xs = [p.x for p in points[lo:hi]]
            ys = [p.y for p in points[lo:hi]]
            smoothed.append(SpatioTemporalPoint(aggregate(xs), aggregate(ys), point.t))
        return smoothed

    def _smooth_median_arrays(
        self, points: Sequence[SpatioTemporalPoint], window: int
    ) -> List[SpatioTemporalPoint]:
        """Vectorized sliding-window median over columnar coordinates.

        Interior points whose window is not clipped by the stream boundary are
        aggregated in one ``np.median`` sweep over a strided window view; the
        few boundary points (clipped windows, anchored endpoints) follow the
        scalar rules.  ``np.median`` and ``statistics.median`` select (or
        average) the same elements, so the result is bit-for-bit identical.
        """
        n = len(points)
        half = window // 2
        arrays = TrajectoryArrays.from_points(points)
        smoothed: List[SpatioTemporalPoint] = list(points)
        # Indices with a full, unclipped window: half .. n - 1 - half.
        full_lo = half
        full_hi = n - 1 - half
        if full_hi >= full_lo:
            span = 2 * half + 1
            windows_x = np.lib.stride_tricks.sliding_window_view(arrays.xs, span)
            windows_y = np.lib.stride_tricks.sliding_window_view(arrays.ys, span)
            med_x = np.median(windows_x, axis=1)
            med_y = np.median(windows_y, axis=1)
            for index in range(max(full_lo, 1), min(full_hi, n - 2) + 1):
                smoothed[index] = SpatioTemporalPoint(
                    float(med_x[index - half]), float(med_y[index - half]), points[index].t
                )
        # Boundary interior points (window clipped by the stream edge).
        for index in range(1, n - 1):
            if full_lo <= index <= full_hi:
                continue
            lo = max(0, index - half)
            hi = min(n, index + half + 1)
            smoothed[index] = SpatioTemporalPoint(
                float(np.median(arrays.xs[lo:hi])),
                float(np.median(arrays.ys[lo:hi])),
                points[index].t,
            )
        return smoothed

    # ---------------------------------------------------------------- pipeline
    def clean(self, points: Sequence[SpatioTemporalPoint]) -> List[SpatioTemporalPoint]:
        """Full cleaning pass: outlier removal followed by smoothing."""
        return self.smooth(self.remove_outliers(points))
