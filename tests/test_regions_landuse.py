"""Unit tests for the landuse ontology of Figure 4."""

from __future__ import annotations

import pytest

from repro.core.errors import SourceError
from repro.regions.landuse import (
    ALL_LANDUSE_CODES,
    LANDUSE_CATEGORIES,
    LANDUSE_TOP_LEVELS,
    is_urban,
    label_of,
    landuse_category,
    top_level_of,
)


class TestOntologyStructure:
    def test_seventeen_subcategories(self):
        assert len(LANDUSE_CATEGORIES) == 17
        assert len(ALL_LANDUSE_CODES) == 17

    def test_four_top_levels(self):
        assert set(LANDUSE_TOP_LEVELS) == {1, 2, 3, 4}

    def test_every_code_maps_to_a_declared_top_level(self):
        for code, category in LANDUSE_CATEGORIES.items():
            assert category.top_level in LANDUSE_TOP_LEVELS
            assert code.startswith(str(category.top_level))

    def test_expected_codes_present(self):
        for code in ("1.1", "1.2", "1.3", "2.7", "3.10", "4.13", "4.17"):
            assert code in LANDUSE_CATEGORIES

    def test_building_and_transport_labels(self):
        assert label_of("1.2") == "building areas"
        assert label_of("1.3") == "transportation areas"
        assert label_of("4.13") == "lakes"


class TestLookups:
    def test_landuse_category_lookup(self):
        category = landuse_category("1.5")
        assert category.top_level == 1
        assert "recreational" in category.label

    def test_unknown_code_raises(self):
        with pytest.raises(SourceError):
            landuse_category("9.99")

    def test_top_level_of(self):
        assert top_level_of("2.8") == 2
        assert top_level_of("4.17") == 4

    def test_is_urban(self):
        assert is_urban("1.1")
        assert is_urban("1.5")
        assert not is_urban("3.10")
        assert not is_urban("4.13")
