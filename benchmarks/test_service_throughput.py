"""Sustained multi-stream ingest throughput of the annotation service.

Replays the car benchmark dataset — every car a concurrent emitter, raw
per-object point streams — through the asyncio :class:`AnnotationService` at
full speed (no pacing) across a matrix of legs:

* thread transport at 1, 2 and 4 shards (the GIL-bound tier; the
  regression-gated metric is the single-shard events/s,
  ``events_per_s_1shard``, which tracks real per-event cost);
* process transport at 1 and 4 shards (one worker process per shard,
  zero-copy shared :class:`GeoContext`, batched pipe IPC) — gated
  ``4-shard >= 1.5x 1-shard`` only when the runner actually has >= 4
  effective cores, recorded honestly otherwise;
* a single-shard thread leg with the crash-safe ingest journal enabled,
  recording the WAL overhead percentage (informational, not gated).

Timing protocol: one untimed warmup, then **best-of-3 with alternating
legs** — every leg runs once per round, rounds repeat three times, and each
leg keeps its fastest round.  A load spike on the (often 1-core) runner
therefore degrades every leg's worst rounds equally instead of masquerading
as a transport or journaling overhead.  Multi-shard thread fairness is
asserted directly: the 2-shard p99 enqueue-to-absorbed latency must stay
within 2x the 1-shard p99 (the historical failure mode was 10x).

The benchmark refuses to publish a number for output it cannot prove
correct: every leg's drained output is checked for canonical-bytes parity
against the sequential pipeline on the same streams.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import Dict, List, Optional

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.core import PipelineConfig, SeMiTriPipeline
from repro.core.config import StreamingConfig, TrajectoryIdentificationConfig
from repro.core.cpu import effective_cpu_count
from repro.core.points import SpatioTemporalPoint
from repro.parallel import GeoContext, canonical_bytes
from repro.service import AnnotationService

ROUNDS = 3
GATED_SHARDS = 1
#: Process scaling is only a promise where the cores exist to honour it.
SCALING_GATE_MIN_CORES = 4
SCALING_GATE_RATIO = 1.5


def _service_config(
    base: PipelineConfig,
    shards: int,
    transport: str,
    journal_dir: Optional[str] = None,
) -> PipelineConfig:
    overrides: Dict[str, object] = {
        "service.shards": shards,
        "service.queue_depth": 128,
        "service.max_batch": 64,
        "service.transport": transport,
    }
    if journal_dir is not None:
        overrides["service.journal_dir"] = journal_dir
    return dataclasses.replace(
        base,
        identification=TrajectoryIdentificationConfig(
            max_time_gap=1e15, max_distance_gap=1e15, min_points=1
        ),
        # Cleaning stays ON: the sequential parity reference goes through
        # ``ingest_stream``, which always cleans, so the service must too.
        streaming=StreamingConfig(micro_batch_size=64, apply_cleaning=True),
    ).with_overrides(overrides)


def _object_streams(trajectories) -> Dict[str, List[SpatioTemporalPoint]]:
    grouped: Dict[str, list] = {}
    for trajectory in trajectories:
        grouped.setdefault(trajectory.object_id, []).append(trajectory)
    return {
        object_id: [
            point
            for trajectory in sorted(parts, key=lambda t: t.points[0].t)
            for point in trajectory.points
        ]
        for object_id, parts in sorted(grouped.items())
    }


async def _replay(service: AnnotationService, streams: Dict[str, List[SpatioTemporalPoint]]):
    async def emitter(object_id: str, points: List[SpatioTemporalPoint]) -> None:
        for point in points:
            await service.ingest(object_id, point)
        await service.close_object(object_id)

    async with service:
        await asyncio.gather(
            *(emitter(object_id, points) for object_id, points in streams.items())
        )
        await service.drain()


class _Leg:
    """One benchmark configuration: its context, best timing, and parity data."""

    def __init__(self, name: str, config: PipelineConfig, sources, wal_events: int = 0):
        self.name = name
        self.config = config
        self.context = GeoContext.build(sources, config)
        self.wal_events = wal_events
        self.best_elapsed = float("inf")
        self.best_p99 = float("inf")
        self.stats: Dict[str, float] = {}
        self.results: list = []

    def run_once(self, streams: Dict[str, List[SpatioTemporalPoint]], total: int) -> None:
        service = AnnotationService(self.context)
        started = time.perf_counter()
        asyncio.run(_replay(service, streams))
        elapsed = time.perf_counter() - started
        assert service.dropped_events == 0 and service.stats.errors == 0, self.name
        if self.wal_events:
            assert service.stats.wal_appended == self.wal_events, self.name
        latency = service.metrics.ingest_latency
        # The latency gate uses the best p99 seen over all rounds — like the
        # elapsed best-of, one slow round must not fail a fairness assertion.
        self.best_p99 = min(self.best_p99, latency.percentile(99.0))
        if elapsed < self.best_elapsed:
            self.best_elapsed = elapsed
            self.stats = {
                "elapsed_s": elapsed,
                "events_per_s": total / elapsed,
                "p50_s": latency.percentile(50.0),
                "p99_s": latency.percentile(99.0),
                "backpressure_waits": float(service.stats.backpressure_waits),
                "results": float(len(service.results)),
            }
        self.results = service.results


def test_service_throughput(benchmark, car_dataset, annotation_sources, tmp_path):
    streams = _object_streams(car_dataset.trajectories)
    total_events = sum(len(points) for points in streams.values())
    base = PipelineConfig.for_vehicles()
    cores = effective_cpu_count()

    legs = [
        _Leg("thread-1", _service_config(base, 1, "thread"), annotation_sources),
        _Leg("thread-2", _service_config(base, 2, "thread"), annotation_sources),
        _Leg("thread-4", _service_config(base, 4, "thread"), annotation_sources),
        _Leg("process-1", _service_config(base, 1, "process"), annotation_sources),
        _Leg("process-4", _service_config(base, 4, "process"), annotation_sources),
        _Leg(
            "thread-1+wal",
            _service_config(base, 1, "thread", journal_dir=str(tmp_path / "wal")),
            annotation_sources,
            wal_events=total_events + len(streams),
        ),
    ]
    by_name = {leg.name: leg for leg in legs}

    def run_all():
        # Untimed warmup primes imports, page cache and the spawn machinery
        # so round 1 of the alternating protocol starts from a steady state.
        _Leg("warmup", _service_config(base, 1, "thread"), annotation_sources).run_once(
            streams, total_events
        )
        for _ in range(ROUNDS):
            for leg in legs:
                leg.run_once(streams, total_events)
        return {leg.name: leg.best_elapsed for leg in legs}

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # Publish nothing we cannot prove: every leg's drained output must be
    # canonically identical to the sequential pipeline on the same streams.
    reference_leg = by_name["thread-1"]
    pipeline = SeMiTriPipeline(reference_leg.config)
    sequential = []
    for object_id, points in streams.items():
        raw = pipeline.ingest_stream(points, object_id=object_id)
        sequential.extend(
            pipeline.annotate_many(
                raw, annotation_sources, annotators=reference_leg.context.annotators
            )
        )
    by_sequential = {r.trajectory.trajectory_id: r for r in sequential}
    for leg in legs:
        by_service = {r.trajectory.trajectory_id: r for r in leg.results}
        assert set(by_service) == set(by_sequential), leg.name
        for trajectory_id, expected in by_sequential.items():
            assert canonical_bytes([by_service[trajectory_id]]) == canonical_bytes(
                [expected]
            ), (leg.name, trajectory_id)

    # Multi-shard fairness (the p99 blow-up fix): adding a shard must not
    # multiply tail latency.  5 ms of slack absorbs histogram granularity on
    # sub-millisecond tails; the historical regression was 10x at 25 ms.
    p99_1 = by_name["thread-1"].best_p99
    p99_2 = by_name["thread-2"].best_p99
    assert p99_2 <= 2.0 * p99_1 + 0.005, (
        f"2-shard p99 {p99_2 * 1e3:.2f} ms blew past 2x the "
        f"1-shard p99 {p99_1 * 1e3:.2f} ms"
    )

    # Process scaling: a hard promise only where the cores exist.  Below the
    # threshold the ratio is recorded in the sidecar but not asserted.
    process_ratio = (
        by_name["process-4"].stats["events_per_s"]
        / by_name["process-1"].stats["events_per_s"]
    )
    if cores >= SCALING_GATE_MIN_CORES:
        assert process_ratio >= SCALING_GATE_RATIO, (
            f"process transport scaled only {process_ratio:.2f}x from 1 to 4 "
            f"shards on {cores} effective cores (need {SCALING_GATE_RATIO}x)"
        )

    wal_leg = by_name["thread-1+wal"]
    wal_overhead_pct = (
        wal_leg.best_elapsed / by_name["thread-1"].best_elapsed - 1.0
    ) * 100.0

    rows = [
        [
            leg.name,
            total_events,
            f"{leg.stats['events_per_s']:,.0f}",
            f"{leg.stats['p50_s'] * 1e3:.2f}",
            f"{leg.stats['p99_s'] * 1e3:.2f}",
            int(leg.stats["backpressure_waits"]),
            int(leg.stats["results"]),
        ]
        for leg in legs
    ]
    text = render_table(
        ["leg", "events", "events/s", "p50 ms", "p99 ms", "bp waits", "results"],
        rows,
        title=(
            f"Service ingest throughput — {len(streams)} emitters, "
            f"{cores} effective cores, best of {ROUNDS} alternating rounds "
            "(output parity asserted)"
        ),
    )
    save_result(
        "service_throughput",
        text,
        data={
            "emitters": len(streams),
            "total_events": total_events,
            "effective_cores": cores,
            "gated_shards": GATED_SHARDS,
            "rounds": ROUNDS,
            "legs": {leg.name: dict(leg.stats) for leg in legs},
            "process_scaling_ratio_4v1": process_ratio,
            "process_scaling_gated": cores >= SCALING_GATE_MIN_CORES,
            # Journaling tax: single-shard thread run with the crash-safe
            # ingest WAL (``service.journal_dir`` set, default fsync batch).
            # Informational — the gated metric stays the journal-off cost.
            "wal_overhead_pct": wal_overhead_pct,
        },
        metrics={
            f"events_per_s_{GATED_SHARDS}shard": by_name["thread-1"].stats[
                "events_per_s"
            ],
        },
    )
