"""Streaming engine throughput and per-event latency versus the batch pipeline.

Feeds the car and people datasets event-by-event through the
:class:`StreamingAnnotationEngine` and reports, per dataset:

* events/second for the streaming engine and for batch ``annotate_many`` on
  the same trajectories (the batch number divides total wall time by the
  total number of GPS events);
* p50 and p99 latency of a single ``ingest`` call — most calls only buffer
  the event, while every ``micro_batch_size``-th call pays for a processing
  pass, which is exactly the latency profile an online service exhibits.

Both paths run the full annotation stack (region + line + point) without
persistence, so the comparison isolates computation.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Tuple

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.core import PipelineConfig, SeMiTriPipeline
from repro.core.config import StreamingConfig, TrajectoryIdentificationConfig
from repro.streaming import StreamingAnnotationEngine


def _streaming_config(base: PipelineConfig) -> PipelineConfig:
    return dataclasses.replace(
        base,
        identification=TrajectoryIdentificationConfig(
            max_time_gap=1e15, max_distance_gap=1e15, min_points=1
        ),
        streaming=StreamingConfig(micro_batch_size=64, apply_cleaning=False),
    )


def _percentile(ordered: List[float], percentile: float) -> float:
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, int(round((percentile / 100.0) * (len(ordered) - 1))))
    return ordered[rank]


def _run_streaming(trajectories, sources, config) -> Tuple[int, float, List[float], int]:
    engine = StreamingAnnotationEngine(sources, config=config)
    latencies: List[float] = []
    results = 0
    started = time.perf_counter()
    for trajectory in trajectories:
        object_id = trajectory.object_id
        for point in trajectory.points:
            ingest_started = time.perf_counter()
            results += len(engine.ingest(object_id, point))
            latencies.append(time.perf_counter() - ingest_started)
        results += len(engine.close_object(object_id))
    elapsed = time.perf_counter() - started
    return len(latencies), elapsed, latencies, results


def test_streaming_throughput(benchmark, car_dataset, people_dataset, annotation_sources):
    cases = [
        ("car", PipelineConfig.for_vehicles(), car_dataset.trajectories),
        ("people", PipelineConfig.for_people(), people_dataset.all_trajectories),
    ]
    rows = []
    measured = {}

    def run_all():
        for name, base_config, trajectories in cases:
            config = _streaming_config(base_config)
            events, stream_elapsed, latencies, stream_results = _run_streaming(
                trajectories, annotation_sources, config
            )
            batch_started = time.perf_counter()
            batch_results = SeMiTriPipeline(config).annotate_many(
                trajectories, annotation_sources
            )
            batch_elapsed = time.perf_counter() - batch_started
            measured[name] = (events, stream_elapsed, latencies, stream_results, batch_elapsed, len(batch_results))
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    data = {}
    for name, base_config, trajectories in cases:
        events, stream_elapsed, latencies, stream_results, batch_elapsed, batch_count = measured[name]
        ordered = sorted(latencies)
        p50 = _percentile(ordered, 50.0)
        p99 = _percentile(ordered, 99.0)
        rows.append(
            [
                name,
                events,
                f"{events / stream_elapsed:,.0f}",
                f"{events / batch_elapsed:,.0f}",
                f"{p50 * 1e6:.1f}",
                f"{p99 * 1e6:.1f}",
            ]
        )
        data[name] = {
            "events": events,
            "stream_events_per_s": events / stream_elapsed,
            "batch_events_per_s": events / batch_elapsed,
            "p50_us_per_event": p50 * 1e6,
            "p99_us_per_event": p99 * 1e6,
        }
        # Streaming must produce exactly the batch result count, and
        # micro-batching must keep the median ingest below the mean per-event
        # cost (most events only buffer; the pass cost lands in the tail).
        assert stream_results == batch_count
        assert p50 < stream_elapsed / events

    text = render_table(
        ["dataset", "events", "stream ev/s", "batch ev/s", "p50 us/event", "p99 us/event"],
        rows,
        title="Streaming engine throughput vs batch pipeline",
    )
    metrics = {}
    for name, values in data.items():
        metrics[f"{name}_stream_events_per_s"] = round(values["stream_events_per_s"], 1)
        metrics[f"{name}_batch_events_per_s"] = round(values["batch_events_per_s"], 1)
    save_result("streaming_throughput", text, data=data, metrics=metrics)
