"""Backend parity: the numpy compute backend reproduces the scalar oracle.

For every seed dataset the pipeline runs once with
``compute.backend="python"`` (the scalar reference) and once with
``compute.backend="numpy"`` (the vectorized kernels), across all three
execution modes — sequential ``annotate_many``, the streaming engine and the
parallel runner.  The canonical bytes of :mod:`repro.parallel.canonical`
must agree **exactly**: the flag/distance kernels are bit-equal by
construction, the ``exp``-dependent kernels only feed discrete decisions
(matched segment ids, decoded categories), and both held on every seed
dataset when this suite was written.  Any future divergence is a real
regression, not float noise.
"""

from __future__ import annotations

import dataclasses
from typing import List

import pytest

from repro.core import AnnotationSources, PipelineConfig, PipelineResult, SeMiTriPipeline
from repro.core.config import (
    ComputeConfig,
    StopMoveConfig,
    StreamingConfig,
    TrajectoryIdentificationConfig,
)
from repro.core.errors import ConfigurationError
from repro.parallel import ParallelAnnotationRunner, canonical_bytes
from repro.parallel.canonical import canonical_result
from repro.streaming import StreamingAnnotationEngine


def _canonical_without_ids(results: List[PipelineResult]) -> List[dict]:
    """Canonical form minus trajectory ids.

    The streaming engine numbers sealed trajectories per object
    (``<object>-t0`` …) instead of keeping the input ids, so the
    streaming-vs-batch comparison — like the pre-existing online/batch parity
    suite — is on everything *computed*: points, episodes and annotations.
    """
    rendered = []
    for result in results:
        payload = canonical_result(result)
        payload.pop("trajectory_id")
        rendered.append(payload)
    return rendered


def _with_backend(config: PipelineConfig, backend: str) -> PipelineConfig:
    return dataclasses.replace(config, compute=ComputeConfig(backend=backend))


def _streaming_friendly(config: PipelineConfig) -> PipelineConfig:
    """Neutralise splitting/discarding so batch and engine see the same work."""
    return dataclasses.replace(
        config,
        identification=TrajectoryIdentificationConfig(
            max_time_gap=1e15, max_distance_gap=1e15, min_points=1
        ),
        streaming=StreamingConfig(micro_batch_size=8, apply_cleaning=False),
    )


def _dataset(name, taxi_dataset, car_dataset, people_dataset):
    return {
        "taxi": (taxi_dataset.trajectories, PipelineConfig.for_vehicles()),
        "car": (car_dataset.trajectories, PipelineConfig.for_vehicles()),
        "people": (people_dataset.all_trajectories, PipelineConfig.for_people()),
    }[name]


def _run_engine(trajectories, sources, config) -> List[PipelineResult]:
    engine = StreamingAnnotationEngine(sources, config=config)
    results: List[PipelineResult] = []
    for trajectory in trajectories:
        for point in trajectory.points:
            results.extend(engine.ingest(trajectory.object_id, point))
        results.extend(engine.close_object(trajectory.object_id))
    return results


@pytest.mark.parametrize("dataset_name", ["taxi", "car", "people"])
def test_sequential_backend_parity(
    dataset_name, taxi_dataset, car_dataset, people_dataset, annotation_sources
):
    """annotate_many: numpy backend is byte-identical to the scalar oracle."""
    trajectories, base = _dataset(dataset_name, taxi_dataset, car_dataset, people_dataset)
    scalar = SeMiTriPipeline(_with_backend(base, "python")).annotate_many(
        trajectories, annotation_sources
    )
    vectorized = SeMiTriPipeline(_with_backend(base, "numpy")).annotate_many(
        trajectories, annotation_sources
    )
    assert canonical_bytes(vectorized) == canonical_bytes(scalar)


@pytest.mark.parametrize("policy", ["velocity", "density", "hybrid"])
def test_sequential_backend_parity_all_stop_policies(policy, car_dataset, annotation_sources):
    """Every stop policy's flag kernels agree across backends."""
    base = dataclasses.replace(
        PipelineConfig.for_vehicles(),
        stop_move=StopMoveConfig(
            policy=policy, speed_threshold=1.5, min_stop_duration=150.0, density_radius=60.0
        ),
    )
    scalar = SeMiTriPipeline(_with_backend(base, "python")).annotate_many(
        car_dataset.trajectories, annotation_sources
    )
    vectorized = SeMiTriPipeline(_with_backend(base, "numpy")).annotate_many(
        car_dataset.trajectories, annotation_sources
    )
    assert canonical_bytes(vectorized) == canonical_bytes(scalar)


@pytest.mark.parametrize("dataset_name", ["taxi", "car", "people"])
def test_streaming_backend_parity(
    dataset_name, taxi_dataset, car_dataset, people_dataset, annotation_sources
):
    """The numpy streaming engine equals the scalar sequential reference."""
    trajectories, base = _dataset(dataset_name, taxi_dataset, car_dataset, people_dataset)
    scalar_config = _streaming_friendly(_with_backend(base, "python"))
    numpy_config = _streaming_friendly(_with_backend(base, "numpy"))
    scalar = SeMiTriPipeline(scalar_config).annotate_many(trajectories, annotation_sources)
    streamed = _run_engine(trajectories, annotation_sources, numpy_config)
    assert _canonical_without_ids(streamed) == _canonical_without_ids(scalar)


@pytest.mark.parametrize("dataset_name", ["taxi", "car", "people"])
def test_parallel_backend_parity(
    dataset_name, taxi_dataset, car_dataset, people_dataset, annotation_sources
):
    """The numpy parallel runner equals the scalar sequential reference."""
    trajectories, base = _dataset(dataset_name, taxi_dataset, car_dataset, people_dataset)
    scalar = SeMiTriPipeline(_with_backend(base, "python")).annotate_many(
        trajectories, annotation_sources
    )
    runner = ParallelAnnotationRunner(
        config=_with_backend(base, "numpy"), workers=2, executor="serial"
    )
    parallel = runner.annotate_many(trajectories, annotation_sources)
    assert canonical_bytes(parallel) == canonical_bytes(scalar)


def test_python_backend_is_selectable_end_to_end(car_dataset, annotation_sources):
    """The scalar oracle stays a first-class backend (not just a test prop)."""
    config = _with_backend(PipelineConfig.for_vehicles(), "python")
    pipeline = SeMiTriPipeline(config)
    results = pipeline.annotate_many(car_dataset.trajectories, annotation_sources)
    assert results and all(result.episodes for result in results)


def test_unknown_backend_rejected():
    with pytest.raises(ConfigurationError):
        ComputeConfig(backend="fortran")
