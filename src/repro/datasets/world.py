"""The synthetic world: landuse grid, road network and POI set.

This module builds the geographic substrate every experiment runs on.  It
substitutes the paper's third-party sources:

* the **landuse grid** plays the role of the Swisstopo landuse data: square
  cells of 100 m carrying one of the 17 sub-categories of Figure 4, laid out
  as a stylised city (an urban core of building areas with a commercial
  centre, transport corridors along the arterial roads, a recreation park, a
  lake and a river on the east side, forest to the north and agricultural
  land around);
* the **road network** plays the role of the OpenStreetMap / Seattle road
  data: a street grid in the urban core, two highways crossing the whole
  extent, a metro line with stations connected to the street grid and
  footpaths through the park;
* the **POI set** plays the role of the Milan POI registry: points of
  interest concentrated around the commercial centre with the same five
  top-categories and a category mix close to the Milan proportions.

Everything is deterministic given the configuration seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.places import PointOfInterest, RegionOfInterest
from repro.geometry.grid import GridSpec
from repro.geometry.primitives import BoundingBox, Point
from repro.lines.road_network import RoadNetwork, make_road_segment
from repro.points.poi import PoiSource
from repro.regions.sources import RegionSource

#: Category mix of the Milan POI dataset (Section 4.3 / Figure 5).
MILAN_POI_MIX: Dict[str, float] = {
    "services": 4339 / 39772,
    "feedings": 7036 / 39772,
    "item sale": 12510 / 39772,
    "person life": 15371 / 39772,
    "unknown": 516 / 39772,
}


@dataclass(frozen=True)
class WorldConfig:
    """Parameters of the synthetic world."""

    size: float = 8000.0
    """Edge length of the square world, in metres."""

    landuse_cell_size: float = 100.0
    """Edge length of the landuse cells (100 m, as in Swisstopo)."""

    road_spacing: float = 400.0
    """Spacing of the urban street grid."""

    poi_count: int = 2000
    """Number of points of interest to generate."""

    seed: int = 7
    """Seed of the deterministic random generator."""

    @property
    def core_min(self) -> float:
        """Lower bound of the urban core on both axes."""
        return self.size * 0.25

    @property
    def core_max(self) -> float:
        """Upper bound of the urban core on both axes."""
        return self.size * 0.75

    @property
    def commercial_center(self) -> Point:
        """Centre of the commercial district (densest POI area)."""
        return Point(self.size / 2.0, self.size / 2.0)


class SyntheticWorld:
    """Deterministic synthetic geography (landuse + roads + POIs)."""

    def __init__(self, config: WorldConfig = WorldConfig()):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._landuse_regions: Optional[List[RegionOfInterest]] = None
        self._region_source: Optional[RegionSource] = None
        self._road_network: Optional[RoadNetwork] = None
        self._poi_source: Optional[PoiSource] = None

    # ------------------------------------------------------------------ bounds
    @property
    def bounds(self) -> BoundingBox:
        """Bounding box of the world."""
        return BoundingBox(0.0, 0.0, self.config.size, self.config.size)

    # ----------------------------------------------------------------- landuse
    def landuse_category_at(self, point: Point) -> str:
        """Landuse sub-category code of the cell containing ``point``."""
        return self._category_for_cell_center(point.x, point.y)

    def landuse_regions(self) -> List[RegionOfInterest]:
        """One rectangular region of interest per landuse cell."""
        if self._landuse_regions is not None:
            return self._landuse_regions
        cell = self.config.landuse_cell_size
        # The grid is offset by half a cell so that roads (which run along
        # multiples of the road spacing) pass through cell interiors rather
        # than along cell boundaries; otherwise GPS noise makes points near a
        # road flip between the two adjacent cells at every fix.
        grid = GridSpec.covering(
            BoundingBox(
                -cell / 2.0, -cell / 2.0, self.config.size + cell / 2.0, self.config.size + cell / 2.0
            ),
            cell,
        )
        regions: List[RegionOfInterest] = []
        for col, row in grid.all_cells():
            box = grid.cell_bounds((col, row))
            center = box.center
            category = self._category_for_cell_center(center.x, center.y)
            regions.append(
                RegionOfInterest(
                    place_id=f"cell-{col}-{row}",
                    name=f"landuse cell ({col}, {row})",
                    category=category,
                    extent=box,
                )
            )
        self._landuse_regions = regions
        return regions

    def region_source(self) -> RegionSource:
        """The landuse cells wrapped in an indexed region source."""
        if self._region_source is None:
            self._region_source = RegionSource(self.landuse_regions(), name="landuse")
        return self._region_source

    def _category_for_cell_center(self, x: float, y: float) -> str:
        size = self.config.size
        core_min, core_max = self.config.core_min, self.config.core_max

        # Water bodies on the east side.
        if x >= size * 0.9 and y <= size * 0.2:
            return "4.13"  # lake
        if size * 0.875 <= x < size * 0.9:
            return "4.14"  # river

        # Forested north edge, with a brush/wood transition band.
        if y >= size * 0.9:
            return "3.10" if int(x // self.config.landuse_cell_size) % 7 else "3.11"
        if size * 0.85 <= y < size * 0.9:
            return "3.12"

        # Glacier / bare land corner and unproductive western fringe.
        if x <= size * 0.05 and y >= size * 0.8:
            return "4.17"
        if x <= size * 0.03:
            return "4.16"
        if y <= size * 0.03:
            return "4.15"

        # Transport corridors: highway rows/columns and urban arterials.
        if self._is_transport_cell(x, y):
            return "1.3"

        # Urban core.
        if core_min <= x <= core_max and core_min <= y <= core_max:
            center = self.config.commercial_center
            if abs(x - center.x) <= size * 0.05 and abs(y - center.y) <= size * 0.05:
                return "1.1"  # commercial / industrial centre
            if (
                size * 0.60 <= x <= size * 0.70
                and size * 0.30 <= y <= size * 0.40
            ):
                return "1.5"  # recreation park
            if size * 0.28 <= x <= size * 0.32 and size * 0.60 <= y <= size * 0.64:
                return "1.4"  # special urban block
            return "1.2"  # building areas

        # Suburban ring and countryside.
        if y <= size * 0.12 or x <= size * 0.12:
            return "2.9" if (x + y) < size * 0.18 else "2.8"
        cell_index = int(x // self.config.landuse_cell_size) + int(
            y // self.config.landuse_cell_size
        )
        if cell_index % 11 == 0:
            return "2.6"
        return "2.7" if cell_index % 2 == 0 else "2.8"

    def _is_transport_cell(self, x: float, y: float) -> bool:
        size = self.config.size
        half_cell = self.config.landuse_cell_size / 2.0
        highway_positions = (size * 0.125, size * 0.125)
        if abs(y - highway_positions[0]) <= half_cell or abs(x - highway_positions[1]) <= half_cell:
            return True
        core_min, core_max = self.config.core_min, self.config.core_max
        if not (core_min - half_cell <= x <= core_max + half_cell):
            in_core_x = False
        else:
            in_core_x = True
        in_core_y = core_min - half_cell <= y <= core_max + half_cell
        if not (in_core_x and in_core_y):
            return False
        arterial_spacing = self.config.road_spacing * 2.0
        offset_x = (x - core_min) % arterial_spacing
        offset_y = (y - core_min) % arterial_spacing
        near_x = min(offset_x, arterial_spacing - offset_x) <= half_cell
        near_y = min(offset_y, arterial_spacing - offset_y) <= half_cell
        return near_x or near_y

    # ------------------------------------------------------------------- roads
    def road_network(self) -> RoadNetwork:
        """Street grid + highways + metro line + park footpaths."""
        if self._road_network is not None:
            return self._road_network
        segments = []
        size = self.config.size
        spacing = self.config.road_spacing
        core_min, core_max = self.config.core_min, self.config.core_max

        # Urban street grid.
        xs = _frange(core_min, core_max, spacing)
        ys = _frange(core_min, core_max, spacing)
        for x in xs:
            for y_start, y_end in zip(ys, ys[1:]):
                segments.append(
                    make_road_segment(
                        place_id=f"street-v-{int(x)}-{int(y_start)}",
                        name=f"Vertical street {int(x)}",
                        start=Point(x, y_start),
                        end=Point(x, y_end),
                        road_type="road",
                    )
                )
        for y in ys:
            for x_start, x_end in zip(xs, xs[1:]):
                segments.append(
                    make_road_segment(
                        place_id=f"street-h-{int(x_start)}-{int(y)}",
                        name=f"Horizontal street {int(y)}",
                        start=Point(x_start, y),
                        end=Point(x_end, y),
                        road_type="road",
                    )
                )

        # Two highways crossing the whole extent.
        highway_y = size * 0.125
        highway_x = size * 0.125
        for x_start, x_end in zip(_frange(0, size, spacing), _frange(spacing, size + spacing, spacing)):
            if x_end > size:
                break
            segments.append(
                make_road_segment(
                    place_id=f"highway-h-{int(x_start)}",
                    name="East-west highway",
                    start=Point(x_start, highway_y),
                    end=Point(x_end, highway_y),
                    road_type="highway",
                )
            )
        for y_start, y_end in zip(_frange(0, size, spacing), _frange(spacing, size + spacing, spacing)):
            if y_end > size:
                break
            segments.append(
                make_road_segment(
                    place_id=f"highway-v-{int(y_start)}",
                    name="North-south highway",
                    start=Point(highway_x, y_start),
                    end=Point(highway_x, y_end),
                    road_type="highway",
                )
            )

        # Highway access ramps connecting the grid corners to the highways.
        segments.append(
            make_road_segment(
                place_id="ramp-west",
                name="West access ramp",
                start=Point(highway_x, core_min),
                end=Point(core_min, core_min),
                road_type="road",
            )
        )
        segments.append(
            make_road_segment(
                place_id="ramp-south",
                name="South access ramp",
                start=Point(core_min, highway_y),
                end=Point(core_min, core_min),
                road_type="road",
            )
        )

        # Metro line: horizontal at mid-height, offset from the street grid,
        # with stations every two spacings connected to the nearest street
        # crossing by short footpaths.
        metro_y = size / 2.0 + spacing / 2.0
        street_y_near_metro = core_min + round((metro_y - core_min) / spacing) * spacing
        metro_xs = _frange(core_min, core_max, spacing)
        for x_start, x_end in zip(metro_xs, metro_xs[1:]):
            segments.append(
                make_road_segment(
                    place_id=f"metro-{int(x_start)}",
                    name="Metro line M1",
                    start=Point(x_start, metro_y),
                    end=Point(x_end, metro_y),
                    road_type="metro_line",
                )
            )
        for index, x in enumerate(metro_xs):
            if index % 2 == 0:
                segments.append(
                    make_road_segment(
                        place_id=f"station-access-{int(x)}",
                        name=f"Metro station access {int(x)}",
                        start=Point(x, metro_y),
                        end=Point(x, street_y_near_metro),
                        road_type="path_way",
                    )
                )

        # Footpaths through the recreation park, offset from the street grid and
        # connected to it by a short access path.
        park_min_x, park_max_x = size * 0.60, size * 0.70
        park_y = size * 0.35 - spacing / 4.0
        path_xs = _frange(park_min_x, park_max_x, spacing / 2.0)
        for x_start, x_end in zip(path_xs, path_xs[1:]):
            segments.append(
                make_road_segment(
                    place_id=f"path-{int(x_start)}",
                    name="Park footpath",
                    start=Point(x_start, park_y),
                    end=Point(x_end, park_y),
                    road_type="path_way",
                )
            )
        access_x = core_min + round((park_min_x - core_min) / spacing) * spacing
        access_y = core_min + round((park_y - core_min) / spacing) * spacing
        segments.append(
            make_road_segment(
                place_id="path-access",
                name="Park footpath access",
                start=Point(park_min_x, park_y),
                end=Point(access_x, access_y),
                road_type="path_way",
            )
        )
        self._road_network = RoadNetwork(segments, name="synthetic-city")
        return self._road_network

    # -------------------------------------------------------------------- POIs
    def generate_pois(self, count: Optional[int] = None) -> List[PointOfInterest]:
        """Points of interest with the Milan category mix, clustered downtown."""
        total = count if count is not None else self.config.poi_count
        rng = np.random.default_rng(self.config.seed + 1)
        categories = list(MILAN_POI_MIX.keys())
        probabilities = np.array([MILAN_POI_MIX[category] for category in categories])
        probabilities = probabilities / probabilities.sum()
        center = self.config.commercial_center
        core_min, core_max = self.config.core_min, self.config.core_max
        size = self.config.size

        pois: List[PointOfInterest] = []
        for index in range(total):
            category = categories[int(rng.choice(len(categories), p=probabilities))]
            mixture = rng.random()
            if mixture < 0.55:
                x = float(rng.normal(center.x, size * 0.06))
                y = float(rng.normal(center.y, size * 0.06))
            elif mixture < 0.90:
                x = float(rng.uniform(core_min, core_max))
                y = float(rng.uniform(core_min, core_max))
            else:
                x = float(rng.uniform(size * 0.15, size * 0.85))
                y = float(rng.uniform(size * 0.15, size * 0.85))
            x = min(max(x, 0.0), size)
            y = min(max(y, 0.0), size)
            pois.append(
                PointOfInterest(
                    place_id=f"poi-{index}",
                    name=f"{category} #{index}",
                    category=category,
                    location=Point(x, y),
                )
            )
        return pois

    def poi_source(self) -> PoiSource:
        """The generated POIs wrapped in an indexed source."""
        if self._poi_source is None:
            self._poi_source = PoiSource(self.generate_pois(), name="synthetic-pois")
        return self._poi_source

    # ---------------------------------------------------------------- sampling
    def random_core_location(self, rng: np.random.Generator) -> Point:
        """A uniform random location inside the urban core."""
        return Point(
            float(rng.uniform(self.config.core_min, self.config.core_max)),
            float(rng.uniform(self.config.core_min, self.config.core_max)),
        )

    def random_home(self, rng: np.random.Generator) -> Point:
        """A residential location: in the core but away from the commercial centre."""
        while True:
            location = self.random_core_location(rng)
            if location.distance_to(self.config.commercial_center) > self.config.size * 0.12:
                return location

    def random_office(self, rng: np.random.Generator) -> Point:
        """A work location near the commercial centre."""
        center = self.config.commercial_center
        return Point(
            float(rng.normal(center.x, self.config.size * 0.05)),
            float(rng.normal(center.y, self.config.size * 0.05)),
        )


def _frange(start: float, stop: float, step: float) -> List[float]:
    """Inclusive floating-point range with a fixed step."""
    values: List[float] = []
    count = int(round((stop - start) / step))
    for index in range(count + 1):
        values.append(start + index * step)
    return values
