"""Kernel-level parity: each vectorized kernel against its scalar oracle.

Arithmetic-only kernels (distances, speeds, projections, bounding-box masks,
scan runs) are asserted **bit-for-bit** equal to the scalar loops on random
inputs; ``exp``-based kernels (Gaussian weights and densities) are asserted
within the documented 1-ulp-per-element tolerance, plus exact agreement on
their branch structure (zero outside the radius).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.points import SpatioTemporalPoint
from repro.geometry.distance import (
    euclidean_distance,
    perpendicular_distance,
    point_segment_distance,
)
from repro.geometry.kernels import gaussian_2d_density, gaussian_kernel_weight
from repro.geometry.primitives import Point, Segment
from repro.geometry.projection import LocalProjector
from repro.geometry.vectorized import (
    consecutive_distances,
    consecutive_speeds,
    distances_to_point,
    equirectangular_to_planar,
    gaussian_2d_densities,
    gaussian_kernel_weights,
    leading_run_within_radius,
    pairwise_distances,
    perpendicular_distances,
    planar_to_equirectangular,
    point_segment_distances,
    points_in_bbox,
)
from repro.preprocessing.features import compute_motion_features


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


def _random_columns(rng, n, low=-5000.0, high=5000.0):
    return rng.uniform(low, high, size=n), rng.uniform(low, high, size=n)


class TestDistanceKernels:
    def test_consecutive_distances_bitwise(self, rng):
        xs, ys = _random_columns(rng, 500)
        expected = [
            euclidean_distance(Point(xs[i], ys[i]), Point(xs[i + 1], ys[i + 1]))
            for i in range(len(xs) - 1)
        ]
        assert consecutive_distances(xs, ys).tolist() == expected

    def test_distances_to_point_bitwise(self, rng):
        xs, ys = _random_columns(rng, 500)
        center = Point(12.5, -42.0)
        expected = [euclidean_distance(Point(x, y), center) for x, y in zip(xs, ys)]
        assert distances_to_point(xs, ys, center.x, center.y).tolist() == expected

    def test_pairwise_distances_bitwise(self, rng):
        axs, ays = _random_columns(rng, 40)
        bxs, bys = _random_columns(rng, 25)
        matrix = pairwise_distances(axs, ays, bxs, bys)
        assert matrix.shape == (40, 25)
        for i in (0, 7, 39):
            for j in (0, 11, 24):
                assert matrix[i, j] == euclidean_distance(
                    Point(axs[i], ays[i]), Point(bxs[j], bys[j])
                )

    def test_point_segment_distances_bitwise(self, rng):
        axs, ays = _random_columns(rng, 300)
        bxs, bys = _random_columns(rng, 300)
        # Include degenerate (zero-length) segments.
        bxs[::50] = axs[::50]
        bys[::50] = ays[::50]
        point = Point(123.0, -321.0)
        expected = [
            point_segment_distance(point, Segment(Point(ax, ay), Point(bx, by)))
            for ax, ay, bx, by in zip(axs, ays, bxs, bys)
        ]
        got = point_segment_distances(point.x, point.y, axs, ays, bxs, bys)
        assert got.tolist() == expected

    def test_perpendicular_distances_bitwise(self, rng):
        axs, ays = _random_columns(rng, 200)
        bxs, bys = _random_columns(rng, 200)
        point = Point(-77.0, 88.0)
        expected = [
            perpendicular_distance(point, Segment(Point(ax, ay), Point(bx, by)))
            for ax, ay, bx, by in zip(axs, ays, bxs, bys)
        ]
        assert perpendicular_distances(point.x, point.y, axs, ays, bxs, bys).tolist() == expected


class TestSpeedKernel:
    def test_consecutive_speeds_matches_motion_features(self, rng):
        xs, ys = _random_columns(rng, 300)
        ts = np.cumsum(rng.uniform(0.0, 20.0, size=300))  # includes zero gaps
        points = [SpatioTemporalPoint(x, y, t) for x, y, t in zip(xs, ys, ts)]
        expected = compute_motion_features(points).speeds
        assert consecutive_speeds(xs, ys, ts).tolist() == expected

    def test_degenerate_lengths(self):
        empty = np.empty(0)
        assert consecutive_speeds(empty, empty, empty).tolist() == []
        one = np.array([1.0])
        assert consecutive_speeds(one, one, one).tolist() == [0.0]


class TestGaussianKernels:
    def test_kernel_weights_branching_and_tolerance(self, rng):
        distances = rng.uniform(0.0, 200.0, size=400)
        bandwidth, radius = 50.0, 100.0
        got = gaussian_kernel_weights(distances, bandwidth, radius)
        for value, distance in zip(got, distances):
            expected = gaussian_kernel_weight(float(distance), bandwidth, radius)
            if distance >= radius:
                assert value == 0.0 == expected
            else:
                assert value == pytest.approx(expected, rel=1e-15)

    def test_kernel_weights_validation(self):
        with pytest.raises(ValueError):
            gaussian_kernel_weights(np.array([1.0]), bandwidth=0.0, radius=1.0)
        with pytest.raises(ValueError):
            gaussian_kernel_weights(np.array([1.0]), bandwidth=1.0, radius=0.0)

    def test_densities_tolerance(self, rng):
        mxs, mys = _random_columns(rng, 200, low=-300.0, high=300.0)
        sigmas = rng.uniform(5.0, 120.0, size=200)
        point = Point(10.0, -20.0)
        got = gaussian_2d_densities(point.x, point.y, mxs, mys, sigmas)
        for value, mx, my, sigma in zip(got, mxs, mys, sigmas):
            assert value == pytest.approx(
                gaussian_2d_density(point, Point(mx, my), float(sigma)), rel=1e-14
            )

    def test_densities_validation(self):
        with pytest.raises(ValueError):
            gaussian_2d_densities(0.0, 0.0, np.array([1.0]), np.array([1.0]), np.array([0.0]))


class TestBboxAndScans:
    def test_points_in_bbox(self, rng):
        xs, ys = _random_columns(rng, 500, low=0.0, high=100.0)
        mask = points_in_bbox(xs, ys, 25.0, 30.0, 75.0, 60.0)
        expected = [25.0 <= x <= 75.0 and 30.0 <= y <= 60.0 for x, y in zip(xs, ys)]
        assert mask.tolist() == expected

    @pytest.mark.parametrize("inclusive", [True, False])
    def test_leading_run_matches_scalar_walk(self, rng, inclusive):
        for trial in range(20):
            n = int(rng.integers(0, 120))
            xs = rng.uniform(0.0, 60.0, size=n)
            ys = rng.uniform(0.0, 60.0, size=n)
            center = Point(30.0, 30.0)
            radius = float(rng.uniform(5.0, 50.0))
            expected = 0
            for x, y in zip(xs, ys):
                distance = euclidean_distance(Point(x, y), center)
                within = distance <= radius if inclusive else distance < radius
                if not within:
                    break
                expected += 1
            got = leading_run_within_radius(
                xs, ys, center.x, center.y, radius, inclusive=inclusive
            )
            assert got == expected

    def test_leading_run_spans_chunk_boundaries(self):
        # A long all-within run exercises the geometric chunk growth.
        xs = np.zeros(5000)
        ys = np.zeros(5000)
        assert leading_run_within_radius(xs, ys, 0.0, 0.0, 1.0) == 5000


class TestProjectionKernels:
    def test_projection_round_trip_bitwise(self, rng):
        lons = rng.uniform(6.0, 7.0, size=300)
        lats = rng.uniform(46.0, 47.0, size=300)
        reference = Point(6.5, 46.5)
        projector = LocalProjector(reference)
        xs, ys = equirectangular_to_planar(lons, lats, reference.x, reference.y)
        for i in range(0, 300, 37):
            scalar = projector.to_planar(Point(lons[i], lats[i]))
            assert (xs[i], ys[i]) == (scalar.x, scalar.y)
        back_lons, back_lats = planar_to_equirectangular(xs, ys, reference.x, reference.y)
        for i in range(0, 300, 37):
            scalar = projector.to_lonlat(Point(xs[i], ys[i]))
            assert (back_lons[i], back_lats[i]) == (scalar.x, scalar.y)

    def test_polar_reference_rejected(self):
        with pytest.raises(ValueError):
            equirectangular_to_planar(np.array([0.0]), np.array([0.0]), 0.0, 90.0)


class TestScalarVectorAgreementOnSqrtForm:
    def test_hypot_free_distance_formula(self):
        """The scalar oracle uses sqrt(dx*dx + dy*dy) — the numpy-replicable form."""
        a, b = Point(3.0, 4.0), Point(0.0, 0.0)
        assert a.distance_to(b) == 5.0 == euclidean_distance(a, b)
        xs, ys = np.array([3.0]), np.array([4.0])
        assert distances_to_point(xs, ys, 0.0, 0.0)[0] == 5.0
        values = np.random.default_rng(9).uniform(-1e4, 1e4, size=(64, 4))
        for ax, ay, bx, by in values:
            dx, dy = ax - bx, ay - by
            assert euclidean_distance(Point(ax, ay), Point(bx, by)) == math.sqrt(
                dx * dx + dy * dy
            )
