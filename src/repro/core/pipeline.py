"""The SeMiTri pipeline façade (Figure 2).

:class:`SeMiTriPipeline` wires the layers together: GPS cleaning, trajectory
identification, stop/move computation, and the three semantic annotation
layers (region, line, point), optionally persisting results in the semantic
trajectory store and recording per-stage latencies for the Figure 17
benchmark.

Annotation sources are supplied per call through :class:`AnnotationSources`;
layers whose source is missing are simply skipped, producing the partial
annotations the paper mentions for scenarios where third-party data is not
available (e.g. the sparse Lausanne POI set).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analytics.latency import LatencyProfile, StageTimer
from repro.core.config import PipelineConfig
from repro.core.episodes import Episode
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.core.trajectory import StructuredSemanticTrajectory
from repro.lines.annotator import LineAnnotator
from repro.lines.road_network import RoadNetwork
from repro.points.annotator import PointAnnotator
from repro.points.poi import PoiSource
from repro.preprocessing.cleaning import GpsCleaner
from repro.preprocessing.identification import TrajectoryIdentifier
from repro.preprocessing.stops import StopMoveDetector
from repro.regions.annotator import RegionAnnotator
from repro.regions.sources import RegionSource
from repro.store.store import SemanticTrajectoryStore


@dataclass
class AnnotationSources:
    """Third-party geographic sources available for annotation."""

    regions: Optional[RegionSource] = None
    road_network: Optional[RoadNetwork] = None
    pois: Optional[PoiSource] = None

    def available_layers(self) -> List[str]:
        """Names of the annotation layers that can run with these sources."""
        layers: List[str] = []
        if self.regions is not None:
            layers.append("region")
        if self.road_network is not None:
            layers.append("line")
        if self.pois is not None:
            layers.append("point")
        return layers


@dataclass
class LayerAnnotators:
    """The three layer annotators built once for a batch or stream of work.

    Building an annotator indexes its source (R-tree, grids, HMM), so both
    batch runs and the streaming engine construct this bundle once and reuse
    it for every trajectory.
    """

    region: Optional[RegionAnnotator] = None
    line: Optional[LineAnnotator] = None
    point: Optional[PointAnnotator] = None

    @classmethod
    def build(cls, sources: AnnotationSources, config: PipelineConfig) -> "LayerAnnotators":
        """Construct the annotators for every source that is available.

        The compute backend of ``config.compute`` is threaded into the line
        and point layers, whose per-point hot paths have vectorized kernels;
        the resolved index backend is threaded into all three layers so their
        spatial joins issue batch flat-index queries (``"flat"``) or scalar
        tree walks (``"tree"``).
        """
        backend = config.compute.backend
        index_backend = config.compute.resolved_index_backend
        return cls(
            region=(
                RegionAnnotator(sources.regions, config.region, index_backend=index_backend)
                if sources.regions is not None
                else None
            ),
            line=(
                LineAnnotator(
                    sources.road_network,
                    matching_config=config.map_matching,
                    transport_config=config.transport,
                    backend=backend,
                    index_backend=index_backend,
                )
                if sources.road_network is not None
                else None
            ),
            point=(
                PointAnnotator(
                    sources.pois, config.point, backend=backend, index_backend=index_backend
                )
                if sources.pois is not None
                else None
            ),
        )


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one raw trajectory."""

    trajectory: RawTrajectory
    episodes: List[Episode]
    region_trajectory: Optional[StructuredSemanticTrajectory] = None
    line_trajectories: List[StructuredSemanticTrajectory] = field(default_factory=list)
    point_trajectory: Optional[StructuredSemanticTrajectory] = None
    trajectory_category: Optional[str] = None
    latency: LatencyProfile = field(default_factory=LatencyProfile)

    @property
    def stops(self) -> List[Episode]:
        """Stop episodes of the trajectory."""
        return [episode for episode in self.episodes if episode.is_stop]

    @property
    def moves(self) -> List[Episode]:
        """Move episodes of the trajectory."""
        return [episode for episode in self.episodes if episode.is_move]

    def transport_modes(self) -> List[str]:
        """Transportation modes inferred for the move episodes, in order."""
        modes: List[str] = []
        for structured in self.line_trajectories:
            modes.extend(structured.mode_sequence())
        return modes


class SeMiTriPipeline:
    """End-to-end semantic annotation pipeline."""

    def __init__(
        self,
        config: PipelineConfig = PipelineConfig(),
        store: Optional[SemanticTrajectoryStore] = None,
    ):
        self._config = config
        self._store = store
        self._cleaner = GpsCleaner(config.cleaning, backend=config.compute.backend)
        self._identifier = TrajectoryIdentifier(config.identification)
        self._detector = StopMoveDetector(config.stop_move, backend=config.compute.backend)

    @property
    def config(self) -> PipelineConfig:
        """The pipeline configuration."""
        return self._config

    @property
    def store(self) -> Optional[SemanticTrajectoryStore]:
        """The semantic trajectory store, when persistence is enabled."""
        return self._store

    # --------------------------------------------------------------- ingestion
    def ingest_stream(
        self, points: Sequence[SpatioTemporalPoint], object_id: str = "unknown"
    ) -> List[RawTrajectory]:
        """Clean a GPS stream and split it into raw trajectories."""
        cleaned = self._cleaner.clean(points)
        return self._identifier.split(cleaned, object_id=object_id)

    def compute_episodes(self, trajectory: RawTrajectory) -> List[Episode]:
        """Segment one trajectory into stop/move episodes."""
        return self._detector.segment(trajectory)

    # -------------------------------------------------------------- annotation
    def build_annotators(self, sources: AnnotationSources) -> LayerAnnotators:
        """Construct the layer annotators for the available sources."""
        return LayerAnnotators.build(sources, self._config)

    def annotate(
        self,
        trajectory: RawTrajectory,
        sources: AnnotationSources,
        persist: bool = False,
    ) -> PipelineResult:
        """Run the full annotation pipeline on one raw trajectory.

        The region layer annotates both stops and moves, the line layer
        processes move episodes, the point layer processes stop episodes;
        layers without an available source are skipped.  When ``persist`` is
        true (and a store was supplied) the trajectory, its episodes and their
        annotations are written to the semantic trajectory store, and the
        storage time is included in the latency profile.
        """
        return self._annotate_one(trajectory, self.build_annotators(sources), persist)

    def annotate_many(
        self,
        trajectories: Sequence[RawTrajectory],
        sources: AnnotationSources,
        persist: bool = False,
        annotators: Optional[LayerAnnotators] = None,
    ) -> List[PipelineResult]:
        """Annotate several trajectories, reusing layer state across calls.

        Layer annotators are constructed once (building them involves indexing
        the sources), then applied to every trajectory; this is the batch mode
        the experiments of Section 5 use.  Passing a prebuilt ``annotators``
        bundle (e.g. from a :class:`~repro.parallel.GeoContext` snapshot)
        skips even that one-time construction, which is how repeated batch
        calls and the parallel runner amortise index building across calls.
        """
        if annotators is None:
            annotators = self.build_annotators(sources)
        return [self._annotate_one(trajectory, annotators, persist) for trajectory in trajectories]

    def annotate_prepared(
        self,
        trajectory: RawTrajectory,
        annotators: LayerAnnotators,
        persist: bool = False,
    ) -> PipelineResult:
        """Annotate one trajectory with an already-built annotator bundle.

        The entry point the sharded parallel runner uses inside worker
        processes: the bundle comes from the shared read-only
        :class:`~repro.parallel.GeoContext` snapshot, so no per-call index
        construction happens.
        """
        return self._annotate_one(trajectory, annotators, persist)

    def _annotate_one(
        self,
        trajectory: RawTrajectory,
        annotators: LayerAnnotators,
        persist: bool,
    ) -> PipelineResult:
        """Segment, annotate and optionally persist one raw trajectory.

        The single code path behind :meth:`annotate` and :meth:`annotate_many`;
        the streaming engine mirrors the same stage structure (and stage
        names) while computing the episodes incrementally.
        """
        timer = StageTimer()
        result = PipelineResult(trajectory=trajectory, episodes=[], latency=timer.profile)

        with timer.stage("compute_episode"):
            episodes = self._detector.segment(trajectory)
        result.episodes = episodes

        persist_enabled = persist and self._store is not None
        if persist_enabled:
            with timer.stage("store_episode"):
                self._store.save_trajectory(trajectory)

        if annotators.region is not None:
            with timer.stage("landuse_join"):
                result.region_trajectory = annotators.region.annotate_episodes(episodes)

        if annotators.line is not None:
            with timer.stage("map_match"):
                result.line_trajectories = annotators.line.annotate_episodes(
                    [episode for episode in episodes if episode.is_move]
                )

        stops = [episode for episode in episodes if episode.is_stop]
        if annotators.point is not None and stops:
            with timer.stage("poi_annotation"):
                result.point_trajectory = annotators.point.annotate_stops(stops)
                result.trajectory_category = annotators.point.classify_trajectory(stops)

        if persist_enabled:
            with timer.stage("store_match_result"):
                self._store.save_episodes(episodes)

        return result

    # ---------------------------------------------------------------- analysis
    @staticmethod
    def merge_latencies(results: Sequence[PipelineResult]) -> LatencyProfile:
        """Combine the latency profiles of several pipeline results."""
        merged = LatencyProfile()
        for result in results:
            merged.merge(result.latency)
        return merged
