"""Motion features: per-point speed, acceleration and heading.

The stop/move detector and the transportation-mode inference both consume the
spatio-temporal correlations present in the raw stream (velocity, density,
direction - Section 3.2, design principle 1).  This module computes those
features once per trajectory so every consumer shares the same definitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.core.points import RawTrajectory, SpatioTemporalPoint


@dataclass(frozen=True)
class MotionFeatures:
    """Per-point motion features aligned with a trajectory's GPS points.

    ``speeds[i]`` is the average speed between point ``i`` and ``i+1`` for the
    last point the previous value is repeated so the list lengths match the
    trajectory.  ``accelerations`` and ``headings`` follow the same alignment
    convention.
    """

    speeds: List[float]
    accelerations: List[float]
    headings: List[float]

    def __len__(self) -> int:
        return len(self.speeds)

    def mean_speed(self) -> float:
        """Mean of the per-point speeds (0 for empty trajectories)."""
        if not self.speeds:
            return 0.0
        return sum(self.speeds) / len(self.speeds)

    def max_speed(self) -> float:
        """Maximum per-point speed."""
        return max(self.speeds) if self.speeds else 0.0

    def mean_absolute_acceleration(self) -> float:
        """Mean of the absolute per-point accelerations."""
        if not self.accelerations:
            return 0.0
        return sum(abs(a) for a in self.accelerations) / len(self.accelerations)

    def speed_percentile(self, percentile: float) -> float:
        """Speed at the given percentile (0..100), using linear interpolation."""
        if not self.speeds:
            return 0.0
        if not (0.0 <= percentile <= 100.0):
            raise ValueError("percentile must lie in [0, 100]")
        ordered = sorted(self.speeds)
        if len(ordered) == 1:
            return ordered[0]
        rank = (percentile / 100.0) * (len(ordered) - 1)
        lower = int(math.floor(rank))
        upper = int(math.ceil(rank))
        if lower == upper:
            return ordered[lower]
        fraction = rank - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def compute_motion_features(points: Sequence[SpatioTemporalPoint]) -> MotionFeatures:
    """Compute speed, acceleration and heading for every point of ``points``."""
    n = len(points)
    if n == 0:
        return MotionFeatures([], [], [])
    if n == 1:
        return MotionFeatures([0.0], [0.0], [0.0])

    speeds: List[float] = []
    headings: List[float] = []
    for previous, current in zip(points, points[1:]):
        dt = current.t - previous.t
        distance = previous.distance_to(current)
        speeds.append(distance / dt if dt > 0 else 0.0)
        headings.append(math.atan2(current.y - previous.y, current.x - previous.x))
    speeds.append(speeds[-1])
    headings.append(headings[-1])

    accelerations: List[float] = [0.0]
    for index in range(1, n):
        dt = points[index].t - points[index - 1].t
        dv = speeds[index] - speeds[index - 1]
        accelerations.append(dv / dt if dt > 0 else 0.0)

    return MotionFeatures(speeds=speeds, accelerations=accelerations, headings=headings)


def features_for_trajectory(trajectory: RawTrajectory) -> MotionFeatures:
    """Convenience wrapper computing motion features for a raw trajectory."""
    return compute_motion_features(trajectory.points)


def heading_change_rate(headings: Sequence[float]) -> float:
    """Mean absolute heading change per step, in radians.

    High values indicate erratic, pedestrian-like movement; low values
    indicate road-constrained travel.  Used as an auxiliary signal by the
    transportation-mode inference.
    """
    if len(headings) < 2:
        return 0.0
    total = 0.0
    for previous, current in zip(headings, headings[1:]):
        delta = abs(current - previous)
        if delta > math.pi:
            delta = 2.0 * math.pi - delta
        total += delta
    return total / (len(headings) - 1)
