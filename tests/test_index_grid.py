"""Unit tests for the uniform grid index."""

from __future__ import annotations

import random

import pytest

from repro.geometry.primitives import BoundingBox, Point
from repro.index.grid_index import GridIndex


class TestGridIndex:
    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0)

    def test_insert_and_len(self):
        index = GridIndex(cell_size=10)
        index.insert(Point(5, 5), "a")
        index.insert(Point(15, 5), "b")
        assert len(index) == 2

    def test_query_box(self):
        index = GridIndex(cell_size=10)
        index.insert(Point(5, 5), "a")
        index.insert(Point(50, 50), "b")
        hits = [item for _, item in index.query_box(BoundingBox(0, 0, 10, 10))]
        assert hits == ["a"]

    def test_query_box_excludes_points_in_overlapping_cells_but_outside_box(self):
        index = GridIndex(cell_size=100)
        index.insert(Point(99, 99), "inside-cell-outside-box")
        hits = index.query_box(BoundingBox(0, 0, 50, 50))
        assert hits == []

    def test_query_radius_sorted_by_distance(self):
        index = GridIndex(cell_size=10)
        for i in range(10):
            index.insert(Point(i * 5, 0), i)
        results = index.query_radius(Point(0, 0), radius=12)
        assert [item for _, _, item in results] == [0, 1, 2]
        distances = [distance for distance, _, _ in results]
        assert distances == sorted(distances)

    def test_query_radius_negative_raises(self):
        with pytest.raises(ValueError):
            GridIndex(10).query_radius(Point(0, 0), -1)

    def test_nearest_expands_search(self):
        index = GridIndex(cell_size=1)
        index.insert(Point(100, 100), "far")
        results = index.nearest(Point(0, 0), count=1)
        assert results[0][2] == "far"

    def test_nearest_on_empty_index(self):
        assert GridIndex(10).nearest(Point(0, 0)) == []

    def test_nearest_matches_linear_scan(self):
        rng = random.Random(5)
        index = GridIndex(cell_size=10)
        points = []
        for i in range(200):
            point = Point(rng.uniform(0, 200), rng.uniform(0, 200))
            points.append((point, i))
            index.insert(point, i)
        query = Point(100, 100)
        expected = min(points, key=lambda pair: pair[0].distance_to(query))[1]
        assert index.nearest(query, count=1)[0][2] == expected

    def test_bounds(self):
        index = GridIndex(cell_size=10)
        assert index.bounds() is None
        index.insert(Point(0, 0), "a")
        index.insert(Point(10, 20), "b")
        assert index.bounds() == BoundingBox(0, 0, 10, 20)

    def test_cell_counts(self):
        index = GridIndex(cell_size=10)
        index.insert(Point(1, 1), "a")
        index.insert(Point(2, 2), "b")
        index.insert(Point(15, 1), "c")
        counts = index.cell_counts()
        assert counts[(0, 0)] == 2
        assert counts[(1, 0)] == 1

    def test_all_items(self):
        index = GridIndex(cell_size=10)
        index.insert(Point(1, 1), "a")
        index.insert(Point(2, 2), "b")
        assert sorted(item for _, item in index.all_items()) == ["a", "b"]
