"""CPU topology helpers shared by the runtime, benchmarks and CI gates.

``os.cpu_count()`` reports the machine's cores, not the cores *this process
may use*: under cgroup quotas, ``taskset`` pinning or container CPU limits the
two diverge, and sizing a worker pool from the machine count oversubscribes
the actual allowance.  Every consumer — the parallel runner's worker default,
the benchmark sidecars, the CI speedup gates — goes through
:func:`effective_cpu_count` so they all agree on the same affinity-aware
number.
"""

from __future__ import annotations

import os

__all__ = ["effective_cpu_count"]


def effective_cpu_count() -> int:
    """Number of CPUs the current process is actually allowed to run on.

    Uses the scheduler affinity mask where the platform exposes one (Linux),
    falling back to :func:`os.cpu_count` elsewhere; always at least 1.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return max(1, os.cpu_count() or 1)
