"""Unit tests for kernel weights (Equation 4) and Gaussian POI influence."""

from __future__ import annotations

import math

import pytest

from repro.geometry.kernels import (
    gaussian_2d_density,
    gaussian_2d_mass_in_box,
    gaussian_kernel_weight,
    kernel_weights,
)
from repro.geometry.primitives import Point


class TestKernelWeight:
    def test_zero_distance_gives_weight_one(self):
        assert gaussian_kernel_weight(0.0, bandwidth=10.0, radius=50.0) == pytest.approx(1.0)

    def test_weight_decreases_with_distance(self):
        near = gaussian_kernel_weight(5.0, bandwidth=10.0, radius=50.0)
        far = gaussian_kernel_weight(20.0, bandwidth=10.0, radius=50.0)
        assert near > far > 0.0

    def test_outside_radius_is_zero(self):
        assert gaussian_kernel_weight(51.0, bandwidth=10.0, radius=50.0) == 0.0
        assert gaussian_kernel_weight(50.0, bandwidth=10.0, radius=50.0) == 0.0

    def test_matches_equation_four(self):
        distance, sigma = 7.0, 10.0
        expected = math.exp(-(distance ** 2) / (2 * sigma ** 2))
        assert gaussian_kernel_weight(distance, sigma, radius=100.0) == pytest.approx(expected)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            gaussian_kernel_weight(1.0, bandwidth=0.0, radius=10.0)
        with pytest.raises(ValueError):
            gaussian_kernel_weight(1.0, bandwidth=1.0, radius=0.0)

    def test_kernel_weights_aligned_with_neighbors(self):
        center = Point(0, 0)
        neighbors = [Point(0, 0), Point(0, 5), Point(0, 100)]
        weights = kernel_weights(center, neighbors, bandwidth=10.0, radius=50.0)
        assert len(weights) == 3
        assert weights[0] == pytest.approx(1.0)
        assert weights[1] > 0.0
        assert weights[2] == 0.0


class TestGaussianInfluence:
    def test_density_peaks_at_mean(self):
        mean = Point(10, 10)
        at_mean = gaussian_2d_density(mean, mean, sigma=5.0)
        off_mean = gaussian_2d_density(Point(13, 14), mean, sigma=5.0)
        assert at_mean > off_mean > 0.0

    def test_density_is_isotropic(self):
        mean = Point(0, 0)
        d1 = gaussian_2d_density(Point(3, 0), mean, sigma=2.0)
        d2 = gaussian_2d_density(Point(0, 3), mean, sigma=2.0)
        assert d1 == pytest.approx(d2)

    def test_density_integrates_to_one_roughly(self):
        # Total mass inside a box 8 sigma wide should be essentially 1.
        mean = Point(0, 0)
        mass = gaussian_2d_mass_in_box(mean, sigma=3.0, min_x=-12, min_y=-12, max_x=12, max_y=12)
        assert mass == pytest.approx(1.0, abs=1e-3)

    def test_mass_in_half_plane_is_half(self):
        mean = Point(0, 0)
        mass = gaussian_2d_mass_in_box(mean, sigma=2.0, min_x=-100, min_y=-100, max_x=0, max_y=100)
        assert mass == pytest.approx(0.5, abs=1e-3)

    def test_invalid_sigma_raises(self):
        with pytest.raises(ValueError):
            gaussian_2d_density(Point(0, 0), Point(0, 0), sigma=0.0)
        with pytest.raises(ValueError):
            gaussian_2d_mass_in_box(Point(0, 0), 0.0, 0, 0, 1, 1)
