"""Canonical output is byte-identical across index backends.

The acceptance contract of the flat batch index: for every seed dataset the
pipeline's canonical bytes (:mod:`repro.parallel.canonical`) must agree
exactly across the full matrix ``index_backend = tree | flat`` x
``compute.backend = python | numpy`` x execution mode (sequential,
streaming, parallel).  The backend axis was established byte-identical in
the vectorized-parity suite; this suite pins the index axis and the cross
terms, so a flat-index result can never drift from the scalar-tree oracle
without a test going red.
"""

from __future__ import annotations

import dataclasses
from typing import List

import pytest

from repro.core import PipelineConfig, PipelineResult, SeMiTriPipeline
from repro.core.config import ComputeConfig, StreamingConfig, TrajectoryIdentificationConfig
from repro.parallel import GeoContext, ParallelAnnotationRunner, canonical_bytes
from repro.parallel.canonical import canonical_result
from repro.streaming import StreamingAnnotationEngine

_MATRIX = [
    ("tree", "python"),
    ("tree", "numpy"),
    ("flat", "python"),
    ("flat", "numpy"),
]


def _with_backends(config: PipelineConfig, index_backend: str, backend: str) -> PipelineConfig:
    return dataclasses.replace(
        config, compute=ComputeConfig(backend=backend, index_backend=index_backend)
    )


def _dataset(name, taxi_dataset, car_dataset, people_dataset):
    return {
        "taxi": (taxi_dataset.trajectories, PipelineConfig.for_vehicles()),
        "car": (car_dataset.trajectories, PipelineConfig.for_vehicles()),
        "people": (people_dataset.all_trajectories, PipelineConfig.for_people()),
    }[name]


@pytest.mark.parametrize("dataset_name", ["taxi", "car", "people"])
def test_sequential_matrix_byte_identical(
    dataset_name, taxi_dataset, car_dataset, people_dataset, annotation_sources
):
    trajectories, base_config = _dataset(dataset_name, taxi_dataset, car_dataset, people_dataset)
    reference = None
    for index_backend, backend in _MATRIX:
        config = _with_backends(base_config, index_backend, backend)
        assert config.compute.resolved_index_backend == index_backend
        results = SeMiTriPipeline(config).annotate_many(trajectories, annotation_sources)
        rendered = canonical_bytes(results)
        if reference is None:
            reference = rendered
        else:
            assert rendered == reference, (
                f"{dataset_name}: index_backend={index_backend} backend={backend} "
                "diverged from the scalar-tree oracle"
            )


def _canonical_without_ids(results: List[PipelineResult]) -> List[dict]:
    """Streaming renumbers sealed trajectories; compare everything computed."""
    rendered = []
    for result in results:
        payload = canonical_result(result)
        payload.pop("trajectory_id")
        rendered.append(payload)
    return rendered


def _streaming_friendly(config: PipelineConfig) -> PipelineConfig:
    return dataclasses.replace(
        config,
        identification=TrajectoryIdentificationConfig(
            max_time_gap=1e15, max_distance_gap=1e15, min_points=1
        ),
        streaming=StreamingConfig(micro_batch_size=8, apply_cleaning=False),
    )


@pytest.mark.parametrize("index_backend", ["tree", "flat"])
def test_streaming_matches_sequential_per_index_backend(
    index_backend, people_dataset, annotation_sources
):
    trajectories = people_dataset.all_trajectories
    config = _streaming_friendly(
        _with_backends(PipelineConfig.for_people(), index_backend, "numpy")
    )
    sequential = SeMiTriPipeline(config).annotate_many(trajectories, annotation_sources)

    engine = StreamingAnnotationEngine(annotation_sources, config=config)
    streamed: List[PipelineResult] = []
    for trajectory in trajectories:
        for point in trajectory.points:
            streamed.extend(engine.ingest(trajectory.object_id, point))
        streamed.extend(engine.close_object(trajectory.object_id))
    assert _canonical_without_ids(streamed) == _canonical_without_ids(sequential)


@pytest.mark.parametrize("index_backend", ["tree", "flat"])
def test_parallel_matches_sequential_per_index_backend(
    index_backend, car_dataset, annotation_sources
):
    trajectories = car_dataset.trajectories
    config = _with_backends(PipelineConfig.for_vehicles(), index_backend, "numpy")
    sequential = SeMiTriPipeline(config).annotate_many(trajectories, annotation_sources)

    context = GeoContext.build(annotation_sources, config)
    runner = ParallelAnnotationRunner(config=config, workers=2, executor="serial")
    parallel = runner.annotate_many(trajectories, context=context)
    assert canonical_bytes(parallel) == canonical_bytes(sequential)


def test_geocontext_precompiles_and_shares_flat_indexes(annotation_sources):
    """GeoContext compiles the flat indexes once at freeze time, reusably."""
    config = _with_backends(PipelineConfig.for_people(), "flat", "numpy")
    GeoContext.build(annotation_sources, config)
    # Compiled eagerly: the sources' cached instances exist and are stable.
    region_flat = annotation_sources.regions.flat_index()
    road_flat = annotation_sources.road_network.flat_index()
    poi_flat = annotation_sources.pois.flat_index()
    assert annotation_sources.regions.flat_index() is region_flat
    assert annotation_sources.road_network.flat_index() is road_flat
    assert annotation_sources.pois.flat_index() is poi_flat
    assert len(region_flat) == len(annotation_sources.regions)
    assert len(road_flat) == len(annotation_sources.road_network)
    assert len(poi_flat) == len(annotation_sources.pois)


def test_flat_index_pickles_for_spawn_workers(annotation_sources):
    """A compiled flat index survives pickling (spawn-based process pools)."""
    import pickle

    import numpy as np

    flat = annotation_sources.road_network.flat_index()
    clone = pickle.loads(pickle.dumps(flat))
    xs = np.array([3000.0, 4000.0])
    ys = np.array([3000.0, 4000.0])
    original = flat.within_distance_batch(xs, ys, 60.0)
    restored = clone.within_distance_batch(xs, ys, 60.0)
    assert original[0].tolist() == restored[0].tolist()
    assert original[1].tolist() == restored[1].tolist()
    assert original[2].tolist() == restored[2].tolist()
    assert [p.place_id for p in clone.payloads] == [p.place_id for p in flat.payloads]
