#!/usr/bin/env python3
"""Deterministic load generator for the annotation ingestion service.

Replays the seed synthetic datasets (taxi fleet, private cars, people) from
simulated emitters — one concurrent emitter per moving object — into an
:class:`repro.service.AnnotationService`, either in-process (default) or
through the stdlib HTTP facade (``--http``).  Event content is fully
deterministic (fixed world and simulator seeds); ``--rate`` paces each
emitter in events/second (0 = as fast as the service accepts, which is how
the throughput benchmark drives it), and ``--kill-fraction`` makes that
fraction of emitters vanish mid-stream without closing, exercising the
drain-time close-out path.

Prints a JSON report (sustained events/s, p50/p99 enqueue-to-absorbed
latency, backpressure waits, dropped events) to stdout or ``--output``; with
``--require-zero-dropped`` the exit status enforces the service's no-drop
contract, which is how the CI smoke leg uses it::

    PYTHONPATH=src python scripts/load_generator.py \
        --cars 3 --taxis 1 --people 1 --rate 200 --shards 2 \
        --require-zero-dropped
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

_ROOT = Path(__file__).resolve().parent.parent
if str(_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_ROOT / "src"))

from repro.core import PipelineConfig  # noqa: E402
from repro.core.points import SpatioTemporalPoint  # noqa: E402
from repro.datasets import (  # noqa: E402
    PersonSimulator,
    PrivateCarSimulator,
    SyntheticWorld,
    TaxiFleetSimulator,
    WorldConfig,
)
from repro.faults import FaultInjector, FaultPlan  # noqa: E402
from repro.faults.inject import FAULTS_ENV_VAR  # noqa: E402
from repro.parallel.context import GeoContext  # noqa: E402
from repro.service import AnnotationService, HttpIngestServer  # noqa: E402
from repro.store.store import SemanticTrajectoryStore  # noqa: E402


def build_streams(
    cars: int, taxis: int, people: int, seed: int
) -> Tuple[object, Dict[str, List[SpatioTemporalPoint]]]:
    """The seed world plus one deterministic raw point stream per emitter."""
    world = SyntheticWorld(WorldConfig(size=6000.0, poi_count=800, seed=7))
    trajectory_lists = []
    if taxis:
        trajectory_lists.append(
            TaxiFleetSimulator(world, taxi_count=taxis, days=1, fares_per_day=4, seed=seed).generate().trajectories
        )
    if cars:
        trajectory_lists.append(
            PrivateCarSimulator(world, car_count=cars, trips_per_car=2, seed=seed + 1).generate().trajectories
        )
    if people:
        trajectory_lists.append(
            PersonSimulator(world, user_count=people, days_per_user=1, seed=seed + 2).generate().all_trajectories
        )
    streams: Dict[str, List[SpatioTemporalPoint]] = {}
    grouped: Dict[str, list] = {}
    for trajectories in trajectory_lists:
        for trajectory in trajectories:
            grouped.setdefault(trajectory.object_id, []).append(trajectory)
    for object_id, trajectories in sorted(grouped.items()):
        trajectories.sort(key=lambda trajectory: trajectory.points[0].t)
        streams[object_id] = [
            point for trajectory in trajectories for point in trajectory.points
        ]
    return world, streams


def service_config(args: argparse.Namespace) -> PipelineConfig:
    return PipelineConfig.for_vehicles().with_overrides(
        {
            "streaming.micro_batch_size": 8,
            "streaming.apply_cleaning": True,
            "service.shards": args.shards,
            "service.queue_depth": args.queue_depth,
            "service.max_batch": args.max_batch,
            "service.transport": args.transport,
            "failure.mode": args.failure_mode,
        }
    )


class _HttpEmitterClient:
    """One keep-alive connection speaking the ingest protocol."""

    def __init__(self, port: int):
        self._port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _request(self, method: str, path: str, payload: Optional[dict]) -> dict:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection("127.0.0.1", self._port)
        assert self._reader is not None and self._writer is not None
        body = json.dumps(payload).encode() if payload is not None else b""
        head = f"{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {len(body)}\r\n\r\n"
        self._writer.write(head.encode() + body)
        await self._writer.drain()
        status = int((await self._reader.readline()).split()[1])
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        data = await self._reader.readexactly(length)
        reply = json.loads(data) if data.startswith(b"{") else {}
        if status != 200:
            raise RuntimeError(f"{method} {path} -> {status}: {reply}")
        return reply

    async def ingest(self, object_id: str, point: SpatioTemporalPoint) -> None:
        await self._request(
            "POST", "/ingest", {"object_id": object_id, "x": point.x, "y": point.y, "t": point.t}
        )

    async def close_object(self, object_id: str) -> None:
        await self._request("POST", "/close", {"object_id": object_id})

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionResetError:
                pass


async def _emit(
    sink, object_id: str, points: List[SpatioTemporalPoint], rate: float, killed: bool
) -> int:
    """Replay one emitter; returns the number of events delivered."""
    delivered_points = points[: max(1, int(len(points) * 0.6))] if killed else points
    interval = 1.0 / rate if rate > 0 else 0.0
    sent = 0
    for point in delivered_points:
        await sink.ingest(object_id, point)
        sent += 1
        if interval:
            await asyncio.sleep(interval)
    if not killed:
        await sink.close_object(object_id)
    return sent


async def run_load(args: argparse.Namespace) -> Dict[str, object]:
    from repro.core.pipeline import AnnotationSources

    world, streams = build_streams(args.cars, args.taxis, args.people, args.seed)
    config = service_config(args)
    sources = AnnotationSources(
        regions=world.region_source(),
        road_network=world.road_network(),
        pois=world.poi_source(),
    )
    # Build the snapshot up front so index construction stays out of the
    # timed window — the report measures ingest, not setup.
    context = GeoContext.build(sources, config)
    injector = (
        FaultInjector(FaultPlan.parse(args.fault_plan)) if args.fault_plan else None
    )
    store = SemanticTrajectoryStore(str(args.store)) if args.store else None
    service = AnnotationService(
        context, store=store, persist=store is not None, fault_injector=injector
    )

    killed = {
        object_id
        for index, object_id in enumerate(sorted(streams))
        if args.kill_fraction > 0 and (index % max(1, round(1 / args.kill_fraction)) == 0)
    }

    async with service:
        server: Optional[HttpIngestServer] = None
        clients: List[_HttpEmitterClient] = []
        try:
            if args.http:
                server = await HttpIngestServer(service, port=0).start()

            def sink_for() -> object:
                if server is None:
                    return service
                client = _HttpEmitterClient(server.port)
                clients.append(client)
                return client

            started = time.perf_counter()
            sent = await asyncio.gather(
                *(
                    _emit(sink_for(), object_id, points, args.rate, object_id in killed)
                    for object_id, points in sorted(streams.items())
                )
            )
            await service.drain()
            elapsed = time.perf_counter() - started
        finally:
            for client in clients:
                await client.close()
            if server is not None:
                await server.stop()
        await service.shutdown()

    latency = service.metrics.ingest_latency
    failures = service.failure_log.snapshot()
    stored = len(store.trajectory_ids()) if store is not None else None
    if store is not None:
        store.close()
    return {
        "stored_trajectories": stored,
        "ingress": "http" if args.http else "in-process",
        "transport": service.transport,
        "emitters": len(streams),
        "killed_emitters": len(killed),
        "shards": service.shard_count,
        "rate_per_emitter": args.rate,
        "fault_plan": args.fault_plan,
        "failure_mode": args.failure_mode,
        "events_sent": int(sum(sent)),
        "events_absorbed": service.delivered_events,
        "dropped_events": service.dropped_events,
        "shard_errors": service.stats.errors,
        "failures": failures["failures"],
        "retries": failures["retries"],
        "quarantined": failures["quarantined"],
        "wal_replayed": failures["wal_replayed"],
        "results": len(service.results),
        "sessions_evicted": service.sessions_evicted,
        "backpressure_waits": service.stats.backpressure_waits,
        "elapsed_s": round(elapsed, 4),
        "events_per_s": round(sum(sent) / elapsed, 1) if elapsed > 0 else 0.0,
        "ingest_latency_p50_s": latency.percentile(50.0),
        "ingest_latency_p99_s": latency.percentile(99.0),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cars", type=int, default=4, help="private-car emitters")
    parser.add_argument("--taxis", type=int, default=1, help="taxi emitters")
    parser.add_argument("--people", type=int, default=2, help="smartphone emitters")
    parser.add_argument("--rate", type=float, default=0.0, help="events/sec per emitter (0 = unpaced)")
    parser.add_argument("--shards", type=int, default=2, help="service shards (0 = auto)")
    parser.add_argument("--queue-depth", type=int, default=64, help="per-shard queue bound")
    parser.add_argument("--max-batch", type=int, default=32, help="events per shard batch")
    parser.add_argument(
        "--transport",
        choices=["thread", "process", "auto"],
        default="auto",
        help="shard execution tier (auto = process on multi-core, thread otherwise)",
    )
    parser.add_argument("--kill-fraction", type=float, default=0.0, help="fraction of emitters killed mid-stream")
    parser.add_argument(
        "--fault-plan",
        default=os.environ.get(FAULTS_ENV_VAR, ""),
        help=(
            'deterministic fault plan, e.g. "seed=3;raise@map_match:n=4,times=2" '
            f"(defaults to ${FAULTS_ENV_VAR}, the knob the CI chaos matrix sets)"
        ),
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="persist drained trajectories to this SQLite store (exercises the commit path)",
    )
    parser.add_argument(
        "--failure-mode",
        choices=["fail_fast", "skip", "retry"],
        default="fail_fast",
        help="per-trajectory failure policy the service runs under",
    )
    parser.add_argument("--seed", type=int, default=11, help="dataset seed")
    parser.add_argument("--http", action="store_true", help="go through the HTTP facade")
    parser.add_argument("--output", type=Path, default=None, help="write the JSON report here")
    parser.add_argument(
        "--require-zero-dropped",
        action="store_true",
        help="exit nonzero unless every accepted event was absorbed (CI smoke)",
    )
    args = parser.parse_args(argv)

    report = asyncio.run(run_load(args))
    rendered = json.dumps(report, indent=2, sort_keys=True)
    if args.output is not None:
        args.output.write_text(rendered + "\n", encoding="utf-8")
    print(rendered)
    # Under an active fault plan, shard errors and quarantines are *expected*
    # and fully accounted (surfaced above); the no-drop contract then means
    # "nothing vanished": zero dropped events and results still produced.
    unaccounted_errors = 0 if args.fault_plan else report["shard_errors"]
    if args.require_zero_dropped and (
        report["dropped_events"] or unaccounted_errors or not report["results"]
    ):
        print(
            "FAIL: events were dropped or no results produced "
            f"(dropped={report['dropped_events']}, errors={report['shard_errors']}, "
            f"quarantined={report['quarantined']}, results={report['results']})",
            file=sys.stderr,
        )
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
