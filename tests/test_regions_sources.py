"""Unit tests for region sources (indexed ROI collections)."""

from __future__ import annotations

import pytest

from repro.core.errors import SourceError
from repro.core.places import RegionOfInterest
from repro.geometry.primitives import BoundingBox, Point, Polygon
from repro.regions.sources import RegionSource, merge_sources


def _cell(place_id: str, x: float, y: float, size: float = 100, category: str = "1.2"):
    return RegionOfInterest(
        place_id=place_id,
        name=place_id,
        category=category,
        extent=BoundingBox(x, y, x + size, y + size),
    )


@pytest.fixture()
def small_source() -> RegionSource:
    regions = [
        _cell("a", 0, 0),
        _cell("b", 100, 0, category="1.3"),
        _cell("c", 0, 100, category="2.7"),
        RegionOfInterest(
            place_id="campus",
            name="campus",
            category="1.4",
            extent=Polygon([Point(20, 20), Point(80, 20), Point(80, 80), Point(20, 80)]),
        ),
    ]
    return RegionSource(regions, name="test")


class TestRegionSource:
    def test_empty_source_rejected(self):
        with pytest.raises(SourceError):
            RegionSource([], name="empty")

    def test_regions_containing_point(self, small_source):
        hits = small_source.regions_containing(Point(50, 50))
        assert {region.place_id for region in hits} == {"a", "campus"}

    def test_first_region_containing_prefers_smallest(self, small_source):
        # The campus polygon is smaller than the landuse cell that covers it.
        region = small_source.first_region_containing(Point(50, 50))
        assert region.place_id == "campus"

    def test_first_region_containing_none_outside(self, small_source):
        assert small_source.first_region_containing(Point(1000, 1000)) is None

    def test_regions_intersecting_box(self, small_source):
        hits = small_source.regions_intersecting(BoundingBox(90, -10, 110, 10))
        assert {region.place_id for region in hits} == {"a", "b"}

    def test_regions_intersecting_polygon_region(self, small_source):
        hits = small_source.regions_intersecting(BoundingBox(75, 75, 85, 85))
        assert "campus" in {region.place_id for region in hits}

    def test_categories_sorted(self, small_source):
        assert small_source.categories() == ["1.2", "1.3", "1.4", "2.7"]

    def test_len_and_regions(self, small_source):
        assert len(small_source) == 4
        assert len(small_source.regions) == 4


class TestMergeSources:
    def test_merge(self, small_source):
        other = RegionSource([_cell("z", 500, 500)], name="other")
        merged = merge_sources([small_source, other], name="merged")
        assert len(merged) == 5
        assert merged.first_region_containing(Point(550, 550)).place_id == "z"


class TestWorldRegionSource:
    def test_world_landuse_covers_core(self, world, region_source):
        center = world.config.commercial_center
        region = region_source.first_region_containing(center)
        assert region is not None
        assert region.category == "1.1"

    def test_world_landuse_cell_count(self, world, region_source):
        # The landuse grid is offset by half a cell so roads run through cell
        # interiors; this needs one extra row and column to cover the world.
        cells_per_side = int(world.config.size / world.config.landuse_cell_size) + 1
        assert len(region_source) == cells_per_side ** 2

    def test_all_world_categories_are_valid_codes(self, region_source):
        from repro.regions.landuse import LANDUSE_CATEGORIES

        for category in region_source.categories():
            assert category in LANDUSE_CATEGORIES
