"""Unit tests for the semantic trajectory store."""

from __future__ import annotations

import pytest

from repro.core.annotations import activity_annotation, region_annotation, transport_mode_annotation
from repro.core.episodes import Episode, EpisodeKind
from repro.core.errors import StoreError
from repro.core.places import RegionOfInterest
from repro.core.points import build_trajectory
from repro.geometry.primitives import BoundingBox
from repro.store.store import SemanticTrajectoryStore


@pytest.fixture()
def store():
    s = SemanticTrajectoryStore()
    yield s
    s.close()


@pytest.fixture()
def trajectory():
    return build_trajectory(
        [(float(i * 10), 0.0, float(i * 5)) for i in range(20)],
        object_id="obj",
        trajectory_id="traj-1",
    )


def _region() -> RegionOfInterest:
    return RegionOfInterest(
        place_id="cell-1", name="cell", category="1.2", extent=BoundingBox(0, 0, 100, 100)
    )


class TestTrajectories:
    def test_save_and_count(self, store, trajectory):
        store.save_trajectory(trajectory)
        assert store.trajectory_count() == 1
        assert store.gps_record_count() == 20
        assert store.trajectory_ids() == ["traj-1"]

    def test_duplicate_save_rejected(self, store, trajectory):
        store.save_trajectory(trajectory)
        with pytest.raises(StoreError):
            store.save_trajectory(trajectory)

    def test_round_trip(self, store, trajectory):
        store.save_trajectory(trajectory)
        loaded = store.load_trajectory("traj-1")
        assert len(loaded) == len(trajectory)
        assert loaded.object_id == "obj"
        assert loaded[3].as_tuple() == trajectory[3].as_tuple()

    def test_load_unknown_trajectory(self, store):
        with pytest.raises(StoreError):
            store.load_trajectory("missing")

    def test_save_without_points(self, store, trajectory):
        store.save_trajectory(trajectory, store_points=False)
        assert store.gps_record_count() == 0
        with pytest.raises(StoreError):
            store.load_trajectory("traj-1")


class TestEpisodes:
    def test_save_episode_with_annotations(self, store, trajectory):
        store.save_trajectory(trajectory)
        episode = Episode(EpisodeKind.STOP, trajectory, 0, 5)
        episode.add_annotation(region_annotation(_region()))
        episode.add_annotation(activity_annotation("shopping"))
        episode_id = store.save_episode(episode)
        annotations = store.annotations_for(episode_id)
        assert len(annotations) == 2
        kinds = {a["kind"] for a in annotations}
        assert kinds == {"region", "activity"}
        assert store.annotation_count() == 2

    def test_save_episodes_and_counts(self, store, trajectory):
        store.save_trajectory(trajectory)
        episodes = [
            Episode(EpisodeKind.STOP, trajectory, 0, 5),
            Episode(EpisodeKind.MOVE, trajectory, 5, 20),
        ]
        ids = store.save_episodes(episodes)
        assert len(ids) == 2
        assert store.episode_count() == 2
        assert store.episode_count(EpisodeKind.STOP) == 1
        assert store.episode_count(EpisodeKind.MOVE) == 1

    def test_episodes_for_trajectory_in_time_order(self, store, trajectory):
        store.save_trajectory(trajectory)
        store.save_episode(Episode(EpisodeKind.MOVE, trajectory, 5, 20))
        store.save_episode(Episode(EpisodeKind.STOP, trajectory, 0, 5))
        rows = store.episodes_for("traj-1")
        assert [row["kind"] for row in rows] == ["stop", "move"]
        assert rows[0]["time_in"] <= rows[1]["time_in"]

    def test_category_histogram(self, store, trajectory):
        store.save_trajectory(trajectory)
        stop = Episode(EpisodeKind.STOP, trajectory, 0, 5)
        stop.add_annotation(region_annotation(_region()))
        move = Episode(EpisodeKind.MOVE, trajectory, 5, 20)
        move.add_annotation(transport_mode_annotation("bus"))
        store.save_episodes([stop, move])
        histogram = store.category_histogram()
        assert histogram == {"1.2": 1}
        assert store.category_histogram("region") == {"1.2": 1}
        assert store.category_histogram("line") == {}

    def test_stop_move_summary(self, store, trajectory):
        store.save_trajectory(trajectory)
        store.save_episodes(
            [
                Episode(EpisodeKind.STOP, trajectory, 0, 5),
                Episode(EpisodeKind.MOVE, trajectory, 5, 20),
            ]
        )
        summary = store.stop_move_summary()
        assert summary == {"trajectories": 1, "gps_records": 20, "stops": 1, "moves": 1}

    def test_annotations_for_unknown_episode_is_empty(self, store):
        assert store.annotations_for(999) == []


class TestTransactionScope:
    """``with store:`` defers commits: commit on clean exit, rollback on error."""

    def test_clean_exit_commits(self, store, trajectory):
        with store:
            store.save_trajectory(trajectory)
            store.save_episode(Episode(EpisodeKind.STOP, trajectory, 0, 5))
            assert store.in_transaction_scope
        assert not store.in_transaction_scope
        assert store.trajectory_count() == 1
        assert store.episode_count() == 1

    def test_exception_rolls_back_everything(self, store, trajectory):
        with pytest.raises(RuntimeError):
            with store:
                store.save_trajectory(trajectory)
                store.save_episode(Episode(EpisodeKind.STOP, trajectory, 0, 5))
                raise RuntimeError("annotation stage blew up")
        assert store.trajectory_count() == 0
        assert store.episode_count() == 0

    def test_nested_scopes_commit_once_at_the_outermost_exit(self, store, trajectory):
        with store:
            store.save_trajectory(trajectory)
            with store:
                store.save_episode(Episode(EpisodeKind.MOVE, trajectory, 0, 19))
            # Still inside the outer scope: nothing is committed yet, and the
            # scope survives the inner exit.
            assert store.in_transaction_scope
        assert store.trajectory_count() == 1
        assert store.episode_count() == 1

    def test_inner_exception_rolls_back_the_whole_scope(self, store, trajectory):
        with pytest.raises(RuntimeError):
            with store:
                store.save_trajectory(trajectory)
                with store:
                    raise RuntimeError("inner stage failed")
        assert store.trajectory_count() == 0

    def test_swallowed_write_failure_refuses_to_commit(self, store, trajectory):
        """A failed write poisons the scope even if its error is swallowed."""
        with pytest.raises(StoreError, match="rolled back"):
            with store:
                store.save_trajectory(trajectory)
                with pytest.raises(StoreError):
                    store.save_trajectory(trajectory)  # duplicate id fails
        assert store.trajectory_count() == 0

    def test_writes_outside_any_scope_commit_immediately(self, store, trajectory):
        store.save_trajectory(trajectory)
        assert store.trajectory_count() == 1

    def test_swallowed_inner_scope_failure_poisons_outer_scope(self, store, trajectory):
        """Inner-scope exceptions cannot be swallowed into an outer commit."""
        with pytest.raises(StoreError, match="rolled back"):
            with store:
                store.save_trajectory(trajectory)
                try:
                    with store:
                        raise RuntimeError("inner stage failed")
                except RuntimeError:
                    pass  # caller swallows: the outer scope must still refuse
        assert store.trajectory_count() == 0
