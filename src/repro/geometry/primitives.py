"""Spatial primitives: points, segments, bounding boxes and simple polygons.

These are deliberately small, immutable value objects.  They carry no
coordinate-system information; distances are computed by the functions in
:mod:`repro.geometry.distance`, which decide between planar and geodesic
formulas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple


@dataclass(frozen=True)
class Point:
    """A 2-D point, ``x`` is longitude/easting and ``y`` is latitude/northing."""

    x: float
    y: float

    def as_tuple(self) -> Tuple[float, float]:
        """Return the ``(x, y)`` tuple."""
        return (self.x, self.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Planar Euclidean distance to ``other``.

        Computed as ``sqrt(dx*dx + dy*dy)`` rather than ``math.hypot`` — this
        exact operation sequence is what the numpy kernels of
        :mod:`repro.geometry.vectorized` replicate elementwise, so the scalar
        and vectorized compute backends agree bit-for-bit on distances.
        """
        dx = self.x - other.x
        dy = self.y - other.y
        return math.sqrt(dx * dx + dy * dy)


@dataclass(frozen=True)
class Segment:
    """A straight line segment between two crossings ``start`` and ``end``."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Planar length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        """The segment midpoint."""
        return Point((self.start.x + self.end.x) / 2.0, (self.start.y + self.end.y) / 2.0)

    def bounding_box(self, padding: float = 0.0) -> "BoundingBox":
        """Axis-aligned bounding box of the segment, optionally padded."""
        return BoundingBox(
            min(self.start.x, self.end.x) - padding,
            min(self.start.y, self.end.y) - padding,
            max(self.start.x, self.end.x) + padding,
            max(self.start.y, self.end.y) + padding,
        )

    def interpolate(self, fraction: float) -> Point:
        """Return the point at ``fraction`` (0..1) of the way along the segment."""
        fraction = min(1.0, max(0.0, fraction))
        return Point(
            self.start.x + (self.end.x - self.start.x) * fraction,
            self.start.y + (self.end.y - self.start.y) * fraction,
        )

    def heading(self) -> float:
        """Heading of the segment in radians, measured from the +x axis."""
        return math.atan2(self.end.y - self.start.y, self.end.x - self.start.x)


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                "invalid bounding box: min corner must not exceed max corner "
                f"({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
            )

    @classmethod
    def from_points(cls, points: Iterable[Point], padding: float = 0.0) -> "BoundingBox":
        """Smallest box containing every point in ``points`` (must be non-empty)."""
        xs: List[float] = []
        ys: List[float] = []
        for point in points:
            xs.append(point.x)
            ys.append(point.y)
        if not xs:
            raise ValueError("cannot build a bounding box from an empty point set")
        return cls(min(xs) - padding, min(ys) - padding, max(xs) + padding, max(ys) + padding)

    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Rectangle area (zero for degenerate boxes)."""
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        """Rectangle perimeter."""
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        """Rectangle centroid."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains_point(self, point: Point) -> bool:
        """True if ``point`` lies inside or on the boundary of the box."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        """True if ``other`` is entirely inside this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True if the two boxes share at least one point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox":
        """The overlapping rectangle; raises ``ValueError`` if disjoint."""
        if not self.intersects(other):
            raise ValueError("bounding boxes do not intersect")
        return BoundingBox(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, padding: float) -> "BoundingBox":
        """Box grown by ``padding`` on every side."""
        return BoundingBox(
            self.min_x - padding,
            self.min_y - padding,
            self.max_x + padding,
            self.max_y + padding,
        )

    def enlargement(self, other: "BoundingBox") -> float:
        """Area increase needed to also cover ``other`` (used by the R-tree)."""
        return self.union(other).area - self.area

    def overlap_area(self, other: "BoundingBox") -> float:
        """Area of the intersection, or 0 when disjoint."""
        if not self.intersects(other):
            return 0.0
        return self.intersection(other).area

    def min_distance_to_point(self, point: Point) -> float:
        """Smallest planar distance from ``point`` to the rectangle (0 if inside).

        Computed as ``sqrt(dx*dx + dy*dy)`` rather than ``math.hypot`` — like
        :meth:`Point.distance_to`, this exact operation sequence is what the
        batch kernels of :mod:`repro.index.flat` replicate elementwise, so the
        scalar indexes and the flat batch indexes agree bit-for-bit on box
        distances (CPython's ``hypot`` uses its own higher-precision algorithm
        that numpy does not reproduce).
        """
        dx = max(self.min_x - point.x, 0.0, point.x - self.max_x)
        dy = max(self.min_y - point.y, 0.0, point.y - self.max_y)
        return math.sqrt(dx * dx + dy * dy)


class Polygon:
    """A simple polygon defined by its exterior ring.

    Vertices are given in order (either orientation); the ring is implicitly
    closed.  Only the operations the region-annotation layer needs are
    implemented: point-in-polygon, bounding box, area and centroid.
    """

    def __init__(self, vertices: Sequence[Point]):
        cleaned = list(vertices)
        if len(cleaned) >= 2 and cleaned[0] == cleaned[-1]:
            cleaned = cleaned[:-1]
        if len(cleaned) < 3:
            raise ValueError("a polygon needs at least three distinct vertices")
        self._vertices: Tuple[Point, ...] = tuple(cleaned)
        self._bbox = BoundingBox.from_points(self._vertices)

    @classmethod
    def from_bounding_box(cls, box: BoundingBox) -> "Polygon":
        """Rectangle polygon matching ``box``."""
        return cls(
            [
                Point(box.min_x, box.min_y),
                Point(box.max_x, box.min_y),
                Point(box.max_x, box.max_y),
                Point(box.min_x, box.max_y),
            ]
        )

    @property
    def vertices(self) -> Tuple[Point, ...]:
        """Polygon vertices, without the closing repetition."""
        return self._vertices

    @property
    def bounding_box(self) -> BoundingBox:
        """Axis-aligned bounding box of the polygon."""
        return self._bbox

    def __iter__(self) -> Iterator[Point]:
        return iter(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    @property
    def area(self) -> float:
        """Unsigned polygon area (shoelace formula)."""
        return abs(self.signed_area)

    @property
    def signed_area(self) -> float:
        """Signed area; positive for counter-clockwise rings."""
        total = 0.0
        vertices = self._vertices
        for i, current in enumerate(vertices):
            nxt = vertices[(i + 1) % len(vertices)]
            total += current.x * nxt.y - nxt.x * current.y
        return total / 2.0

    @property
    def centroid(self) -> Point:
        """Polygon centroid (falls back to vertex mean for degenerate rings)."""
        signed = self.signed_area
        if abs(signed) < 1e-12:
            xs = sum(v.x for v in self._vertices) / len(self._vertices)
            ys = sum(v.y for v in self._vertices) / len(self._vertices)
            return Point(xs, ys)
        cx = 0.0
        cy = 0.0
        vertices = self._vertices
        for i, current in enumerate(vertices):
            nxt = vertices[(i + 1) % len(vertices)]
            cross = current.x * nxt.y - nxt.x * current.y
            cx += (current.x + nxt.x) * cross
            cy += (current.y + nxt.y) * cross
        factor = 1.0 / (6.0 * signed)
        return Point(cx * factor, cy * factor)

    def contains(self, point: Point) -> bool:
        """Ray-casting point-in-polygon test; boundary points count as inside."""
        if not self._bbox.contains_point(point):
            return False
        inside = False
        vertices = self._vertices
        n = len(vertices)
        j = n - 1
        for i in range(n):
            vi, vj = vertices[i], vertices[j]
            if _point_on_segment(point, vi, vj):
                return True
            if (vi.y > point.y) != (vj.y > point.y):
                x_cross = vj.x + (point.y - vj.y) * (vi.x - vj.x) / (vi.y - vj.y)
                if point.x < x_cross:
                    inside = not inside
            j = i
        return inside

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Polygon({len(self._vertices)} vertices, area={self.area:.1f})"


def _point_on_segment(point: Point, a: Point, b: Point, tol: float = 1e-9) -> bool:
    """True when ``point`` lies on the segment ``a``-``b`` within ``tol``."""
    cross = (b.x - a.x) * (point.y - a.y) - (b.y - a.y) * (point.x - a.x)
    if abs(cross) > tol * max(1.0, a.distance_to(b)):
        return False
    min_x, max_x = min(a.x, b.x) - tol, max(a.x, b.x) + tol
    min_y, max_y = min(a.y, b.y) - tol, max(a.y, b.y) + tol
    return min_x <= point.x <= max_x and min_y <= point.y <= max_y
