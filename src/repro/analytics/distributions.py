"""Distribution helpers for the analytics layer.

Small, dependency-free helpers that turn raw counts into the normalised
distributions, top-k lists and log-log histograms shown in Figures 9, 11, 12
and 14 of the paper.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def normalize_counts(counts: Dict[str, int]) -> Dict[str, float]:
    """Turn a category -> count mapping into fractions summing to 1."""
    total = sum(counts.values())
    if total <= 0:
        return {key: 0.0 for key in counts}
    return {key: value / total for key, value in counts.items()}


def category_distribution(labels: Sequence[str]) -> Dict[str, float]:
    """Normalised frequency of each label in ``labels``."""
    counts: Dict[str, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return normalize_counts(counts)


def top_k_categories(counts: Dict[str, int], k: int = 5) -> List[Tuple[str, float]]:
    """The ``k`` most frequent categories with their normalised share.

    Figure 14 lists the top-5 landuse categories per user; ties are broken by
    category code so the output is deterministic.
    """
    fractions = normalize_counts(counts)
    ordered = sorted(fractions.items(), key=lambda pair: (-pair[1], pair[0]))
    return ordered[:k]


def log_log_histogram(
    values: Sequence[int], base: float = 10.0
) -> List[Tuple[float, int]]:
    """Histogram of ``values`` over logarithmic bins (Figure 12).

    Each bin covers one order of magnitude ``[base^k, base^(k+1))``; the
    returned pairs are ``(bin lower bound, count)`` with empty bins omitted.
    Zero or negative values are counted in the first bin.
    """
    if base <= 1:
        raise ValueError("base must exceed 1")
    bins: Dict[int, int] = {}
    for value in values:
        if value <= 0:
            exponent = 0
        else:
            exponent = int(math.floor(math.log(value, base)))
        bins[exponent] = bins.get(exponent, 0) + 1
    return [(base ** exponent, count) for exponent, count in sorted(bins.items())]


def cumulative_share(counts: Dict[str, int], categories: Sequence[str]) -> float:
    """Combined share of the listed categories (e.g. building + transport areas).

    Used to check claims such as "nearly 83 % of taxi GPS points fall in
    building and transportation areas" (Figure 9) and the 61 % figure of
    Section 5.3 for people trajectories.
    """
    fractions = normalize_counts(counts)
    return sum(fractions.get(category, 0.0) for category in categories)
