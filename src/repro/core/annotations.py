"""Annotations attached to trajectory points and episodes (Definition 3).

The paper distinguishes two kinds of annotation:

* **geographic reference annotations** link a position or episode to a
  semantic place (the landuse cell it falls in, the road segment it was
  matched to, the POI category inferred for a stop);
* **additional value annotations** carry extra semantic values that are not a
  place, e.g. the activity behind a stop ("shopping") or the transportation
  mode of a move ("metro").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.places import SemanticPlace


class AnnotationKind(str, enum.Enum):
    """Which layer produced an annotation and what it refers to."""

    REGION = "region"
    LINE = "line"
    POINT = "point"
    TRANSPORT_MODE = "transport_mode"
    ACTIVITY = "activity"
    VALUE = "value"


@dataclass(frozen=True)
class Annotation:
    """Base annotation: a kind, a confidence and free-form details."""

    kind: AnnotationKind
    confidence: float = 1.0
    details: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not (0.0 <= self.confidence <= 1.0):
            raise ValueError(f"confidence must lie in [0, 1], got {self.confidence}")


@dataclass(frozen=True)
class GeographicReferenceAnnotation(Annotation):
    """An annotation that links to a semantic place object."""

    place: Optional[SemanticPlace] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.place is None:
            raise ValueError("a geographic reference annotation needs a place")

    @property
    def place_id(self) -> str:
        """Identifier of the referenced place."""
        assert self.place is not None
        return self.place.place_id

    @property
    def category(self) -> str:
        """Category of the referenced place (landuse code, road type, POI category)."""
        assert self.place is not None
        return self.place.category


@dataclass(frozen=True)
class ValueAnnotation(Annotation):
    """An annotation carrying a plain semantic value (activity, mode, speed...)."""

    label: str = ""
    value: Any = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.label:
            raise ValueError("a value annotation needs a non-empty label")


def region_annotation(place: SemanticPlace, confidence: float = 1.0, **details: Any) -> GeographicReferenceAnnotation:
    """Build a region-layer geographic reference annotation."""
    return GeographicReferenceAnnotation(
        kind=AnnotationKind.REGION, confidence=confidence, details=dict(details), place=place
    )


def line_annotation(place: SemanticPlace, confidence: float = 1.0, **details: Any) -> GeographicReferenceAnnotation:
    """Build a line-layer (map matching) geographic reference annotation."""
    return GeographicReferenceAnnotation(
        kind=AnnotationKind.LINE, confidence=confidence, details=dict(details), place=place
    )


def poi_annotation(place: SemanticPlace, confidence: float = 1.0, **details: Any) -> GeographicReferenceAnnotation:
    """Build a point-layer (POI) geographic reference annotation."""
    return GeographicReferenceAnnotation(
        kind=AnnotationKind.POINT, confidence=confidence, details=dict(details), place=place
    )


def transport_mode_annotation(mode: str, confidence: float = 1.0, **details: Any) -> ValueAnnotation:
    """Build a transportation-mode value annotation ("walk", "bus", ...)."""
    return ValueAnnotation(
        kind=AnnotationKind.TRANSPORT_MODE,
        confidence=confidence,
        details=dict(details),
        label="transport_mode",
        value=mode,
    )


def activity_annotation(activity: str, confidence: float = 1.0, **details: Any) -> ValueAnnotation:
    """Build an activity value annotation ("shopping", "work", ...)."""
    return ValueAnnotation(
        kind=AnnotationKind.ACTIVITY,
        confidence=confidence,
        details=dict(details),
        label="activity",
        value=activity,
    )
