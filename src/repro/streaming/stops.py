"""Incremental stop/move detection over a growing trajectory.

:class:`IncrementalStopMoveDetector` watches an open trajectory buffer and
emits episodes as soon as they are *sealed* — i.e. no future GPS point can
change their kind or boundaries — while guaranteeing that the concatenation of
everything it emits equals :meth:`StopMoveDetector.segment` on the final
buffer (parity tested on every seed dataset).

Why sealing is sound
--------------------
All volatility introduced by a new point is confined to a suffix of the
buffer:

* **velocity flags** — ``speeds[i]`` is the speed from point ``i`` to
  ``i + 1`` and the last point repeats its predecessor's value, so only the
  flag of the current last point can change when the next fix arrives;
* **density flags** — the seed-and-expand scan is final for every run that
  was terminated by a radius violation; only the first tried seed whose
  expansion was cut short by the end of the buffer (the *frontier* returned
  by :func:`~repro.preprocessing.stops.expand_density_flags`) can still grow
  and flip flags from that seed onwards;
* **minimum stop duration** — demotion operates on maximal runs of equal raw
  flags, and a volatile flag may later flip to the value of the run ending
  just before it (extending that run and changing its duration), so the
  volatile suffix is extended backwards to the start of the run containing
  the last fixed flag — every earlier run ends at a boundary between two
  fixed, differing flags and is final;
* **short-move absorption** — a volatile trailing episode may still merge
  *backwards* into its immediate predecessor (a short move absorbed into the
  preceding stop can later re-emerge as a real move), so the predecessor of
  the first volatile episode is withheld as well.  It cannot cascade
  further: that predecessor's kind is fixed and differs from its own
  predecessor's kind, so no second merge is possible.

Hence everything strictly before the *predecessor of the episode containing
the first volatile flag* is sealed.  The sealed frontier always falls on a
boundary between two permanently fixed raw flags, so each advance re-refines
only the suffix past it; finalization delegates to the batch detector and
verifies that everything emitted is a prefix of the full segmentation, so
any divergence fails fast instead of silently corrupting downstream
annotations.
"""

from __future__ import annotations

from typing import List

from repro.core.arrays import GrowableArray
from repro.core.config import StopMoveConfig
from repro.core.episodes import Episode, EpisodeKind
from repro.core.errors import DataQualityError
from repro.core.points import RawTrajectory
from repro.geometry.vectorized import consecutive_speeds
from repro.preprocessing.stops import (
    VECTOR_MIN_POINTS,
    StopMoveDetector,
    absorb_short_moves,
    enforce_min_duration,
    expand_density_flags,
    expand_density_flags_arrays,
)


class IncrementalStopMoveDetector:
    """Emits finalized stop/move episodes while its trajectory still grows.

    The detector is bound to one trajectory buffer (typically an
    :class:`~repro.streaming.session.OpenTrajectory` that the session appends
    to); call :meth:`advance` after appending points to collect the newly
    sealed episodes and :meth:`finalize` once the trajectory is complete to
    collect the remaining tail.
    """

    def __init__(
        self,
        trajectory: RawTrajectory,
        config: StopMoveConfig = StopMoveConfig(),
        backend: str = "numpy",
    ):
        self._trajectory = trajectory
        self._config = config
        self._backend = backend
        self._batch = StopMoveDetector(config, backend=backend)
        # Incrementally maintained state: pairwise speeds (speed between
        # point i and i+1), per-policy flags, the combined raw flags and the
        # density resumption frontier.  Under the numpy backend the growing
        # buffer is mirrored into columnar coordinate arrays so each advance
        # runs the same vectorized flag kernels as the batch detector over
        # just the open suffix.
        self._pair_speeds: List[float] = []
        self._velocity_flags: List[bool] = []
        self._density_flags: List[bool] = []
        self._combined: List[bool] = []
        self._density_frontier = 0
        self._sealed: List[Episode] = []
        self._finalized = False
        self._xs = GrowableArray()
        self._ys = GrowableArray()
        self._ts = GrowableArray()

    @property
    def trajectory(self) -> RawTrajectory:
        """The trajectory buffer the detector is bound to."""
        return self._trajectory

    @property
    def config(self) -> StopMoveConfig:
        """The active stop/move configuration."""
        return self._config

    @property
    def sealed_episodes(self) -> List[Episode]:
        """Episodes emitted so far, in trajectory order."""
        return list(self._sealed)

    # ------------------------------------------------------------------ feed
    def advance(self) -> List[Episode]:
        """Process points appended since the last call; returns newly sealed episodes.

        Everything before the sealed frontier is final, so only the suffix
        past it is re-refined: the sealed frontier always falls on a raw-flag
        boundary between two permanently fixed flags, which makes restarting
        the min-duration and absorption passes there exact.  Per call the
        work is bounded by the open (unsealed) region, not the whole buffer.
        """
        if self._finalized:
            raise DataQualityError("cannot advance a finalized detector")
        n = len(self._trajectory)
        if n < 2:
            return []
        self._update_flags(n)
        flags = self._combined
        volatile = self._volatile_start(n)
        # Extend the volatile suffix back to the start of the raw-flag run
        # containing the last *fixed* flag: a volatile flag may later flip to
        # that run's value and extend it, changing its min-duration demotion,
        # so the whole preceding run is volatile too.  The run before that one
        # ends at a boundary between two fixed, differing flags and is final.
        if volatile > 0:
            value = flags[volatile - 1]
            volatile -= 1
            while volatile > 0 and flags[volatile - 1] == value:
                volatile -= 1
        restart = self._sealed[-1].end_index if self._sealed else 0
        if volatile < restart:
            raise DataQualityError("volatile region receded into the sealed prefix")
        points = self._trajectory.points
        enforced = enforce_min_duration(
            points[restart:], flags[restart:], self._config.min_stop_duration
        )
        suffix = absorb_short_moves(
            self._trajectory,
            self._suffix_episodes(enforced, restart),
            self._config.min_move_points,
            previous_kind=self._sealed[-1].kind if self._sealed else None,
        )
        # First episode reaching into the volatile suffix, minus one more for
        # the backward-merge hazard of short-move absorption.
        first_volatile = len(suffix)
        for index, episode in enumerate(suffix):
            if episode.end_index > volatile:
                first_volatile = index
                break
        new_episodes = suffix[: max(0, first_volatile - 1)]
        if new_episodes and new_episodes[0].start_index != restart:
            raise DataQualityError("incremental stop/move sealing diverged from batch")
        self._sealed.extend(new_episodes)
        return new_episodes

    def finalize(self) -> List[Episode]:
        """Segment the completed trajectory; returns the episodes after the sealed prefix.

        Delegates to :meth:`StopMoveDetector.segment` so the full episode list
        (sealed prefix + returned tail) is exactly the batch segmentation,
        including its partition validation and single-point special case.
        """
        if self._finalized:
            raise DataQualityError("detector is already finalized")
        self._finalized = True
        episodes = self._batch.segment(self._trajectory)
        self._check_prefix(episodes)
        tail = episodes[len(self._sealed) :]
        self._sealed.extend(tail)
        return tail

    # ------------------------------------------------------------- internals
    def _update_flags(self, n: int) -> None:
        """Refresh the per-policy and combined flags for the grown buffer.

        Only the changeable region is recomputed: velocity flags from the old
        last point (whose speed was a repeat) and density flags from the
        resumption frontier.
        """
        policy = self._config.policy
        old_n = len(self._combined)
        changed_from = max(0, old_n - 1)
        if self._backend == "numpy":
            self._extend_coordinate_buffers(n)
        if policy in ("velocity", "hybrid"):
            self._extend_pair_speeds(n)
            threshold = self._config.speed_threshold
            del self._velocity_flags[max(0, old_n - 1) :]
            for index in range(max(0, old_n - 1), n):
                self._velocity_flags.append(self._pair_speeds[min(index, n - 2)] < threshold)
        if policy in ("density", "hybrid"):
            old_frontier = self._density_frontier
            changed_from = min(changed_from, old_frontier)
            self._density_flags.extend([False] * (n - len(self._density_flags)))
            # The two expansions are bit-identical, so the open-region size
            # cutoff only decides cost, never output.
            if self._backend == "numpy" and n - old_frontier >= VECTOR_MIN_POINTS:
                self._density_frontier = expand_density_flags_arrays(
                    self._xs.view(),
                    self._ys.view(),
                    self._ts.view(),
                    self._config.density_radius,
                    self._config.min_stop_duration,
                    self._density_flags,
                    start=old_frontier,
                )
            else:
                self._density_frontier = expand_density_flags(
                    self._trajectory.points,
                    self._config.density_radius,
                    self._config.min_stop_duration,
                    self._density_flags,
                    start=old_frontier,
                )
        del self._combined[changed_from:]
        for index in range(changed_from, n):
            if policy == "velocity":
                flag = self._velocity_flags[index]
            elif policy == "density":
                flag = self._density_flags[index]
            else:
                flag = self._velocity_flags[index] or self._density_flags[index]
            self._combined.append(flag)

    def _suffix_episodes(self, enforced: List[bool], restart: int) -> List[Episode]:
        """Maximal contiguous episodes of the enforced-flag suffix, with global indices."""
        episodes: List[Episode] = []
        n = len(enforced)
        start = 0
        for index in range(1, n + 1):
            if index == n or enforced[index] != enforced[start]:
                kind = EpisodeKind.STOP if enforced[start] else EpisodeKind.MOVE
                episodes.append(Episode(kind, self._trajectory, restart + start, restart + index))
                start = index
        return episodes

    def _extend_coordinate_buffers(self, n: int) -> None:
        """Mirror points appended since the last advance into the column buffers."""
        points = self._trajectory.points
        for index in range(len(self._xs), n):
            point = points[index]
            self._xs.append(point.x)
            self._ys.append(point.y)
            self._ts.append(point.t)

    def _extend_pair_speeds(self, n: int) -> None:
        """Maintain ``speeds[i]`` between points ``i`` and ``i + 1`` (length ``n - 1``)."""
        start = len(self._pair_speeds)
        if start >= n - 1:
            return
        # Both computations are bit-identical; vectorize only decent batches.
        if self._backend == "numpy" and n - 1 - start >= VECTOR_MIN_POINTS:
            # Pair speed k needs points k and k + 1: one kernel sweep over the
            # mirrored columns; drop the kernel's repeated-last-value padding.
            speeds = consecutive_speeds(
                self._xs.view(start, n), self._ys.view(start, n), self._ts.view(start, n)
            )
            self._pair_speeds.extend(speeds[:-1].tolist())
            return
        points = self._trajectory.points
        for index in range(start, n - 1):
            dt = points[index + 1].t - points[index].t
            distance = points[index].distance_to(points[index + 1])
            self._pair_speeds.append(distance / dt if dt > 0 else 0.0)

    def _volatile_start(self, n: int) -> int:
        """First point index whose raw flag may still change with future points."""
        if self._config.policy == "velocity":
            return n - 1
        return min(self._density_frontier, n - 1)

    def _check_prefix(self, episodes: List[Episode]) -> None:
        """Verify already-emitted episodes are a prefix of the current segmentation."""
        if len(episodes) < len(self._sealed):
            raise DataQualityError("incremental stop/move sealing diverged from batch")
        for emitted, current in zip(self._sealed, episodes):
            if (
                emitted.kind is not current.kind
                or emitted.start_index != current.start_index
                or emitted.end_index != current.end_index
            ):
                raise DataQualityError("incremental stop/move sealing diverged from batch")
