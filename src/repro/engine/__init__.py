"""Stage-graph execution engine: one dataflow, pluggable executors.

The SeMiTri pipeline (Figure 2) is a single dataflow — clean, identify,
compute episodes, then the region / line / point annotation layers with
optional store write-back.  This package is the one place that dataflow
lives:

* :mod:`repro.engine.stages` — every step as a typed :class:`Stage` with
  declared inputs/outputs, carrying both its batch body and its streaming
  (per-sealed-episode / at-close) protocol;
* :mod:`repro.engine.plan` — :class:`Plan`, compiled from a
  :class:`~repro.core.config.PipelineConfig` plus the available
  :class:`~repro.core.pipeline.AnnotationSources` (layers without a source
  are simply not compiled in), with compile-time wiring validation;
* :mod:`repro.engine.executors` — :class:`SequentialExecutor`,
  :class:`ProcessPoolExecutor` (sharded, input-order merged) and
  :class:`MicroBatchExecutor` (the streaming session loop), all emitting the
  same per-stage latency profile and all canonically byte-identical (see
  :mod:`repro.parallel.canonical`).

:class:`~repro.core.pipeline.SeMiTriPipeline`,
:class:`~repro.streaming.engine.StreamingAnnotationEngine` and
:class:`~repro.parallel.runner.ParallelAnnotationRunner` are thin façades
over this package.
"""

from repro.engine.executors import (
    EngineStats,
    Executor,
    MicroBatchExecutor,
    ProcessPoolExecutor,
    SequentialExecutor,
    merge_shard_results,
    run_stages,
    shard_by_object,
)
from repro.engine.plan import ANNOTATION_LAYERS, Plan
from repro.engine.stages import (
    CleanStage,
    ComputeEpisodesStage,
    IdentifyStage,
    MapMatchStage,
    PoiAnnotationStage,
    PreprocessingStage,
    RegionJoinStage,
    Stage,
    StoreEpisodesStage,
    StoreTrajectoryStage,
    WorkItem,
)

__all__ = [
    "ANNOTATION_LAYERS",
    "CleanStage",
    "ComputeEpisodesStage",
    "EngineStats",
    "Executor",
    "IdentifyStage",
    "MapMatchStage",
    "MicroBatchExecutor",
    "Plan",
    "PoiAnnotationStage",
    "PreprocessingStage",
    "ProcessPoolExecutor",
    "RegionJoinStage",
    "SequentialExecutor",
    "Stage",
    "StoreEpisodesStage",
    "StoreTrajectoryStage",
    "WorkItem",
    "merge_shard_results",
    "run_stages",
    "shard_by_object",
]
