"""Region sources: indexed collections of regions of interest.

A :class:`RegionSource` wraps a set of :class:`~repro.core.places.RegionOfInterest`
objects behind an R-tree so the spatial join of Algorithm 1 only examines the
regions whose bounding box is near a query point or rectangle.  This plays the
role of the PostGIS tables + R*-tree index of the paper's implementation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.core.errors import SourceError
from repro.core.places import RegionOfInterest
from repro.geometry.predicates import polygon_intersects_bbox
from repro.geometry.primitives import BoundingBox, Point, Polygon
from repro.index.flat import FlatSpatialIndex
from repro.index.rtree import RTree, RTreeEntry


class RegionSource:
    """An indexed third-party source of regions of interest."""

    def __init__(self, regions: Iterable[RegionOfInterest], name: str = "regions"):
        self._regions: List[RegionOfInterest] = list(regions)
        if not self._regions:
            raise SourceError(f"region source {name!r} contains no regions")
        self.name = name
        self._index = RTree.bulk_load(
            RTreeEntry(box=region.bounding_box(), item=region) for region in self._regions
        )
        self._flat_index: Optional[FlatSpatialIndex] = None

    def __len__(self) -> int:
        return len(self._regions)

    def freeze(self) -> "RegionSource":
        """Seal the source's R-tree for read-only sharing across workers."""
        self._index.freeze()
        return self

    def flat_index(self) -> FlatSpatialIndex:
        """The batch flat index compiled from the R-tree (built on first use).

        Compiling freezes the R-tree (the source never grows after
        construction); :class:`~repro.parallel.context.GeoContext` compiles
        eagerly so forked workers and the streaming engine share the arrays
        zero-copy.
        """
        if self._flat_index is None:
            self._flat_index = FlatSpatialIndex.from_rtree(self._index)
        return self._flat_index

    @property
    def regions(self) -> List[RegionOfInterest]:
        """All regions in the source."""
        return list(self._regions)

    def regions_containing(self, point: Point) -> List[RegionOfInterest]:
        """Regions whose extent contains ``point`` (exact test after index filter)."""
        candidates = self._index.query_point(point)
        return [entry.item for entry in candidates if entry.item.contains(point)]

    def regions_intersecting(self, box: BoundingBox) -> List[RegionOfInterest]:
        """Regions whose extent intersects the query rectangle."""
        results: List[RegionOfInterest] = []
        for entry in self._index.search(box):
            region = entry.item
            extent = region.extent
            if isinstance(extent, BoundingBox):
                if extent.intersects(box):
                    results.append(region)
            elif isinstance(extent, Polygon):
                if polygon_intersects_bbox(extent, box):
                    results.append(region)
        return results

    def first_region_containing(self, point: Point) -> Optional[RegionOfInterest]:
        """Smallest region containing ``point`` (ties broken by identifier).

        Overlapping region sources (a campus polygon on top of landuse cells)
        are resolved by preferring the most specific — smallest — region, which
        is how the paper's example annotates a stop with "EPFL campus" rather
        than the enclosing landuse cell.
        """
        matches = self.regions_containing(point)
        if not matches:
            return None
        return min(matches, key=lambda region: (region.area, region.place_id))

    # ------------------------------------------------------------ batch paths
    def regions_containing_batch(self, points: Sequence[Point]) -> List[List[RegionOfInterest]]:
        """Batch :meth:`regions_containing`: one flat-index query for all points.

        The candidate sets (index filter) and the exact containment filter
        match the scalar path region for region, in the same order.
        """
        candidate_lists = self.flat_index().query_point_payloads(points)
        return [
            [region for region in candidates if region.contains(point)]
            for point, candidates in zip(points, candidate_lists)
        ]

    def first_regions_containing_batch(
        self, points: Sequence[Point]
    ) -> List[Optional[RegionOfInterest]]:
        """Batch :meth:`first_region_containing` over a whole coordinate batch."""
        return [
            min(matches, key=lambda region: (region.area, region.place_id)) if matches else None
            for matches in self.regions_containing_batch(points)
        ]

    def categories(self) -> List[str]:
        """Distinct categories appearing in the source, sorted."""
        return sorted({region.category for region in self._regions})


def merge_sources(sources: Sequence[RegionSource], name: str = "merged") -> RegionSource:
    """Concatenate several region sources into one indexed source."""
    regions: List[RegionOfInterest] = []
    for source in sources:
        regions.extend(source.regions)
    return RegionSource(regions, name=name)
