"""Quickstart: annotate one GPS stream end-to-end with SeMiTri.

This example builds the synthetic world (landuse grid, road network, POIs),
simulates a short GPS stream for one moving object, runs the full SeMiTri
pipeline (cleaning, stop/move computation, region / line / point annotation)
and prints the resulting structured semantic trajectory.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro import AnnotationSources, PipelineConfig
from repro.datasets import PersonSimulator, SyntheticWorld, WorldConfig


def main() -> None:
    # 1. Build the geographic substrate (stand-ins for Swisstopo / OSM / Milan POIs).
    world = SyntheticWorld(WorldConfig(size=6000.0, poi_count=800, seed=7))
    sources = AnnotationSources(
        regions=world.region_source(),
        road_network=world.road_network(),
        pois=world.poi_source(),
    )
    print(
        f"world ready: {len(world.region_source()):,} landuse cells, "
        f"{len(world.road_network()):,} road segments, {len(world.poi_source()):,} POIs"
    )

    # 2. Simulate one smartphone user for one day.
    simulator = PersonSimulator(world, user_count=1, days_per_user=1, seed=31)
    dataset = simulator.generate()
    trajectory = dataset.all_trajectories[0]
    profile = dataset.profiles[trajectory.object_id]
    print(
        f"simulated {trajectory.object_id} ({profile.commute_style} commuter): "
        f"{len(trajectory)} GPS records over {trajectory.duration / 3600:.1f} hours"
    )

    # 3. Run the SeMiTri pipeline.
    pipeline = repro.open_pipeline(PipelineConfig.for_people())
    result = pipeline.annotate(trajectory, sources)

    # 4. Inspect the structured semantic trajectory.
    print(f"\nepisodes: {len(result.stops)} stops, {len(result.moves)} moves")
    print("\nsemantic view of the day (episode, period, annotation):")
    assert result.region_trajectory is not None
    for record in result.region_trajectory:
        place = record.place.category if record.place is not None else "?"
        start_hour = (record.time_in % 86_400) / 3600
        end_hour = (record.time_out % 86_400) / 3600
        print(
            f"  {record.kind.value:4s}  landuse {place:5s}  "
            f"{start_hour:5.2f}h -> {end_hour:5.2f}h"
        )

    modes = result.transport_modes()
    print(f"\ntransportation modes along the moves: {', '.join(modes) if modes else '(none)'}")
    if result.point_trajectory is not None:
        print("stop activities inferred from POI categories:")
        for record in result.point_trajectory:
            print(f"  stop at {(record.time_in % 86_400) / 3600:5.2f}h -> {record.activity}")
    print(f"trajectory category (Eq. 8): {result.trajectory_category}")


if __name__ == "__main__":
    main()
