"""Semantic Region Annotation Layer (Section 4.1, Algorithm 1).

Annotates trajectories and episodes with regions of interest via spatial
joins, using the landuse ontology of Figure 4 as the default categorisation of
space.
"""

from repro.regions.landuse import (
    LANDUSE_CATEGORIES,
    LANDUSE_TOP_LEVELS,
    LanduseCategory,
    landuse_category,
    top_level_of,
)
from repro.regions.sources import RegionSource
from repro.regions.annotator import RegionAnnotator

__all__ = [
    "LANDUSE_CATEGORIES",
    "LANDUSE_TOP_LEVELS",
    "LanduseCategory",
    "landuse_category",
    "top_level_of",
    "RegionSource",
    "RegionAnnotator",
]
