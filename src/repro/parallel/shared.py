"""Zero-copy sharing of :class:`GeoContext` numpy blocks across processes.

PR 4 made the expensive part of a :class:`~repro.parallel.context.GeoContext`
snapshot — the flat R-tree levels, the CSR entry/payload columns, the source
coordinate arrays — contiguous read-only numpy blocks.  This module moves
those blocks into ``multiprocessing.shared_memory`` so pool workers *attach*
to one copy instead of each receiving a pickled duplicate:

* :class:`SharedArrayBundle` packs named arrays into **one** POSIX shared
  memory segment (64-byte aligned) and describes the layout with a picklable
  :class:`SharedManifest`; :meth:`SharedArrayBundle.attach` reconstructs
  read-only zero-copy views from the manifest in another process.
* :func:`share_context` pickles a snapshot through a
  :class:`pickle.Pickler` whose ``persistent_id`` hook diverts every large
  contiguous array into the bundle, leaving a small skeleton pickle of
  Python objects; :func:`attach_context` is the worker-side inverse, whose
  ``persistent_load`` resolves each reference to a view into the attached
  segment — the rebuilt :class:`FlatSpatialIndex`/:class:`GeoContext`
  therefore *aliases* the parent's arrays instead of copying them.

Cleanup is layered so segments cannot outlive the run:

* the creating process owns the segment: :meth:`SharedGeoContext.close` (and
  the executor/runner ``close()`` paths) unlink it deterministically;
* a :class:`weakref.finalize` on every owner unlinks on garbage collection
  *and* at interpreter exit (``finalize`` registers with ``atexit``), so a
  dropped runner or a crashed worker never strands a segment;
* the ``resource_tracker`` needs no special handling precisely *because*
  workers are children of the owner: both ``fork`` and ``spawn`` hand the
  child the parent's tracker fd, so the whole process tree shares one
  tracker whose cache is a set — the attach-side re-registration is an
  idempotent add and the owner's unlink unregisters the name exactly once
  (explicitly unregistering in workers would strip the entry out from under
  the owner and make the tracker raise on the owner's unlink).
"""

from __future__ import annotations

import io
import os
import pickle
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, Dict, Mapping, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.parallel.context import GeoContext

__all__ = [
    "SharedArrayBundle",
    "SharedBlock",
    "SharedManifest",
    "SharedContextSpec",
    "SharedGeoContext",
    "share_context",
    "attach_context",
]

#: Blocks smaller than this pickle inline: a shared-memory reference (block
#: record + alignment padding) costs more than it saves below ~a cache line's
#: worth of payload, and tiny arrays are not where the copy time goes.
MIN_SHARED_BYTES = 256

#: Alignment of every block inside the segment (cache-line sized, and enough
#: for any numpy dtype).
_ALIGNMENT = 64

#: ``persistent_id`` tag marking a diverted array in the skeleton pickle.
_PID_TAG = "semitri-shared-array"


def _release_segment(shm: shared_memory.SharedMemory, owner: bool) -> None:
    """Detach (and for owners unlink) a segment; idempotent and GC/exit-safe."""
    try:
        shm.close()
    except BufferError:
        # Some view still aliases the mapping; it stays valid until process
        # exit.  Drop the fd and the handle's mmap reference so the mapping is
        # deliberately leaked once and ``SharedMemory.__del__`` does not retry
        # the close (which would warn "Exception ignored in __del__").
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            os.close(fd)
            shm._fd = -1
        shm._mmap = None
        shm._buf = None
    if owner:
        try:
            shm.unlink()  # only needs the name; works after the close above
        except FileNotFoundError:
            pass


@dataclass(frozen=True)
class SharedBlock:
    """Layout of one array inside the segment (picklable manifest entry)."""

    key: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class SharedManifest:
    """Everything a worker needs to attach: segment name plus block layout."""

    segment: str
    size: int
    blocks: Tuple[SharedBlock, ...]

    def keys(self) -> Tuple[str, ...]:
        """The block names, in layout order."""
        return tuple(block.key for block in self.blocks)


class SharedArrayBundle:
    """Named numpy blocks in one shared-memory segment, create- or attach-side.

    Create-side (:meth:`create`) packs the arrays and owns the segment: it is
    responsible for the unlink, deterministically via :meth:`close` (also a
    context manager) and as a backstop via a GC/exit finalizer.  Attach-side
    (:meth:`attach`) maps the segment read-only and never unlinks; its views
    alias the creator's physical pages, which is the whole point.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: SharedManifest,
        owner: bool,
    ):
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self._manifest = manifest
        self._owner = owner
        self._views: Dict[str, np.ndarray] = {}
        self._finalizer = weakref.finalize(self, _release_segment, shm, owner)

    # ------------------------------------------------------------ construction
    @classmethod
    def create(
        cls, arrays: Mapping[str, np.ndarray], name: Optional[str] = None
    ) -> "SharedArrayBundle":
        """Pack ``arrays`` into a fresh segment (this process becomes owner)."""
        blocks = []
        offset = 0
        for key, array in arrays.items():
            if not array.flags["C_CONTIGUOUS"]:
                raise ValueError(f"shared block {key!r} must be C-contiguous")
            if array.dtype.hasobject:
                raise ValueError(f"shared block {key!r} must not contain objects")
            offset = -(-offset // _ALIGNMENT) * _ALIGNMENT  # round up
            blocks.append(SharedBlock(key, offset, tuple(array.shape), array.dtype.str))
            offset += array.nbytes
        if name is None:
            name = f"semitri-{os.getpid()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
        manifest = SharedManifest(segment=shm.name, size=shm.size, blocks=tuple(blocks))
        bundle = cls(shm, manifest, owner=True)
        for block in blocks:
            np.copyto(bundle._view_of(block, writeable=True), arrays[block.key])
        return bundle

    @classmethod
    def attach(cls, manifest: SharedManifest) -> "SharedArrayBundle":
        """Map an existing segment; views are read-only and zero-copy.

        Attaching re-registers the name with the resource tracker, but pool
        workers share the owner's tracker process (fork and spawn both pass
        the tracker fd down), so the registration is an idempotent set-add
        that the owner's unlink clears — no unregister dance needed here.
        """
        shm = shared_memory.SharedMemory(name=manifest.segment)
        return cls(shm, manifest, owner=False)

    def _view_of(self, block: SharedBlock, writeable: bool = False) -> np.ndarray:
        assert self._shm is not None, "bundle is closed"
        dtype = np.dtype(block.dtype)
        count = 1
        for dim in block.shape:
            count *= dim
        view = np.frombuffer(self._shm.buf, dtype=dtype, count=count, offset=block.offset)
        view = view.reshape(block.shape)
        view.flags.writeable = writeable
        return view

    # --------------------------------------------------------------- accessors
    @property
    def manifest(self) -> SharedManifest:
        """The picklable layout descriptor workers attach from."""
        return self._manifest

    @property
    def segment_name(self) -> str:
        """Name of the underlying shared-memory segment."""
        return self._manifest.segment

    @property
    def nbytes(self) -> int:
        """Size of the segment in bytes."""
        return self._manifest.size

    def keys(self) -> Tuple[str, ...]:
        """The block names, in layout order."""
        return self._manifest.keys()

    def __len__(self) -> int:
        return len(self._manifest.blocks)

    def __getitem__(self, key: str) -> np.ndarray:
        """The (cached) read-only zero-copy view of one block."""
        view = self._views.get(key)
        if view is None:
            for block in self._manifest.blocks:
                if block.key == key:
                    view = self._view_of(block)
                    break
            else:
                raise KeyError(key)
            self._views[key] = view
        return view

    # --------------------------------------------------------------- lifecycle
    @property
    def closed(self) -> bool:
        """True once the segment has been released by this side."""
        return self._shm is None

    def close(self) -> None:
        """Release the mapping; the owning side also unlinks (idempotent)."""
        if self._shm is None:
            return
        self._views.clear()
        self._finalizer()  # runs _release_segment exactly once
        self._shm = None

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


# --------------------------------------------------------- context export side
class _BlockPickler(pickle.Pickler):
    """Pickler that diverts large contiguous arrays into a shared bundle.

    ``names`` maps ``id(array)`` to a human-readable block name (from
    :meth:`GeoContext.precompiled_blocks`); arrays reached through other
    attributes (HMM tables, observation-model caches, ...) still divert, under
    a generated name.  The collected ``arrays`` mapping preserves encounter
    order, so block keys are deterministic for a given snapshot.
    """

    def __init__(
        self,
        buffer: io.BytesIO,
        names: Dict[int, str],
        min_shared_bytes: int,
    ):
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._names = names
        self._min_shared_bytes = min_shared_bytes
        self.arrays: Dict[str, np.ndarray] = {}
        self._key_of: Dict[int, str] = {}

    def persistent_id(self, obj: Any) -> Optional[Tuple[str, str]]:
        if (
            isinstance(obj, np.ndarray)
            and obj.nbytes >= self._min_shared_bytes
            and obj.flags["C_CONTIGUOUS"]
            and not obj.dtype.hasobject
        ):
            key = self._key_of.get(id(obj))
            if key is None:
                key = self._names.get(id(obj), f"block[{len(self.arrays)}]")
                if key in self.arrays:  # name collision: disambiguate
                    key = f"{key}#{len(self.arrays)}"
                self._key_of[id(obj)] = key
                self.arrays[key] = obj
            return (_PID_TAG, key)
        return None


class _BlockUnpickler(pickle.Unpickler):
    """Unpickler resolving diverted arrays to views into an attached bundle."""

    def __init__(self, buffer: io.BytesIO, bundle: Optional[SharedArrayBundle]):
        super().__init__(buffer)
        self._bundle = bundle

    def persistent_load(self, pid: Tuple[str, str]) -> np.ndarray:
        tag, key = pid
        if tag != _PID_TAG or self._bundle is None:
            raise pickle.UnpicklingError(f"unsupported persistent reference {pid!r}")
        return self._bundle[key]


@dataclass(frozen=True)
class SharedContextSpec:
    """The picklable wire form of a shared snapshot.

    ``skeleton`` is the context pickle with every large array replaced by a
    persistent reference; ``manifest`` locates those arrays in the shared
    segment (``None`` when nothing was large enough to divert, in which case
    the skeleton is simply a complete pickle).
    """

    skeleton: bytes
    manifest: Optional[SharedManifest]

    @property
    def shared_bytes(self) -> int:
        """Bytes travelling via shared memory instead of the pickle stream."""
        return self.manifest.size if self.manifest is not None else 0


class SharedGeoContext:
    """Parent-side handle owning a snapshot's shared segment.

    Hand :attr:`spec` to worker initializers; keep this object alive for the
    pool's lifetime and :meth:`close` it (or let the executor's finalizer do
    so) when the pool shuts down.
    """

    def __init__(self, context: "GeoContext", spec: SharedContextSpec, bundle: Optional[SharedArrayBundle]):
        self._context = context
        self._spec = spec
        self._bundle = bundle

    @property
    def context(self) -> "GeoContext":
        """The original snapshot the spec was exported from."""
        return self._context

    @property
    def spec(self) -> SharedContextSpec:
        """The picklable wire form workers attach from."""
        return self._spec

    @property
    def bundle(self) -> Optional[SharedArrayBundle]:
        """The owning bundle (``None`` when nothing was diverted)."""
        return self._bundle

    @property
    def segment_name(self) -> Optional[str]:
        """Name of the shared segment, when one exists."""
        return self._bundle.segment_name if self._bundle is not None else None

    def close(self) -> None:
        """Unlink the shared segment (idempotent)."""
        if self._bundle is not None:
            self._bundle.close()

    def __enter__(self) -> "SharedGeoContext":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()


def share_context(
    context: "GeoContext", min_shared_bytes: int = MIN_SHARED_BYTES
) -> SharedGeoContext:
    """Export a snapshot's numpy blocks to shared memory, skeleton-pickling the rest.

    The returned handle owns the segment; its :attr:`~SharedGeoContext.spec`
    is what travels to workers (small: Python objects only).
    """
    names = {id(array): key for key, array in context.precompiled_blocks().items()}
    buffer = io.BytesIO()
    pickler = _BlockPickler(buffer, names, min_shared_bytes)
    pickler.dump(context)
    bundle = SharedArrayBundle.create(pickler.arrays) if pickler.arrays else None
    spec = SharedContextSpec(
        skeleton=buffer.getvalue(),
        manifest=bundle.manifest if bundle is not None else None,
    )
    return SharedGeoContext(context, spec, bundle)


def attach_context(spec: SharedContextSpec) -> Tuple["GeoContext", Optional[SharedArrayBundle]]:
    """Rebuild a :class:`GeoContext` whose arrays are views into the shared segment.

    Returns the context and the attached bundle; the caller must keep the
    bundle referenced for as long as the context is used (the views alias its
    mapping) and must *not* unlink — the creating process owns the segment.
    """
    bundle = (
        SharedArrayBundle.attach(spec.manifest) if spec.manifest is not None else None
    )
    context = _BlockUnpickler(io.BytesIO(spec.skeleton), bundle).load()
    return context, bundle
