"""Storage compression reporting.

Section 5.2 reports that abstracting 3M GPS records into region-annotated
episodes achieves ~99.7 % storage compression (about 8,385 region tuples for
3M records).  :func:`compression_report` computes the same ratio for any
raw-record count versus semantic-tuple count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.trajectory import StructuredSemanticTrajectory


@dataclass(frozen=True)
class CompressionReport:
    """Raw record count, semantic tuple count and the resulting compression."""

    raw_records: int
    semantic_tuples: int

    @property
    def compression_ratio(self) -> float:
        """Fraction of storage saved: ``1 - tuples / records`` (0 when records = 0)."""
        if self.raw_records <= 0:
            return 0.0
        return max(0.0, 1.0 - self.semantic_tuples / self.raw_records)

    @property
    def records_per_tuple(self) -> float:
        """Average number of raw records summarised by one semantic tuple."""
        if self.semantic_tuples <= 0:
            return 0.0
        return self.raw_records / self.semantic_tuples

    def as_percentage(self) -> float:
        """Compression ratio as a percentage (the 99.7 % figure of the paper)."""
        return 100.0 * self.compression_ratio


def compression_report(
    raw_record_count: int, structured: Sequence[StructuredSemanticTrajectory]
) -> CompressionReport:
    """Build a compression report from structured semantic trajectories."""
    tuples = sum(len(trajectory) for trajectory in structured)
    return CompressionReport(raw_records=raw_record_count, semantic_tuples=tuples)
