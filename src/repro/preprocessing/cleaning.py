"""GPS cleaning: outlier removal and smoothing of random errors.

The Trajectory Computation Layer first removes GPS outliers (fixes that imply
a physically impossible speed) and smooths the remaining random error with a
small sliding-window filter.  Both operations preserve timestamps; only the
spatial coordinates change.
"""

from __future__ import annotations

import statistics
from typing import List, Sequence

from repro.core.config import CleaningConfig
from repro.core.errors import DataQualityError
from repro.core.points import SpatioTemporalPoint


class GpsCleaner:
    """Removes speed outliers and smooths GPS noise.

    Parameters
    ----------
    config:
        Cleaning thresholds; see :class:`repro.core.config.CleaningConfig`.
    """

    def __init__(self, config: CleaningConfig = CleaningConfig()):
        self._config = config

    @property
    def config(self) -> CleaningConfig:
        """The active cleaning configuration."""
        return self._config

    # ------------------------------------------------------------- outliers
    def remove_outliers(
        self, points: Sequence[SpatioTemporalPoint]
    ) -> List[SpatioTemporalPoint]:
        """Drop fixes that imply a speed above ``max_speed`` from their predecessor.

        The filter is greedy: it walks the stream keeping an anchor at the last
        accepted fix, so a single wild fix is dropped without discarding the
        valid fixes that follow it.
        """
        if not points:
            return []
        cleaned: List[SpatioTemporalPoint] = [points[0]]
        for candidate in points[1:]:
            anchor = cleaned[-1]
            dt = candidate.t - anchor.t
            if dt < 0:
                raise DataQualityError("GPS stream timestamps must be non-decreasing")
            if dt == 0:
                # Duplicate timestamp: keep the first fix, drop the duplicate.
                continue
            speed = anchor.distance_to(candidate) / dt
            if speed <= self._config.max_speed:
                cleaned.append(candidate)
        return cleaned

    # ------------------------------------------------------------ smoothing
    def smooth(self, points: Sequence[SpatioTemporalPoint]) -> List[SpatioTemporalPoint]:
        """Smooth coordinates with a centred sliding-window filter.

        The window size and method (median or mean) come from the
        configuration; timestamps are untouched and the first/last fixes keep
        their original position so trajectory endpoints stay anchored.
        """
        window = self._config.smoothing_window
        method = self._config.smoothing_method
        if window <= 1 or method == "none" or len(points) < 3:
            return list(points)
        half = window // 2
        aggregate = statistics.median if method == "median" else statistics.fmean
        smoothed: List[SpatioTemporalPoint] = []
        for index, point in enumerate(points):
            if index == 0 or index == len(points) - 1:
                smoothed.append(point)
                continue
            lo = max(0, index - half)
            hi = min(len(points), index + half + 1)
            xs = [p.x for p in points[lo:hi]]
            ys = [p.y for p in points[lo:hi]]
            smoothed.append(SpatioTemporalPoint(aggregate(xs), aggregate(ys), point.t))
        return smoothed

    # ---------------------------------------------------------------- pipeline
    def clean(self, points: Sequence[SpatioTemporalPoint]) -> List[SpatioTemporalPoint]:
        """Full cleaning pass: outlier removal followed by smoothing."""
        return self.smooth(self.remove_outliers(points))
