"""Typed pipeline stages: the Figure 2 dataflow as first-class objects.

The SeMiTri pipeline is one dataflow — clean, identify, compute episodes,
then the region / line / point annotation layers, with optional store
write-back — but the repo used to re-encode that sequence separately in the
batch pipeline, the streaming engine and the parallel runner.  This module
makes every step an explicit :class:`Stage` with declared inputs and outputs,
so a :class:`~repro.engine.plan.Plan` can describe the dataflow once and any
executor (sequential, process-pool, micro-batch) can run it.

Each stage carries two faces of the same computation:

* :meth:`Stage.run` — the **batch** body, applied to a whole trajectory's
  episodes at once (what :meth:`SeMiTriPipeline.annotate_many` needs);
* the **streaming** protocol — :meth:`Stage.wants_episode` /
  :meth:`Stage.absorb_episode` for stages that can process each episode the
  moment it is sealed, plus :meth:`Stage.finishes` / :meth:`Stage.finish` /
  :meth:`Stage.close_out` for work that must wait until the trajectory
  closes (the HMM point layer, store write-back, result assembly).

Executors — not the stages — own the per-stage :class:`StageTimer` samples,
so the Figure 17 latency breakdown is emitted from exactly one place and is
identical in shape across the batch and streaming runtimes.

The stage ``name`` doubles as the latency-profile stage name, which keeps
the Figure 17 vocabulary (``compute_episode``, ``store_episode``,
``landuse_join``, ``map_match``, ``store_match_result``, plus
``poi_annotation``) stable across every runtime.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.analytics.latency import StageTimer
from repro.core.config import PipelineConfig
from repro.core.episodes import Episode
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.core.trajectory import SemanticEpisodeRecord, StructuredSemanticTrajectory
from repro.lines.annotator import LineAnnotator
from repro.lines.road_network import RoadNetwork
from repro.points.annotator import PointAnnotator
from repro.preprocessing.cleaning import GpsCleaner
from repro.preprocessing.identification import TrajectoryIdentifier
from repro.preprocessing.stops import StopMoveDetector
from repro.regions.annotator import RegionAnnotator
from repro.store.store import SemanticTrajectoryStore
from repro.streaming.matching import WindowedMapMatcher

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.pipeline import PipelineResult
    from repro.obs.runtime import Telemetry
    from repro.obs.trace import TrajectoryTrace


@dataclass
class WorkItem:
    """One trajectory moving through the stages of a plan.

    Wraps the growing :class:`~repro.core.pipeline.PipelineResult` together
    with the latency timer and the scratch state streaming stages accumulate
    between episode seals (region records, the per-engine windowed matcher).
    When the plan's telemetry has tracing enabled the item also carries the
    trajectory's open :class:`~repro.obs.trace.TrajectoryTrace`; with the
    default no-op telemetry ``trace`` stays ``None`` and every hook below
    collapses to the plain timer path.
    """

    trajectory: RawTrajectory
    result: "PipelineResult"
    timer: StageTimer
    region_records: List[SemanticEpisodeRecord] = field(default_factory=list)
    windowed_matcher: Optional[WindowedMapMatcher] = None
    """Streaming map matcher supplied by the micro-batch executor."""
    trace: Optional["TrajectoryTrace"] = None
    """Open trace when the plan's telemetry has tracing enabled."""

    @classmethod
    def start(
        cls, trajectory: RawTrajectory, telemetry: Optional["Telemetry"] = None
    ) -> "WorkItem":
        """Fresh work item whose result shares the timer's latency profile."""
        from repro.core.pipeline import PipelineResult  # deferred: import cycle

        timer = StageTimer()
        result = PipelineResult(trajectory=trajectory, episodes=[], latency=timer.profile)
        trace = telemetry.start_trace(trajectory.trajectory_id) if telemetry else None
        return cls(trajectory=trajectory, result=result, timer=timer, trace=trace)

    def stage_scope(self, name: str):
        """Timing scope for one stage run: latency sample plus span (if tracing).

        Both paths feed the same :class:`LatencyProfile` from a single
        ``perf_counter`` pair, so enabling tracing adds a span without
        perturbing the Figure 17 samples.
        """
        if self.trace is not None:
            return self.trace.stage(name, self.timer.profile)
        return self.timer.stage(name)

    def record_stage(self, name: str, seconds: float) -> None:
        """Record an externally measured stage duration (plus span if tracing)."""
        self.timer.record(name, seconds)
        if self.trace is not None:
            self.trace.record(name, seconds)

    def finish_trace(self) -> None:
        """Seal the trace and attach its spans to the result (no-op untraced)."""
        if self.trace is not None:
            self.result.spans = self.trace.close()
            self.trace = None


class Stage(abc.ABC):
    """One step of the annotation dataflow with declared inputs and outputs.

    ``inputs`` and ``outputs`` name the :class:`WorkItem` /
    :class:`~repro.core.pipeline.PipelineResult` fields the stage reads and
    writes; they are documentation-grade metadata used by
    :meth:`Plan.describe` and the plan compiler's wiring check, not a runtime
    dispatch mechanism.
    """

    #: Latency-profile stage name (Figure 17 vocabulary).
    name: str = ""
    #: Result fields the stage reads.
    inputs: Tuple[str, ...] = ()
    #: Result fields the stage writes.
    outputs: Tuple[str, ...] = ()
    #: True for store write-back stages, which sharded executors defer to a
    #: single merged transaction instead of running inline.
    writes_back: bool = False

    # ------------------------------------------------------------------ batch
    def ready(self, item: WorkItem) -> bool:
        """Whether the batch body should run (and be timed) for this item."""
        return True

    @abc.abstractmethod
    def run(self, item: WorkItem) -> None:
        """Batch body: consume ``inputs`` on the item, produce ``outputs``."""

    # -------------------------------------------------------------- streaming
    def wants_episode(self, item: WorkItem, episode: Episode) -> bool:
        """Whether the stage processes this sealed episode incrementally."""
        return False

    def absorb_episode(self, item: WorkItem, episode: Episode) -> None:
        """Incremental body: process one sealed episode (timed per episode)."""
        raise NotImplementedError(f"stage {self.name!r} does not absorb episodes")

    def close_out(self, item: WorkItem) -> None:
        """Untimed bookkeeping when the trajectory closes (result assembly)."""

    def finishes(self, item: WorkItem) -> bool:
        """Whether :meth:`finish` should run (and be timed) at close."""
        return False

    def finish(self, item: WorkItem) -> None:
        """Close-time body for work that needs the complete trajectory."""
        raise NotImplementedError(f"stage {self.name!r} has no close-time work")

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"inputs={list(self.inputs)} outputs={list(self.outputs)}>"
        )


# --------------------------------------------------------------------- ingest
class PreprocessingStage(abc.ABC):
    """A stage of the raw-stream preprocessing chain (before episodes exist)."""

    name: str = ""
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"inputs={list(self.inputs)} outputs={list(self.outputs)}>"
        )


class CleanStage(PreprocessingStage):
    """GPS cleaning: outlier removal + smoothing over a raw point stream."""

    name = "clean"
    inputs = ("raw_points",)
    outputs = ("cleaned_points",)

    def __init__(self, config: PipelineConfig):
        self._cleaner = GpsCleaner(config.cleaning, backend=config.compute.backend)

    def apply(self, points: Sequence[SpatioTemporalPoint]) -> List[SpatioTemporalPoint]:
        """Cleaned copy of the point stream."""
        return self._cleaner.clean(points)


class IdentifyStage(PreprocessingStage):
    """Trajectory identification: gap-based splitting of a cleaned stream."""

    name = "identify"
    inputs = ("cleaned_points",)
    outputs = ("trajectories",)

    def __init__(self, config: PipelineConfig):
        self._identifier = TrajectoryIdentifier(config.identification)

    def apply(
        self, points: Sequence[SpatioTemporalPoint], object_id: str = "unknown"
    ) -> List[RawTrajectory]:
        """Raw trajectories split out of the cleaned stream."""
        return self._identifier.split(points, object_id=object_id)


# ----------------------------------------------------------------- annotation
class ComputeEpisodesStage(Stage):
    """Stop/move segmentation of one raw trajectory.

    The streaming runtime never calls this stage's body: sessions segment
    incrementally with an
    :class:`~repro.streaming.stops.IncrementalStopMoveDetector` and the
    micro-batch executor records their measured time under this stage's
    ``name`` so both runtimes report the same latency vocabulary.
    """

    name = "compute_episode"
    inputs = ("trajectory",)
    outputs = ("episodes",)

    def __init__(self, config: PipelineConfig):
        self._detector = StopMoveDetector(config.stop_move, backend=config.compute.backend)

    @property
    def detector(self) -> StopMoveDetector:
        """The underlying stop/move detector."""
        return self._detector

    def run(self, item: WorkItem) -> None:
        item.result.episodes = self._detector.segment(item.trajectory)


class StoreTrajectoryStage(Stage):
    """Persist the raw trajectory (and its GPS records) into the store."""

    name = "store_episode"
    inputs = ("trajectory",)
    writes_back = True

    def __init__(self, store: SemanticTrajectoryStore):
        self._store = store

    @property
    def store(self) -> SemanticTrajectoryStore:
        """The semantic trajectory store written to."""
        return self._store

    def run(self, item: WorkItem) -> None:
        self._store.save_trajectory(item.trajectory)

    def finishes(self, item: WorkItem) -> bool:
        return True

    def finish(self, item: WorkItem) -> None:
        self.run(item)


class RegionJoinStage(Stage):
    """Region annotation layer: landuse spatial join over episodes."""

    name = "landuse_join"
    inputs = ("episodes",)
    outputs = ("region_trajectory",)

    def __init__(self, annotator: RegionAnnotator):
        self._annotator = annotator

    @property
    def annotator(self) -> RegionAnnotator:
        """The underlying region annotator."""
        return self._annotator

    def run(self, item: WorkItem) -> None:
        item.result.region_trajectory = self._annotator.annotate_episodes(item.result.episodes)

    def wants_episode(self, item: WorkItem, episode: Episode) -> bool:
        return True

    def absorb_episode(self, item: WorkItem, episode: Episode) -> None:
        item.region_records.append(self._annotator.annotate_episode(episode))

    def close_out(self, item: WorkItem) -> None:
        # Sealed episodes arrive in start order, so assembling the buffered
        # records reproduces the batch annotate_episodes() output exactly.
        trajectory = item.trajectory
        item.result.region_trajectory = StructuredSemanticTrajectory(
            trajectory_id=f"{trajectory.trajectory_id}:region-episodes",
            object_id=trajectory.object_id,
            records=item.region_records,
        )


class MapMatchStage(Stage):
    """Line annotation layer: global map matching + transport modes on moves."""

    name = "map_match"
    inputs = ("episodes",)
    outputs = ("line_trajectories",)

    def __init__(self, annotator: LineAnnotator, config: PipelineConfig):
        self._annotator = annotator
        self._network: RoadNetwork = annotator.matcher.network
        self._config = config

    @property
    def annotator(self) -> LineAnnotator:
        """The underlying line annotator."""
        return self._annotator

    def run(self, item: WorkItem) -> None:
        item.result.line_trajectories = self._annotator.annotate_episodes(
            [episode for episode in item.result.episodes if episode.is_move]
        )

    def wants_episode(self, item: WorkItem, episode: Episode) -> bool:
        return episode.is_move

    def absorb_episode(self, item: WorkItem, episode: Episode) -> None:
        matcher = item.windowed_matcher
        assert matcher is not None, "micro-batch executor must supply a windowed matcher"
        matched = matcher.match_stream(list(episode.points))
        item.result.line_trajectories.append(self._annotator.annotate_matched(episode, matched))

    def make_windowed_matcher(self) -> WindowedMapMatcher:
        """A fresh streaming matcher over the (shared, frozen) road index.

        The matcher is stateful per episode, so each micro-batch executor
        owns its own; the expensive part — the road-network index — stays
        shared with the batch annotator.
        """
        return WindowedMapMatcher(
            self._network,
            self._config.map_matching,
            backend=self._config.compute.backend,
            index_backend=self._config.compute.resolved_index_backend,
        )


class PoiAnnotationStage(Stage):
    """Point annotation layer: HMM decoding of the stop sequence.

    Viterbi is a sequence-level maximum-a-posteriori decoder, so this stage
    has no incremental body: in the streaming runtime it runs at trajectory
    close over the full stop sequence, exactly like the batch body.
    """

    name = "poi_annotation"
    inputs = ("episodes",)
    outputs = ("point_trajectory", "trajectory_category")

    def __init__(self, annotator: PointAnnotator):
        self._annotator = annotator

    @property
    def annotator(self) -> PointAnnotator:
        """The underlying point annotator."""
        return self._annotator

    def ready(self, item: WorkItem) -> bool:
        return any(episode.is_stop for episode in item.result.episodes)

    def run(self, item: WorkItem) -> None:
        stops = [episode for episode in item.result.episodes if episode.is_stop]
        item.result.point_trajectory = self._annotator.annotate_stops(stops)
        item.result.trajectory_category = self._annotator.classify_trajectory(stops)

    def finishes(self, item: WorkItem) -> bool:
        return self.ready(item)

    def finish(self, item: WorkItem) -> None:
        self.run(item)


class StoreEpisodesStage(Stage):
    """Persist the annotated episodes (and their annotations) into the store."""

    name = "store_match_result"
    inputs = ("episodes",)
    writes_back = True

    def __init__(self, store: SemanticTrajectoryStore):
        self._store = store

    @property
    def store(self) -> SemanticTrajectoryStore:
        """The semantic trajectory store written to."""
        return self._store

    def run(self, item: WorkItem) -> None:
        self._store.save_episodes(item.result.episodes)

    def finishes(self, item: WorkItem) -> bool:
        return True

    def finish(self, item: WorkItem) -> None:
        self.run(item)
