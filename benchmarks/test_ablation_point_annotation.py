"""Ablations of the point-annotation (HMM) design choices.

Section 4.3 motivates two design decisions that are isolated here:

* the HMM over POI categories (with state transitions) versus a memory-less
  baseline that labels each stop with its nearest POI's category — the HMM
  uses the stop sequence context, which matters when a stop sits between two
  category clusters;
* the grid discretisation of the observation probabilities versus the exact
  per-stop Gaussian sums — discretisation trades a bounded approximation error
  for a large reduction in repeated probability computations.
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.core.config import PointAnnotationConfig
from repro.points.annotator import PointAnnotator
from repro.points.observation import PoiObservationModel
from repro.preprocessing.stops import StopMoveDetector


def _collect_stops(car_dataset, config):
    detector = StopMoveDetector(config.stop_move)
    all_stops = []
    for trajectory in car_dataset.trajectories:
        stops = detector.stops(trajectory)
        if stops:
            all_stops.append(stops)
    return all_stops


def test_ablation_hmm_vs_nearest_poi(benchmark, world, car_dataset, vehicle_pipeline):
    poi_source = world.poi_source()
    annotator = PointAnnotator(poi_source, vehicle_pipeline.config.point)
    stops_per_trajectory = _collect_stops(car_dataset, vehicle_pipeline.config)

    def run():
        agreement = 0
        total = 0
        hmm_histogram: dict = {}
        nearest_histogram: dict = {}
        for stops in stops_per_trajectory:
            hmm_categories = annotator.infer_stop_categories(stops)
            for stop, hmm_category in zip(stops, hmm_categories):
                nearest = poi_source.nearest(stop.center(), count=1)
                nearest_category = nearest[0][1].category if nearest else "unknown"
                hmm_histogram[hmm_category] = hmm_histogram.get(hmm_category, 0) + 1
                nearest_histogram[nearest_category] = (
                    nearest_histogram.get(nearest_category, 0) + 1
                )
                agreement += int(hmm_category == nearest_category)
                total += 1
        return agreement, total, hmm_histogram, nearest_histogram

    agreement, total, hmm_histogram, nearest_histogram = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = []
    for category in poi_source.categories():
        rows.append(
            [
                category,
                hmm_histogram.get(category, 0),
                nearest_histogram.get(category, 0),
            ]
        )
    text = render_table(
        ["category", "HMM stops", "nearest-POI stops"],
        rows,
        title=(
            "Ablation - HMM point annotation vs nearest-POI baseline\n"
            f"{total} stops, agreement {100 * agreement / max(total, 1):.1f}%"
        ),
    )
    save_result("ablation_hmm_vs_nearest", text)

    assert total > 0
    # The two methods agree on the easy stops but not everywhere: the HMM uses
    # sequence context, the baseline does not.
    assert 0.3 < agreement / total <= 1.0


def test_ablation_grid_discretisation(benchmark, world, car_dataset, vehicle_pipeline):
    poi_source = world.poi_source()
    stops_per_trajectory = _collect_stops(car_dataset, vehicle_pipeline.config)
    centers = [stop.center() for stops in stops_per_trajectory for stop in stops]
    categories = poi_source.categories()

    discretised_model = PoiObservationModel(poi_source, vehicle_pipeline.config.point)
    exact_config = PointAnnotationConfig(
        grid_cell_size=vehicle_pipeline.config.point.grid_cell_size,
        neighbor_radius=vehicle_pipeline.config.point.neighbor_radius,
        default_sigma=vehicle_pipeline.config.point.default_sigma,
    )
    exact_model = PoiObservationModel(poi_source, exact_config)

    def run_discretised():
        for center in centers:
            for category in categories:
                discretised_model.probability(category, center)

    benchmark.pedantic(run_discretised, rounds=1, iterations=1)

    started = time.perf_counter()
    max_error = 0.0
    for center in centers[:200]:
        discretised_scores = discretised_model.category_scores(center)
        exact_scores = {
            category: exact_model._exact_probability(category, center) for category in categories
        }
        exact_total = sum(exact_scores.values())
        for category in categories:
            exact_share = exact_scores[category] / exact_total if exact_total else 0.0
            max_error = max(max_error, abs(discretised_scores[category] - exact_share))
    exact_seconds = time.perf_counter() - started

    text = render_table(
        ["metric", "value"],
        [
            ["stops scored", len(centers)],
            ["grid cells cached", discretised_model.cache_size()],
            ["max |discretised - exact| category share", f"{max_error:.3f}"],
            ["exact-recomputation time for 200 stops (s)", f"{exact_seconds:.3f}"],
        ],
        title="Ablation - grid discretisation of observation probabilities",
    )
    save_result("ablation_grid_discretisation", text)

    assert discretised_model.cache_size() > 0
    assert max_error < 0.6
