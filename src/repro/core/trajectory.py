"""Semantic and structured semantic trajectories (Definitions 3 and 4).

A :class:`SemanticTrajectory` keeps per-point annotation sets (Definition 3);
a :class:`StructuredSemanticTrajectory` is the episode-level representation
the annotation layers produce (Definition 4): a sequence of tuples
``(semantic place, time_in, time_out, annotations)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.annotations import Annotation, AnnotationKind, GeographicReferenceAnnotation, ValueAnnotation
from repro.core.episodes import Episode, EpisodeKind
from repro.core.errors import DataQualityError
from repro.core.places import SemanticPlace
from repro.core.points import RawTrajectory, SpatioTemporalPoint


@dataclass
class AnnotatedPoint:
    """A GPS point plus its (possibly empty) set of annotations."""

    point: SpatioTemporalPoint
    annotations: List[Annotation] = field(default_factory=list)

    def add(self, annotation: Annotation) -> None:
        """Attach an annotation to this point."""
        self.annotations.append(annotation)


class SemanticTrajectory:
    """Definition 3: a trajectory whose points carry annotation sets."""

    def __init__(self, raw: RawTrajectory):
        self._raw = raw
        self._annotated = [AnnotatedPoint(point) for point in raw]

    @property
    def raw(self) -> RawTrajectory:
        """The underlying raw trajectory."""
        return self._raw

    def __len__(self) -> int:
        return len(self._annotated)

    def __iter__(self) -> Iterator[AnnotatedPoint]:
        return iter(self._annotated)

    def __getitem__(self, index: int) -> AnnotatedPoint:
        return self._annotated[index]

    def annotate_point(self, index: int, annotation: Annotation) -> None:
        """Attach ``annotation`` to the point at ``index``."""
        self._annotated[index].add(annotation)

    def annotate_range(self, start: int, end: int, annotation: Annotation) -> None:
        """Attach ``annotation`` to every point in ``[start, end)``."""
        if start < 0 or end > len(self._annotated) or start >= end:
            raise DataQualityError(f"invalid annotation range [{start}, {end})")
        for index in range(start, end):
            self._annotated[index].add(annotation)

    def annotation_count(self) -> int:
        """Total number of annotations attached to points."""
        return sum(len(annotated.annotations) for annotated in self._annotated)


@dataclass
class SemanticEpisodeRecord:
    """One tuple of a structured semantic trajectory (Definition 4).

    Attributes
    ----------
    place:
        The semantic place the episode is linked to, or None when no suitable
        place was found (partial annotation).
    time_in / time_out:
        Entry and exit times of the moving object.
    kind:
        Stop or move (copied from the source episode).
    annotations:
        Additional annotations (activity, transportation mode, ...).
    source_episode:
        The computation-layer episode this record summarises, when available.
    """

    place: Optional[SemanticPlace]
    time_in: float
    time_out: float
    kind: EpisodeKind
    annotations: List[Annotation] = field(default_factory=list)
    source_episode: Optional[Episode] = None

    def __post_init__(self) -> None:
        if self.time_out < self.time_in:
            raise DataQualityError(
                f"episode record has inverted time interval [{self.time_in}, {self.time_out}]"
            )

    @property
    def duration(self) -> float:
        """Duration of the record in seconds."""
        return self.time_out - self.time_in

    @property
    def place_category(self) -> Optional[str]:
        """Category of the linked place, or None."""
        return self.place.category if self.place is not None else None

    def value_of(self, label: str) -> Optional[object]:
        """Value of the first :class:`ValueAnnotation` with the given label."""
        for annotation in self.annotations:
            if isinstance(annotation, ValueAnnotation) and annotation.label == label:
                return annotation.value
        return None

    @property
    def transport_mode(self) -> Optional[str]:
        """Transportation-mode value when present."""
        value = self.value_of("transport_mode")
        return str(value) if value is not None else None

    @property
    def activity(self) -> Optional[str]:
        """Activity value when present."""
        value = self.value_of("activity")
        return str(value) if value is not None else None


class StructuredSemanticTrajectory:
    """Definition 4: a sequence of semantic episode records.

    Records must be time-ordered; consecutive records that reference the same
    place and kind can be merged with :meth:`merged`, which is the compression
    step Algorithm 1 applies when consecutive regions coincide.
    """

    def __init__(
        self,
        trajectory_id: str,
        object_id: str,
        records: Sequence[SemanticEpisodeRecord] = (),
    ):
        self.trajectory_id = trajectory_id
        self.object_id = object_id
        self._records: List[SemanticEpisodeRecord] = []
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SemanticEpisodeRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> SemanticEpisodeRecord:
        return self._records[index]

    @property
    def records(self) -> List[SemanticEpisodeRecord]:
        """The episode records, in time order."""
        return list(self._records)

    def append(self, record: SemanticEpisodeRecord) -> None:
        """Append a record; its time interval must not start before the last one."""
        if self._records and record.time_in < self._records[-1].time_in:
            raise DataQualityError("structured trajectory records must be time-ordered")
        self._records.append(record)

    def merged(self) -> "StructuredSemanticTrajectory":
        """Merge consecutive records with the same place and kind.

        Mirrors the ``if current regtype = previous regtype then merge`` step
        of Algorithm 1.  Annotations of merged records are concatenated.
        """
        merged = StructuredSemanticTrajectory(self.trajectory_id, self.object_id)
        for record in self._records:
            if merged._records:
                last = merged._records[-1]
                same_place = (
                    (last.place is None and record.place is None)
                    or (
                        last.place is not None
                        and record.place is not None
                        and last.place.place_id == record.place.place_id
                    )
                )
                if same_place and last.kind is record.kind:
                    merged._records[-1] = SemanticEpisodeRecord(
                        place=last.place,
                        time_in=last.time_in,
                        time_out=max(last.time_out, record.time_out),
                        kind=last.kind,
                        annotations=list(last.annotations) + list(record.annotations),
                        source_episode=last.source_episode,
                    )
                    continue
            merged._records.append(record)
        return merged

    # -------------------------------------------------------------- analysis
    @property
    def duration(self) -> float:
        """Time span covered by the records."""
        if not self._records:
            return 0.0
        return self._records[-1].time_out - self._records[0].time_in

    def stops(self) -> List[SemanticEpisodeRecord]:
        """Records of kind stop."""
        return [record for record in self._records if record.kind is EpisodeKind.STOP]

    def moves(self) -> List[SemanticEpisodeRecord]:
        """Records of kind move."""
        return [record for record in self._records if record.kind is EpisodeKind.MOVE]

    def category_durations(self) -> Dict[str, float]:
        """Total time spent per place category (ignores records without a place)."""
        durations: Dict[str, float] = {}
        for record in self._records:
            category = record.place_category
            if category is None:
                continue
            durations[category] = durations.get(category, 0.0) + record.duration
        return durations

    def dominant_category(self) -> Optional[str]:
        """Equation 8: the category with maximum total stop time.

        Only stop records enter the computation, as in the paper's trajectory
        classification; returns None when no stop record has a place.
        """
        durations: Dict[str, float] = {}
        for record in self.stops():
            category = record.place_category
            if category is None:
                continue
            durations[category] = durations.get(category, 0.0) + record.duration
        if not durations:
            return None
        return max(durations.items(), key=lambda pair: (pair[1], pair[0]))[0]

    def mode_sequence(self) -> List[str]:
        """Transportation modes of the move records, in order (gaps skipped)."""
        modes: List[str] = []
        for record in self.moves():
            mode = record.transport_mode
            if mode is not None:
                modes.append(mode)
        return modes

    def place_sequence(self) -> List[str]:
        """Sequence of referenced place identifiers (records without place skipped)."""
        return [record.place.place_id for record in self._records if record.place is not None]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StructuredSemanticTrajectory(id={self.trajectory_id!r}, "
            f"records={len(self._records)})"
        )
