"""Scalar-versus-numpy speedups of the hot-path kernels (the bench-gate set).

Times the vectorized kernels of :mod:`repro.geometry.vectorized` (and the
flag kernels built on them) against their pure-Python reference loops on a
dwell-heavy 15k-point trajectory — the shape the acceptance criterion names:
stop-flag and distance kernels must be at least 3x faster vectorized on
trajectories of 10k+ points.

Every timing also asserts output equality first, so a "fast but wrong"
kernel can never post a speedup.  The recorded metrics are *ratios*
(vectorized over scalar on the same machine, same process), which makes the
CI regression gate robust to absolute machine speed; the sidecar still
carries machine metadata for like-with-like checks.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

import numpy as np

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.core.arrays import TrajectoryArrays
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.geometry.distance import point_segment_distance
from repro.geometry.kernels import gaussian_kernel_weight
from repro.geometry.primitives import Point, Segment
from repro.geometry.vectorized import (
    consecutive_distances,
    gaussian_kernel_weights,
    point_segment_distances,
)
from repro.preprocessing.stops import (
    density_stop_flags,
    density_stop_flags_arrays,
    velocity_stop_flags,
    velocity_stop_flags_arrays,
)

POINT_COUNT = 15_000
SPEED_THRESHOLD = 1.5
DENSITY_RADIUS = 60.0
MIN_STOP_DURATION = 150.0
KERNEL_BANDWIDTH = 50.0
KERNEL_RADIUS = 100.0
#: The acceptance floor for the gated kernels (stop flags + distances).
REQUIRED_SPEEDUP = 3.0
_REPEATS = 5


def _dwell_heavy_trajectory(n: int = POINT_COUNT, seed: int = 97) -> RawTrajectory:
    """A synthetic trajectory mixing move stretches with long dwell clusters."""
    rng = np.random.default_rng(seed)
    points: List[SpatioTemporalPoint] = []
    t, x, y = 0.0, 1000.0, 1000.0
    dwell = 0
    for _ in range(n):
        t += float(rng.uniform(10.0, 30.0))
        if dwell > 0:
            dwell -= 1
            x += float(rng.normal(0.0, 2.0))
            y += float(rng.normal(0.0, 2.0))
        else:
            if rng.random() < 0.02:
                dwell = int(rng.integers(20, 60))
            x += float(rng.normal(0.0, 25.0))
            y += float(rng.normal(0.0, 25.0))
        points.append(SpatioTemporalPoint(x, y, t))
    return RawTrajectory(points, object_id="bench", trajectory_id="bench-0")


def _best_of(fn: Callable[[], object], repeats: int = _REPEATS) -> Tuple[float, object]:
    """Minimum wall time over ``repeats`` runs, plus the last return value."""
    best = float("inf")
    value: object = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def test_vectorized_kernel_speedups(benchmark):
    trajectory = _dwell_heavy_trajectory()
    points = trajectory.points
    arrays = TrajectoryArrays.from_trajectory(trajectory)

    # Batched segment geometry: one query point against POINT_COUNT segments.
    seg_rng = np.random.default_rng(131)
    axs = seg_rng.uniform(0.0, 4000.0, size=POINT_COUNT)
    ays = seg_rng.uniform(0.0, 4000.0, size=POINT_COUNT)
    bxs = axs + seg_rng.uniform(-120.0, 120.0, size=POINT_COUNT)
    bys = ays + seg_rng.uniform(-120.0, 120.0, size=POINT_COUNT)
    segments = [
        Segment(Point(ax, ay), Point(bx, by)) for ax, ay, bx, by in zip(axs, ays, bxs, bys)
    ]
    query = Point(2000.0, 2000.0)
    kernel_distances = seg_rng.uniform(0.0, 2.0 * KERNEL_RADIUS, size=POINT_COUNT)
    kernel_distance_list = kernel_distances.tolist()

    measured = {}

    def run_all():
        cases = {
            "stop_flags_velocity": (
                lambda: velocity_stop_flags(points, SPEED_THRESHOLD),
                lambda: velocity_stop_flags_arrays(arrays, SPEED_THRESHOLD),
            ),
            "stop_flags_density": (
                lambda: density_stop_flags(points, DENSITY_RADIUS, MIN_STOP_DURATION),
                lambda: density_stop_flags_arrays(arrays, DENSITY_RADIUS, MIN_STOP_DURATION),
            ),
            "consecutive_distances": (
                lambda: [points[i].distance_to(points[i + 1]) for i in range(len(points) - 1)],
                lambda: consecutive_distances(arrays.xs, arrays.ys).tolist(),
            ),
            "point_segment_distances": (
                lambda: [point_segment_distance(query, segment) for segment in segments],
                lambda: point_segment_distances(
                    query.x, query.y, axs, ays, bxs, bys
                ).tolist(),
            ),
            "gaussian_kernel_weights": (
                lambda: [
                    gaussian_kernel_weight(d, KERNEL_BANDWIDTH, KERNEL_RADIUS)
                    for d in kernel_distance_list
                ],
                lambda: gaussian_kernel_weights(
                    kernel_distances, KERNEL_BANDWIDTH, KERNEL_RADIUS
                ).tolist(),
            ),
        }
        for name, (scalar_fn, vector_fn) in cases.items():
            scalar_seconds, scalar_value = _best_of(scalar_fn)
            vector_seconds, vector_value = _best_of(vector_fn)
            if name == "gaussian_kernel_weights":
                # exp-based kernel: documented 1-ulp tolerance per element.
                assert np.allclose(scalar_value, vector_value, rtol=1e-14, atol=0.0)
            else:
                assert scalar_value == vector_value  # bit-for-bit
            measured[name] = (scalar_seconds, vector_seconds)
        return measured

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    metrics = {}
    for name, (scalar_seconds, vector_seconds) in measured.items():
        speedup = scalar_seconds / vector_seconds
        metrics[f"speedup_{name}"] = round(speedup, 2)
        rows.append(
            [
                name,
                f"{scalar_seconds * 1e3:.2f}",
                f"{vector_seconds * 1e3:.2f}",
                f"{speedup:.1f}x",
            ]
        )
    text = render_table(
        ["kernel", "python (ms)", "numpy (ms)", "speedup"],
        rows,
        title=f"Vectorized kernel speedups ({POINT_COUNT} points, best of {_REPEATS})",
    )
    save_result(
        "vectorized_kernels",
        text,
        data={
            "point_count": POINT_COUNT,
            "repeats": _REPEATS,
            "seconds": {
                name: {"python": s, "numpy": v} for name, (s, v) in measured.items()
            },
        },
        metrics=metrics,
    )

    # The acceptance floor: stop-flag + distance kernels at >= 3x.
    for gated in ("stop_flags_velocity", "consecutive_distances", "point_segment_distances"):
        assert metrics[f"speedup_{gated}"] >= REQUIRED_SPEEDUP, (
            f"{gated} speedup {metrics[f'speedup_{gated}']}x below the "
            f"{REQUIRED_SPEEDUP}x acceptance floor"
        )
