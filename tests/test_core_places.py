"""Unit tests for semantic places (Definition 2)."""

from __future__ import annotations

import pytest

from repro.core.places import (
    LineOfInterest,
    PlaceKind,
    PointOfInterest,
    RegionOfInterest,
)
from repro.geometry.primitives import BoundingBox, Point, Polygon, Segment


class TestRegionOfInterest:
    def test_rectangle_region(self):
        region = RegionOfInterest(
            place_id="r1", name="cell", category="1.2", extent=BoundingBox(0, 0, 100, 100)
        )
        assert region.kind is PlaceKind.REGION
        assert region.contains(Point(50, 50))
        assert not region.contains(Point(150, 50))
        assert region.area == pytest.approx(10_000)
        assert region.center == Point(50, 50)

    def test_polygon_region(self):
        polygon = Polygon([Point(0, 0), Point(4, 0), Point(0, 4)])
        region = RegionOfInterest(place_id="r2", name="tri", category="1.5", extent=polygon)
        assert region.contains(Point(1, 1))
        assert not region.contains(Point(3, 3))
        assert region.bounding_box() == polygon.bounding_box

    def test_region_requires_extent(self):
        with pytest.raises(ValueError):
            RegionOfInterest(place_id="r3", name="none", category="1.1")

    def test_attributes_default_empty(self):
        region = RegionOfInterest(
            place_id="r4", name="cell", category="1.2", extent=BoundingBox(0, 0, 1, 1)
        )
        assert region.attributes == {}


class TestLineOfInterest:
    def test_basic_segment(self):
        line = LineOfInterest(
            place_id="l1",
            name="main street",
            category="road",
            segment=Segment(Point(0, 0), Point(100, 0)),
        )
        assert line.kind is PlaceKind.LINE
        assert line.length == pytest.approx(100.0)
        assert line.bounding_box().contains_point(Point(50, 0))

    def test_supports_mode(self):
        line = LineOfInterest(
            place_id="l2",
            name="metro",
            category="metro_line",
            segment=Segment(Point(0, 0), Point(10, 0)),
            road_type="metro_line",
            allowed_modes=("metro",),
        )
        assert line.supports_mode("metro")
        assert not line.supports_mode("walk")

    def test_line_requires_segment(self):
        with pytest.raises(ValueError):
            LineOfInterest(place_id="l3", name="x", category="road")


class TestPointOfInterest:
    def test_basic_poi(self):
        poi = PointOfInterest(
            place_id="p1", name="cafe", category="feedings", location=Point(3, 4)
        )
        assert poi.kind is PlaceKind.POINT
        assert poi.distance_to(Point(0, 0)) == pytest.approx(5.0)
        box = poi.bounding_box()
        assert box.min_x == box.max_x == 3

    def test_poi_requires_location(self):
        with pytest.raises(ValueError):
            PointOfInterest(place_id="p2", name="x", category="services")

    def test_places_are_frozen(self):
        poi = PointOfInterest(place_id="p3", name="shop", category="item sale", location=Point(0, 0))
        with pytest.raises(AttributeError):
            poi.name = "other"  # type: ignore[misc]
