"""Per-trajectory tracing: spans with parent links across every runtime.

A trace follows one trajectory through the stage graph: the **trace id is the
trajectory id**, the root span covers the trajectory's whole journey through
an executor and every stage execution (batch body, incremental episode
absorption, close-time finish) becomes a child span.  Spans are plain
picklable dataclasses, which is what lets them survive the
``ProcessPoolExecutor`` boundary: worker-side tracers buffer their spans on
the :class:`~repro.core.pipeline.PipelineResult` they belong to, the result
rides back with the shard, and the parent-process tracer *adopts* the spans —
re-assigning span ids into its own id space while preserving the parent links
— when the shards are merged (see :meth:`Tracer.adopt`).

This module is dependency-free on purpose: :mod:`repro.core.pipeline` only
needs the :class:`Span` type, and the exporters need nothing else.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence

from repro.analytics.latency import LatencyProfile


@dataclass
class Span:
    """One timed operation inside a trajectory's trace.

    ``trace_id`` is the trajectory id; ``parent_id`` links stage spans to the
    trajectory's root span (``parent_id is None``).  ``pid`` records the
    process that emitted the span, which is how the round-trip tests prove
    spans emitted inside pool workers survived the process boundary.
    """

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    """Wall-clock start (seconds since the epoch)."""
    duration: float
    """Measured duration in seconds."""
    pid: int = field(default_factory=os.getpid)
    attributes: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """JSON-serialisable rendering (the JSONL exporter line payload)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "attributes": self.attributes,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        """Inverse of :meth:`as_dict` (the JSONL import path)."""
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=int(payload["span_id"]),  # type: ignore[arg-type]
            parent_id=(
                None if payload.get("parent_id") is None else int(payload["parent_id"])  # type: ignore[arg-type]
            ),
            name=str(payload["name"]),
            start=float(payload["start"]),  # type: ignore[arg-type]
            duration=float(payload["duration"]),  # type: ignore[arg-type]
            pid=int(payload.get("pid", 0)),  # type: ignore[arg-type]
            attributes=dict(payload.get("attributes") or {}),  # type: ignore[arg-type]
        )


class Tracer:
    """Allocates span ids and collects the finished spans of one process.

    Executors running in the parent process hand every finished trajectory's
    spans to :meth:`adopt`, which also accepts spans produced by *another*
    tracer (a pool worker's) — ids are remapped into this tracer's id space so
    the merged buffer stays collision-free while the tree structure survives.
    """

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self.spans: List[Span] = []

    def __len__(self) -> int:
        return len(self.spans)

    def start_trace(self, trace_id: str) -> "TrajectoryTrace":
        """Open the root span of one trajectory's trace."""
        return TrajectoryTrace(self, trace_id)

    def next_id(self) -> int:
        """A fresh span id, unique within this tracer."""
        return next(self._ids)

    def adopt(self, spans: Sequence[Span]) -> List[Span]:
        """Fold one trajectory's finished spans into this tracer's buffer.

        Ids are re-assigned from this tracer's sequence (worker tracers start
        their own sequences at 1, so raw ids from two shards collide); parent
        links are remapped alongside.  A parent id that does not reference a
        span in ``spans`` is dropped to ``None`` — each trajectory's span list
        is self-contained, so this only guards against malformed input.
        """
        mapping = {span.span_id: self.next_id() for span in spans}
        adopted = [
            replace(
                span,
                span_id=mapping[span.span_id],
                parent_id=None if span.parent_id is None else mapping.get(span.parent_id),
            )
            for span in spans
        ]
        self.spans.extend(adopted)
        return adopted

    def traces(self) -> List[str]:
        """Distinct trace ids in collection order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def spans_for(self, trace_id: str) -> List[Span]:
        """All collected spans of one trace, in finish order."""
        return [span for span in self.spans if span.trace_id == trace_id]


class TrajectoryTrace:
    """The open trace of one trajectory moving through an executor.

    Holds the open root span plus the finished stage spans; :meth:`close`
    seals the root and attaches the whole buffer to the trajectory's
    :class:`~repro.core.pipeline.PipelineResult`, which is the vehicle that
    carries worker-side spans back across the process-pool boundary.
    """

    def __init__(self, tracer: Tracer, trace_id: str) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self._root_id = tracer.next_id()
        self._root_start = time.time()
        self._root_started = time.perf_counter()
        self._spans: List[Span] = []

    @property
    def root_id(self) -> int:
        """Span id of the trajectory's root span."""
        return self._root_id

    @contextmanager
    def stage(self, name: str, profile: LatencyProfile) -> Iterator[None]:
        """Time one stage execution: one latency sample plus one child span.

        The profile sample and the span duration come from the *same*
        ``perf_counter`` pair, so enabling tracing cannot skew the Figure 17
        numbers relative to the timer-only path.
        """
        start = time.time()
        started = time.perf_counter()
        status: Dict[str, object] = {}
        try:
            yield
        except BaseException as error:
            status = {"status": "error", "error": type(error).__name__}
            raise
        finally:
            duration = time.perf_counter() - started
            profile.add(name, duration)
            self._spans.append(
                Span(
                    trace_id=self.trace_id,
                    span_id=self._tracer.next_id(),
                    parent_id=self._root_id,
                    name=name,
                    start=start,
                    duration=duration,
                    attributes=status,
                )
            )

    def record(self, name: str, seconds: float) -> None:
        """Add a child span for an externally measured duration.

        Used where the executor measures time outside the stage bodies (the
        streaming session's incremental segmentation); the start timestamp is
        back-dated by the measured duration.
        """
        self._spans.append(
            Span(
                trace_id=self.trace_id,
                span_id=self._tracer.next_id(),
                parent_id=self._root_id,
                name=name,
                start=time.time() - seconds,
                duration=seconds,
            )
        )

    def close(self) -> List[Span]:
        """Seal the root span; returns the trace's spans, root first."""
        root = Span(
            trace_id=self.trace_id,
            span_id=self._root_id,
            parent_id=None,
            name="trajectory",
            start=self._root_start,
            duration=time.perf_counter() - self._root_started,
        )
        spans = [root] + self._spans
        self._spans = []
        return spans


# ------------------------------------------------------------------ span trees
@dataclass
class SpanNode:
    """One node of a rebuilt span tree."""

    span: Span
    children: List["SpanNode"] = field(default_factory=list)


def build_span_tree(spans: Sequence[Span]) -> Dict[str, List[SpanNode]]:
    """Rebuild per-trace span trees from a flat span list (e.g. a JSONL dump).

    Returns ``trace_id -> roots``; children keep span order.  Spans whose
    parent is missing from the input become roots of their trace, so a
    partial export still renders.
    """
    nodes = {span.span_id: SpanNode(span) for span in spans}
    forests: Dict[str, List[SpanNode]] = {}
    for span in spans:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None and parent.span.trace_id == span.trace_id:
            parent.children.append(node)
        else:
            forests.setdefault(span.trace_id, []).append(node)
    return forests


def render_span_tree(spans: Sequence[Span]) -> str:
    """Human-readable indented rendering of the span trees in ``spans``."""
    lines: List[str] = []

    def walk(node: SpanNode, depth: int) -> None:
        span = node.span
        lines.append(
            f"{'  ' * depth}{span.name}  {span.duration * 1e3:.3f} ms  "
            f"(span {span.span_id}, pid {span.pid})"
        )
        for child in node.children:
            walk(child, depth + 1)

    for trace_id, roots in build_span_tree(spans).items():
        lines.append(f"trace {trace_id}:")
        for root in roots:
            walk(root, 1)
    return "\n".join(lines)
