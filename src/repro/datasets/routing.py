"""Shortest-path routing over a road network.

The movement simulators plan trips as shortest paths over the crossing graph
of a :class:`~repro.lines.road_network.RoadNetwork`.  The router builds an
undirected weighted graph whose nodes are segment endpoints (snapped to a
small grid so floating-point endpoints that should coincide do) and whose
edges are the road segments, then answers shortest-path queries with
Dijkstra's algorithm.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.errors import SourceError
from repro.core.places import LineOfInterest
from repro.geometry.primitives import Point
from repro.lines.road_network import RoadNetwork

NodeKey = Tuple[int, int]


def _node_key(point: Point) -> NodeKey:
    return (round(point.x * 10), round(point.y * 10))


class RoadRouter:
    """Dijkstra routing over the crossing graph of a road network.

    Parameters
    ----------
    network:
        The road network to route over.
    allowed_types:
        Road types the traveller may use (None allows every type).
    weight:
        ``"distance"`` minimises travelled length; ``"time"`` divides each
        segment length by its travel speed, which makes fast links (metro,
        highway) attractive for the multimodal commute simulation.
    type_speeds:
        Optional travel speed per road type (m/s), used with ``weight="time"``
        to model the traveller (e.g. walking on roads but riding the metro);
        road types not listed fall back to the segment's speed limit.
    """

    def __init__(
        self,
        network: RoadNetwork,
        allowed_types: Optional[Sequence[str]] = None,
        weight: str = "distance",
        type_speeds: Optional[Dict[str, float]] = None,
    ):
        if weight not in ("distance", "time"):
            raise ValueError("weight must be 'distance' or 'time'")
        self._network = network
        self._allowed_types = set(allowed_types) if allowed_types is not None else None
        self._nodes: Dict[NodeKey, Point] = {}
        self._edges: Dict[NodeKey, List[Tuple[NodeKey, float, str]]] = {}
        speeds = type_speeds or {}
        for segment in network.segments:
            if self._allowed_types is not None and segment.road_type not in self._allowed_types:
                continue
            start_key = _node_key(segment.segment.start)
            end_key = _node_key(segment.segment.end)
            self._nodes.setdefault(start_key, segment.segment.start)
            self._nodes.setdefault(end_key, segment.segment.end)
            length = max(segment.length, 1e-6)
            if weight == "distance":
                cost = length
            else:
                speed = speeds.get(segment.road_type, segment.speed_limit)
                cost = length / max(speed, 0.1)
            self._edges.setdefault(start_key, []).append((end_key, cost, segment.place_id))
            self._edges.setdefault(end_key, []).append((start_key, cost, segment.place_id))
        if not self._nodes:
            raise SourceError("the road network has no segments of the allowed types")

    # --------------------------------------------------------------- helpers
    @property
    def node_count(self) -> int:
        """Number of crossings in the routing graph."""
        return len(self._nodes)

    def nearest_node(self, point: Point) -> NodeKey:
        """The crossing closest to ``point``."""
        return min(
            self._nodes.items(), key=lambda item: item[1].distance_to(point)
        )[0]

    def node_position(self, key: NodeKey) -> Point:
        """Position of a crossing."""
        return self._nodes[key]

    # ---------------------------------------------------------------- routing
    def shortest_path(
        self, origin: Point, destination: Point
    ) -> Tuple[List[Point], List[str]]:
        """Shortest path between the crossings nearest to origin and destination.

        Returns ``(waypoints, segment_ids)``: the sequence of crossing
        positions visited and the identifier of the road segment travelled
        between each pair of consecutive waypoints.  Raises
        :class:`SourceError` when the two crossings are not connected.
        """
        source = self.nearest_node(origin)
        target = self.nearest_node(destination)
        if source == target:
            return [self._nodes[source]], []

        distances: Dict[NodeKey, float] = {source: 0.0}
        previous: Dict[NodeKey, Tuple[NodeKey, str]] = {}
        visited: Set[NodeKey] = set()
        heap: List[Tuple[float, NodeKey]] = [(0.0, source)]

        while heap:
            distance, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == target:
                break
            for neighbor, weight, segment_id in self._edges.get(node, ()):
                if neighbor in visited:
                    continue
                candidate = distance + weight
                if candidate < distances.get(neighbor, math.inf):
                    distances[neighbor] = candidate
                    previous[neighbor] = (node, segment_id)
                    heapq.heappush(heap, (candidate, neighbor))

        if target not in distances:
            raise SourceError("origin and destination are not connected in the road network")

        waypoints: List[Point] = [self._nodes[target]]
        segment_ids: List[str] = []
        cursor = target
        while cursor != source:
            parent, segment_id = previous[cursor]
            waypoints.append(self._nodes[parent])
            segment_ids.append(segment_id)
            cursor = parent
        waypoints.reverse()
        segment_ids.reverse()
        return waypoints, segment_ids

    def path_length(self, waypoints: Sequence[Point]) -> float:
        """Total length of a waypoint polyline."""
        total = 0.0
        for previous_point, current in zip(waypoints, waypoints[1:]):
            total += previous_point.distance_to(current)
        return total
