"""Unit tests for transportation-mode inference."""

from __future__ import annotations

import pytest

from repro.core.config import TransportModeConfig
from repro.core.points import SpatioTemporalPoint
from repro.geometry.primitives import Point
from repro.lines.map_matching import MatchedPoint
from repro.lines.road_network import make_road_segment
from repro.lines.transport_mode import (
    TRANSPORT_MODES,
    ModeSegment,
    TransportModeClassifier,
    mode_share_by_duration,
)


def _uniform_track(speed: float, count: int = 20, interval: float = 10.0):
    return [SpatioTemporalPoint(i * speed * interval, 0.0, i * interval) for i in range(count)]


def _matched(points, segment):
    return [
        MatchedPoint(point=p, segment=segment, score=1.0, snapped=p.position) for p in points
    ]


class TestClassifySingleRun:
    def test_walking_speed_on_road(self):
        classifier = TransportModeClassifier()
        assert classifier.classify(_uniform_track(1.2), road_type="road") == "walk"

    def test_cycling_speed_on_road(self):
        classifier = TransportModeClassifier()
        assert classifier.classify(_uniform_track(4.5), road_type="road") == "bicycle"

    def test_bus_speed_on_road(self):
        classifier = TransportModeClassifier()
        assert classifier.classify(_uniform_track(9.5), road_type="road") == "bus"

    def test_car_speed_on_road(self):
        classifier = TransportModeClassifier()
        assert classifier.classify(_uniform_track(20.0), road_type="road") == "car"

    def test_metro_line_forces_metro(self):
        classifier = TransportModeClassifier()
        assert classifier.classify(_uniform_track(16.0), road_type="metro_line") == "metro"
        assert classifier.classify(_uniform_track(1.0), road_type="metro_line") == "metro"

    def test_rail_forces_train(self):
        classifier = TransportModeClassifier()
        assert classifier.classify(_uniform_track(30.0), road_type="rail") == "train"

    def test_pathway_is_walk_or_bicycle(self):
        classifier = TransportModeClassifier()
        assert classifier.classify(_uniform_track(1.2), road_type="path_way") == "walk"
        assert classifier.classify(_uniform_track(5.0), road_type="path_way") == "bicycle"

    def test_highway_is_bus_or_car(self):
        classifier = TransportModeClassifier()
        assert classifier.classify(_uniform_track(10.0), road_type="highway") == "bus"
        assert classifier.classify(_uniform_track(25.0), road_type="highway") == "car"

    def test_unmatched_run_uses_speed_only(self):
        classifier = TransportModeClassifier()
        assert classifier.classify(_uniform_track(1.0), road_type=None) == "walk"

    def test_all_outputs_are_known_modes(self):
        classifier = TransportModeClassifier()
        for speed in (0.5, 2.0, 4.0, 8.0, 15.0, 30.0):
            for road_type in (None, "road", "path_way", "metro_line", "highway", "rail"):
                assert classifier.classify(_uniform_track(speed), road_type) in TRANSPORT_MODES


class TestSegmentModes:
    def test_groups_by_segment(self):
        classifier = TransportModeClassifier()
        road = make_road_segment("r1", "road", Point(0, 0), Point(1000, 0), "road")
        metro = make_road_segment("m1", "metro", Point(1000, 0), Point(3000, 0), "metro_line")
        walk_points = _uniform_track(1.3, count=10)
        metro_points = [
            SpatioTemporalPoint(1000 + i * 160.0, 0.0, 100 + i * 10.0) for i in range(10)
        ]
        matched = _matched(walk_points, road) + _matched(metro_points, metro)
        segments = classifier.segment_modes(matched)
        assert len(segments) == 2
        assert segments[0].mode == "walk"
        assert segments[1].mode == "metro"

    def test_empty_input(self):
        assert TransportModeClassifier().segment_modes([]) == []

    def test_dominant_mode_by_duration(self):
        classifier = TransportModeClassifier()
        road = make_road_segment("r1", "road", Point(0, 0), Point(100, 0), "road")
        metro = make_road_segment("m1", "metro", Point(100, 0), Point(3000, 0), "metro_line")
        short_walk = _matched(_uniform_track(1.3, count=3), road)
        long_metro = _matched(
            [SpatioTemporalPoint(100 + i * 160.0, 0.0, 30 + i * 10.0) for i in range(30)], metro
        )
        assert classifier.dominant_mode(short_walk + long_metro) == "metro"

    def test_dominant_mode_empty(self):
        assert TransportModeClassifier().dominant_mode([]) is None

    def test_mode_flicker_smoothing(self):
        classifier = TransportModeClassifier()
        segments = [
            ModeSegment("a", "road", "bus", 0, 100, 10, 9.0),
            ModeSegment("b", "road", "bicycle", 100, 110, 2, 6.0),
            ModeSegment("c", "road", "bus", 110, 200, 10, 9.0),
        ]
        smoothed = classifier._smooth_modes(segments)
        assert [s.mode for s in smoothed] == ["bus", "bus", "bus"]

    def test_forced_modes_not_smoothed_away(self):
        classifier = TransportModeClassifier()
        segments = [
            ModeSegment("a", "road", "walk", 0, 100, 10, 1.0),
            ModeSegment("b", "metro_line", "metro", 100, 400, 10, 16.0),
            ModeSegment("c", "road", "walk", 400, 500, 10, 1.0),
        ]
        smoothed = classifier._smooth_modes(segments)
        assert [s.mode for s in smoothed] == ["walk", "metro", "walk"]


class TestModeShare:
    def test_shares_sum_to_one(self):
        segments = [
            ModeSegment("a", "road", "walk", 0, 100, 5, 1.2),
            ModeSegment("b", "metro_line", "metro", 100, 400, 5, 16.0),
        ]
        shares = mode_share_by_duration(segments)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["metro"] == pytest.approx(0.75)

    def test_empty_segments(self):
        assert mode_share_by_duration([]) == {}


class TestConfig:
    def test_custom_thresholds_change_decision(self):
        strict = TransportModeClassifier(TransportModeConfig(walk_speed_max=0.5, bicycle_speed_max=1.0, bus_speed_max=2.0))
        assert strict.classify(_uniform_track(1.5), road_type="road") in ("bus", "car")
