"""Semantic places (Definition 2): regions, lines and points of interest.

A semantic place is a meaningful geographic object taken from a third-party
source and used to annotate trajectory data.  The set of places is partitioned
by the geometric shape of their extent: regions (ROIs, e.g. landuse cells and
campus polygons), lines (LOIs, road segments) and points (POIs, shops and
restaurants).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.geometry.primitives import BoundingBox, Point, Polygon, Segment


class PlaceKind(str, enum.Enum):
    """Geometric kind of a semantic place's extent."""

    REGION = "region"
    LINE = "line"
    POINT = "point"


@dataclass(frozen=True)
class SemanticPlace:
    """Base class for all semantic places.

    Attributes
    ----------
    place_id:
        Source-unique identifier of the place.
    name:
        Human-readable label ("EPFL campus", "Ch. Veilloud", "Cafe Milano").
    category:
        Source-specific category code, e.g. a landuse sub-category ("1.2"),
        a road type ("metro_line") or a POI top-category ("feedings").
    attributes:
        Free-form metadata copied from the source record.
    """

    place_id: str
    name: str
    category: str
    attributes: Dict[str, str] = field(default_factory=dict)

    @property
    def kind(self) -> PlaceKind:
        """Geometric kind of the extent; overridden by subclasses."""
        raise NotImplementedError

    def bounding_box(self) -> BoundingBox:
        """Axis-aligned bounding box of the extent; overridden by subclasses."""
        raise NotImplementedError


@dataclass(frozen=True)
class RegionOfInterest(SemanticPlace):
    """A semantic place whose extent is a region (polygon or rectangle)."""

    extent: Union[Polygon, BoundingBox] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.extent is None:
            raise ValueError("a region of interest needs an extent")

    @property
    def kind(self) -> PlaceKind:
        return PlaceKind.REGION

    def bounding_box(self) -> BoundingBox:
        if isinstance(self.extent, BoundingBox):
            return self.extent
        return self.extent.bounding_box

    def contains(self, point: Point) -> bool:
        """True when ``point`` lies inside the region's extent."""
        if isinstance(self.extent, BoundingBox):
            return self.extent.contains_point(point)
        return self.extent.contains(point)

    @property
    def area(self) -> float:
        """Area of the region's extent."""
        if isinstance(self.extent, BoundingBox):
            return self.extent.area
        return self.extent.area

    @property
    def center(self) -> Point:
        """Centroid of the region's extent."""
        if isinstance(self.extent, BoundingBox):
            return self.extent.center
        return self.extent.centroid


@dataclass(frozen=True)
class LineOfInterest(SemanticPlace):
    """A semantic place whose extent is a line: one road segment.

    Road networks are modelled as collections of :class:`LineOfInterest`
    segments; the :mod:`repro.lines.road_network` module adds connectivity on
    top of them.
    """

    segment: Segment = None  # type: ignore[assignment]
    road_type: str = "road"
    allowed_modes: tuple = ("walk", "bicycle", "bus")
    speed_limit: float = 13.9  # metres per second (~50 km/h)

    def __post_init__(self) -> None:
        if self.segment is None:
            raise ValueError("a line of interest needs a segment")

    @property
    def kind(self) -> PlaceKind:
        return PlaceKind.LINE

    def bounding_box(self) -> BoundingBox:
        return self.segment.bounding_box()

    @property
    def length(self) -> float:
        """Length of the road segment."""
        return self.segment.length

    def supports_mode(self, mode: str) -> bool:
        """True when the given transportation mode may use this segment."""
        return mode in self.allowed_modes


@dataclass(frozen=True)
class PointOfInterest(SemanticPlace):
    """A semantic place whose extent is a point: a shop, restaurant, office..."""

    location: Point = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.location is None:
            raise ValueError("a point of interest needs a location")

    @property
    def kind(self) -> PlaceKind:
        return PlaceKind.POINT

    def bounding_box(self) -> BoundingBox:
        return BoundingBox(self.location.x, self.location.y, self.location.x, self.location.y)

    def distance_to(self, point: Point) -> float:
        """Planar distance from the POI to ``point``."""
        return self.location.distance_to(point)
