"""Multi-core scaling of the sharded parallel annotation runner.

Annotates a scalability-style workload (many objects, full annotation stack)
across the executor/dispatch/transport matrix — sequential ``annotate_many``,
the parallel runner on the serial executor (isolates sharding/merge overhead)
and the 4-worker process pool under every dispatch mode (``static`` is the
historical round-robin baseline, ``balanced`` bin-packs by GPS point count,
``stealing`` adds finer shards drained largest-first) plus a
``shared_memory="on"`` run that exercises the zero-copy segment transport —
and reports throughput for each.  Output equality is asserted byte-for-byte
on every run.

The speedup gate is tiered by what the machine can actually deliver: the
sidecar records the affinity-aware effective core count next to every number,
pool modes are explicitly marked non-gating when the process cannot run
``WORKERS`` ways in parallel, and the assertion arms only with >= 2 effective
cores (>1.5x target at >= 4 cores, >1.1x at 2-3).  A 1-core runner records an
honest <1x pool number instead of a silently-passed gate.
"""

from __future__ import annotations

import time
from typing import List

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.core import PipelineConfig, SeMiTriPipeline
from repro.core.cpu import effective_cpu_count
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.parallel import (
    GeoContext,
    ParallelAnnotationRunner,
    canonical_bytes,
    canonical_digest,
)

WORKERS = 4
#: Required pool speedup when the machine really has >= WORKERS cores.
SPEEDUP_TARGET = 1.5
#: Reduced target on 2-3 core machines: perfect WORKERS-way scaling is
#: impossible there, but the pool must still beat sequential.
SPEEDUP_TARGET_SMALL = 1.1


def _scalability_workload(world, objects: int = 8, points_per_object: int = 600):
    """Zig-zag drives with dwell clusters for several objects over the world core."""
    core_min = world.config.core_min
    trajectories: List[RawTrajectory] = []
    for obj in range(objects):
        points: List[SpatioTemporalPoint] = []
        t = 0.0
        x = core_min + 120.0 * obj
        y = core_min + 80.0 * obj
        for i in range(points_per_object):
            if i % 150 < 12:  # periodic dwell: stop episodes for the point layer
                x += 0.3
                t += 60.0
            else:
                x = core_min + (x - core_min + 10.0) % 3000.0
                y = core_min + ((i * 10.0) // 3000.0 * 400.0 + 80.0 * obj) % 3000.0
                t += 1.0
            points.append(SpatioTemporalPoint(x, y, t))
        trajectories.append(
            RawTrajectory(points, object_id=f"car{obj}", trajectory_id=f"car{obj}-t0")
        )
    return trajectories


def test_parallel_scaling(benchmark, world, annotation_sources):
    config = PipelineConfig.for_vehicles()
    trajectories = _scalability_workload(world)
    total_points = sum(len(t) for t in trajectories)
    context = GeoContext.build(annotation_sources, config)
    effective = effective_cpu_count()

    def best_of(rounds, fn):
        """Minimum wall time over several rounds: robust to scheduler noise."""
        best = None
        result = None
        for _ in range(rounds):
            started = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None or elapsed < best else best
        return best, result

    def timed_pool(dispatch: str, shared_memory: str = "auto"):
        with ParallelAnnotationRunner(
            config=config,
            workers=WORKERS,
            executor="process",
            dispatch=dispatch,
            shared_memory=shared_memory,
        ) as runner:
            # Warm the pool with a full-width batch so every worker is forked
            # and primed before the timed rounds.
            runner.annotate_many(trajectories, context=context)
            return best_of(3, lambda: runner.annotate_many(trajectories, context=context))

    #: mode name -> (timed fn, is this a pool mode the speedup gate may judge)
    pool_modes = {
        f"pool x{WORKERS} static": lambda: timed_pool("static"),
        f"pool x{WORKERS} balanced": lambda: timed_pool("balanced"),
        f"pool x{WORKERS} stealing": lambda: timed_pool("stealing"),
        f"pool x{WORKERS} balanced+shm": lambda: timed_pool("balanced", "on"),
    }

    def run():
        measured = {}
        measured["sequential"] = best_of(
            3,
            lambda: SeMiTriPipeline(config).annotate_many(
                trajectories, annotation_sources, annotators=context.annotators
            ),
        )
        serial_runner = ParallelAnnotationRunner(config=config, workers=WORKERS, executor="serial")
        measured["serial executor"] = best_of(
            3, lambda: serial_runner.annotate_many(trajectories, context=context)
        )
        for mode, fn in pool_modes.items():
            measured[mode] = fn()
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    reference_bytes = canonical_bytes(measured["sequential"][1])
    for mode, (_, results) in measured.items():
        assert canonical_bytes(results) == reference_bytes, f"{mode} output diverged"

    gate_armed = effective >= 2
    gate_target = SPEEDUP_TARGET if effective >= WORKERS else SPEEDUP_TARGET_SMALL
    sequential_seconds = measured["sequential"][0]
    rows = []
    data = {
        "workers": WORKERS,
        "effective_cores": effective,
        "gps_points": total_points,
        "canonical_digest": canonical_digest(measured["sequential"][1]),
        "gate": {
            "armed": gate_armed,
            "target": gate_target if gate_armed else None,
            "reason": (
                f"{effective} effective core(s) >= 2"
                if gate_armed
                else f"only {effective} effective core(s); pool numbers recorded, not judged"
            ),
        },
        "modes": {},
    }
    for mode, (seconds, _) in measured.items():
        speedup = sequential_seconds / max(seconds, 1e-9)
        is_pool = mode in pool_modes
        rows.append(
            [
                mode,
                f"{seconds * 1e3:.0f}",
                f"{total_points / seconds:,.0f}",
                f"{speedup:.2f}x",
                ("yes" if gate_armed else "no") if is_pool else "-",
            ]
        )
        data["modes"][mode] = {
            "seconds": seconds,
            "points_per_second": total_points / seconds,
            "speedup_vs_sequential": speedup,
            "gating": is_pool and gate_armed,
        }
    text = render_table(
        ["mode", "total ms", "GPS points/s", "speedup", "gated"],
        rows,
        title=(
            f"Parallel annotation scaling ({len(trajectories)} objects, "
            f"{total_points:,} points, {effective} effective core(s))"
        ),
    )
    save_result("parallel_scaling", text, data=data)

    # Sharding/merge overhead must stay negligible on the serial executor.
    assert data["modes"]["serial executor"]["speedup_vs_sequential"] > 0.8
    if gate_armed:
        best_pool = max(
            data["modes"][mode]["speedup_vs_sequential"] for mode in pool_modes
        )
        assert best_pool > gate_target, (
            f"expected >{gate_target}x at {WORKERS} workers on {effective} cores, "
            f"got {best_pool:.2f}x"
        )
    else:
        pool_speedups = ", ".join(
            f"{mode}: {data['modes'][mode]['speedup_vs_sequential']:.2f}x"
            for mode in pool_modes
        )
        print(f"\n[speedup gate disarmed on {effective} core(s); recorded {pool_speedups}]")
