"""Configuration objects for the SeMiTri pipeline and its layers.

Every layer takes an explicit configuration dataclass so that the "trajectory
computing policies" of Figure 2 (velocity threshold, temporal/spatial
separations, density threshold) and the algorithm parameters of Section 4
(global view radius R, kernel width sigma, POI grid size, HMM transition
structure) live in one place and are easy to sweep in the benchmarks.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class CleaningConfig:
    """Parameters of the GPS cleaning step (outlier removal + smoothing)."""

    max_speed: float = 70.0
    """Speed (units/s) above which a fix is considered an outlier (~250 km/h)."""

    smoothing_window: int = 3
    """Window size of the median/mean smoother; 1 disables smoothing."""

    smoothing_method: str = "median"
    """Either ``"median"``, ``"mean"`` or ``"none"``."""

    def __post_init__(self) -> None:
        if self.max_speed <= 0:
            raise ConfigurationError("max_speed must be positive")
        if self.smoothing_window < 1:
            raise ConfigurationError("smoothing_window must be at least 1")
        if self.smoothing_method not in ("median", "mean", "none"):
            raise ConfigurationError(
                f"unknown smoothing method {self.smoothing_method!r}; "
                "expected 'median', 'mean' or 'none'"
            )


@dataclass(frozen=True)
class TrajectoryIdentificationConfig:
    """Parameters of the raw-trajectory identification (gap-based splitting)."""

    max_time_gap: float = 1800.0
    """Temporal separation (seconds) above which the stream is split."""

    max_distance_gap: float = 3000.0
    """Spatial separation (coordinate units) above which the stream is split."""

    min_points: int = 5
    """Trajectories with fewer points than this are discarded as noise."""

    def __post_init__(self) -> None:
        if self.max_time_gap <= 0 or self.max_distance_gap <= 0:
            raise ConfigurationError("gap thresholds must be positive")
        if self.min_points < 1:
            raise ConfigurationError("min_points must be at least 1")


@dataclass(frozen=True)
class StopMoveConfig:
    """Parameters of stop/move episode detection."""

    policy: str = "velocity"
    """Detection policy: ``"velocity"``, ``"density"`` or ``"hybrid"``."""

    speed_threshold: float = 1.0
    """Speed (units/s) below which a point is a stop candidate (velocity policy)."""

    min_stop_duration: float = 120.0
    """Minimum duration (seconds) for a candidate run to become a stop."""

    density_radius: float = 50.0
    """Spatial radius (units) of the density policy's neighbourhood."""

    min_move_points: int = 2
    """Move episodes shorter than this are merged into the surrounding stops."""

    def __post_init__(self) -> None:
        if self.policy not in ("velocity", "density", "hybrid"):
            raise ConfigurationError(
                f"unknown stop/move policy {self.policy!r}; expected "
                "'velocity', 'density' or 'hybrid'"
            )
        if self.speed_threshold <= 0:
            raise ConfigurationError("speed_threshold must be positive")
        if self.min_stop_duration < 0:
            raise ConfigurationError("min_stop_duration must be non-negative")
        if self.density_radius <= 0:
            raise ConfigurationError("density_radius must be positive")
        if self.min_move_points < 1:
            raise ConfigurationError("min_move_points must be at least 1")


@dataclass(frozen=True)
class RegionAnnotationConfig:
    """Parameters of the semantic-region annotation layer (Algorithm 1)."""

    join_predicate: str = "contains"
    """Spatial predicate: ``"contains"`` (point-in-region) or ``"intersects"``."""

    use_episode_center_for_stops: bool = True
    """Join stop episodes by their centre point instead of the full rectangle."""

    annotate_points: bool = True
    """Also produce per-GPS-point region links (Algorithm 1 default)."""

    def __post_init__(self) -> None:
        if self.join_predicate not in ("contains", "intersects"):
            raise ConfigurationError(
                f"unknown join predicate {self.join_predicate!r}; "
                "expected 'contains' or 'intersects'"
            )


@dataclass(frozen=True)
class MapMatchingConfig:
    """Parameters of the global map-matching algorithm (Algorithm 2)."""

    view_radius: float = 2.0
    """Global view radius R, expressed as a multiple of the candidate radius."""

    kernel_width_factor: float = 0.5
    """Kernel width sigma expressed as a fraction of the view radius (sigma = f*R)."""

    candidate_radius: float = 50.0
    """Radius (coordinate units) used to pull candidate segments from the R-tree."""

    max_candidates: int = 8
    """Maximum number of candidate segments considered per GPS point."""

    use_global_score: bool = True
    """When False the matcher falls back to the pure localScore (ablation)."""

    distance_metric: str = "point_segment"
    """Distance of Equation 1 (``"point_segment"``) or ``"perpendicular"`` baseline."""

    def __post_init__(self) -> None:
        if self.view_radius <= 0:
            raise ConfigurationError("view_radius must be positive")
        if self.kernel_width_factor <= 0:
            raise ConfigurationError("kernel_width_factor must be positive")
        if self.candidate_radius <= 0:
            raise ConfigurationError("candidate_radius must be positive")
        if self.max_candidates < 1:
            raise ConfigurationError("max_candidates must be at least 1")
        if self.distance_metric not in ("point_segment", "perpendicular"):
            raise ConfigurationError(
                f"unknown distance metric {self.distance_metric!r}; "
                "expected 'point_segment' or 'perpendicular'"
            )

    @property
    def context_radius(self) -> float:
        """The view radius R in coordinate units (R * candidate_radius)."""
        return self.view_radius * self.candidate_radius

    @property
    def kernel_width(self) -> float:
        """The kernel width sigma in coordinate units."""
        return self.kernel_width_factor * self.context_radius


@dataclass(frozen=True)
class TransportModeConfig:
    """Parameters of the transportation-mode inference."""

    walk_speed_max: float = 2.5
    """Upper bound of mean walking speed (m/s)."""

    bicycle_speed_max: float = 7.0
    """Upper bound of mean cycling speed (m/s)."""

    bus_speed_max: float = 12.0
    """Upper bound of mean bus speed (m/s); faster moves on rail default to metro."""

    bus_acceleration_min: float = 0.25
    """Mean absolute acceleration (m/s^2) above which road travel is motorised."""

    def __post_init__(self) -> None:
        if not (0 < self.walk_speed_max < self.bicycle_speed_max < self.bus_speed_max):
            raise ConfigurationError(
                "speed thresholds must satisfy 0 < walk < bicycle < bus"
            )
        if self.bus_acceleration_min < 0:
            raise ConfigurationError("bus_acceleration_min must be non-negative")


@dataclass(frozen=True)
class PointAnnotationConfig:
    """Parameters of the HMM-based semantic-point annotation layer (Algorithm 3)."""

    grid_cell_size: float = 100.0
    """Edge length of the discretisation grid used for Pr(grid | category)."""

    neighbor_radius: float = 200.0
    """Only POIs within this radius of a cell contribute to its probability."""

    default_sigma: float = 60.0
    """Default Gaussian influence radius for categories without a specific sigma."""

    category_sigmas: Dict[str, float] = field(default_factory=dict)
    """Category-specific Gaussian sigmas (sigma_c in the paper)."""

    self_transition: float = 0.8
    """Diagonal weight of the default state-transition matrix (Figure 6)."""

    min_probability: float = 1e-12
    """Floor applied to observation probabilities to keep Viterbi numerically safe."""

    def __post_init__(self) -> None:
        if self.grid_cell_size <= 0:
            raise ConfigurationError("grid_cell_size must be positive")
        if self.neighbor_radius <= 0:
            raise ConfigurationError("neighbor_radius must be positive")
        if self.default_sigma <= 0:
            raise ConfigurationError("default_sigma must be positive")
        if not (0.0 < self.self_transition < 1.0):
            raise ConfigurationError("self_transition must lie strictly between 0 and 1")
        if self.min_probability <= 0:
            raise ConfigurationError("min_probability must be positive")


@dataclass(frozen=True)
class StreamingConfig:
    """Parameters of the streaming annotation engine.

    The engine micro-batches incoming ``(object_id, point)`` events, keeps one
    session per moving object and seals episodes/trajectories online; these
    knobs bound its memory and control the batching trade-off between
    per-event latency and throughput.
    """

    micro_batch_size: int = 32
    """Events buffered before the engine runs a processing pass; 1 processes
    every event immediately (lowest latency, most recomputation)."""

    max_sessions: int = 10_000
    """Maximum number of simultaneously open per-object sessions; the least
    recently active session is closed (sealing its open trajectory) when a new
    object would exceed the capacity."""

    apply_cleaning: bool = False
    """Run the streaming GPS cleaner (outlier removal + smoothing) on incoming
    points, mirroring :meth:`SeMiTriPipeline.ingest_stream`.  Off by default
    so that the engine reproduces :meth:`SeMiTriPipeline.annotate_many` on
    already-cleaned trajectories."""

    def __post_init__(self) -> None:
        if self.micro_batch_size < 1:
            raise ConfigurationError("micro_batch_size must be at least 1")
        if self.max_sessions < 1:
            raise ConfigurationError("max_sessions must be at least 1")


@dataclass(frozen=True)
class ComputeConfig:
    """Selection of the per-point compute backend for the hot paths.

    ``"numpy"`` routes the per-point computations (cleaning prechecks, stop
    flags, map-matching candidate scoring and kernel weights, POI Gaussian
    sums) through the batch kernels of :mod:`repro.geometry.vectorized`;
    ``"python"`` keeps the scalar pure-Python implementations, which remain
    the reference oracle the parity tests compare against.  Both backends
    produce identical discrete outputs; float payloads agree bit-for-bit
    except where transcendental functions are involved (documented 1-ulp
    tolerance in :mod:`repro.geometry.vectorized`).
    """

    backend: str = "numpy"
    """Either ``"numpy"`` (vectorized batch kernels) or ``"python"`` (scalar)."""

    index_backend: str = "auto"
    """Spatial-index backend for the annotation hot paths.

    ``"flat"`` compiles each frozen source index (region R-tree, road-network
    R-tree, POI grid) into the read-only numpy-backed
    :class:`~repro.index.flat.FlatSpatialIndex` and issues **batch** queries —
    one per trajectory/episode/micro-batch — instead of one scalar tree query
    per GPS point; ``"tree"`` keeps every query on the scalar indexes, which
    remain the reference oracle.  ``"auto"`` (the default) selects ``"flat"``
    when ``backend`` is ``"numpy"`` and ``"tree"`` otherwise.  Both backends
    produce byte-identical canonical output: the flat index returns the same
    result sets in the same order with bit-identical distances (see
    :mod:`repro.index.flat`).
    """

    def __post_init__(self) -> None:
        if self.backend not in ("numpy", "python"):
            raise ConfigurationError(
                f"unknown compute backend {self.backend!r}; expected 'numpy' or 'python'"
            )
        if self.index_backend not in ("auto", "flat", "tree"):
            raise ConfigurationError(
                f"unknown index backend {self.index_backend!r}; "
                "expected 'auto', 'flat' or 'tree'"
            )

    @property
    def resolved_index_backend(self) -> str:
        """The effective index backend: ``"flat"`` or ``"tree"``."""
        if self.index_backend == "auto":
            return "flat" if self.backend == "numpy" else "tree"
        return self.index_backend


@dataclass(frozen=True)
class ParallelConfig:
    """Parameters of the sharded parallel annotation runtime.

    The runner partitions trajectories by moving object into shards, annotates
    the shards on an executor against one immutable :class:`GeoContext`
    snapshot and merges the results back into input order, so the output is
    identical to the sequential pipeline regardless of these knobs.
    """

    workers: int = 1
    """Worker processes; 1 keeps everything in-process (serial executor) and
    0 means "auto": the affinity-aware core count of
    :func:`repro.core.cpu.effective_cpu_count`, which respects cgroup quotas
    and ``taskset`` pinning instead of oversubscribing the machine count."""

    executor: str = "auto"
    """``"process"`` (pool of worker processes), ``"serial"`` (in-process, for
    tests and determinism debugging) or ``"auto"`` (process when the resolved
    worker count exceeds 1, serial otherwise)."""

    shards_per_worker: int = 2
    """Shards created per worker; more shards smooth out skewed per-object
    workloads at the cost of a little scheduling overhead."""

    dispatch: str = "balanced"
    """How the batch is split across workers:

    ``"static"``
        fixed object-id sharding — objects assigned round-robin in
        first-appearance order, ignoring per-object load (the historical
        behaviour, kept as a baseline);
    ``"balanced"``
        size-aware bin-packing — objects assigned greedily to the lightest
        shard, measured in GPS points (robust to skewed users);
    ``"stealing"``
        size-aware bin-packing into finer shards submitted largest-first to
        the futures pool, so idle workers steal the next pending shard
        instead of waiting on a fixed assignment.

    All three produce byte-identical canonical output: the merge reorders
    results back into input order regardless of where each shard ran."""

    shared_memory: str = "auto"
    """Whether the frozen :class:`GeoContext` numpy blocks travel to workers
    through ``multiprocessing.shared_memory`` segments (workers *attach*
    zero-copy) instead of being pickled per worker:

    ``"auto"``
        on when the pool's start method would pickle the snapshot (spawn),
        off under ``fork`` where copy-on-write pages already share the
        arrays for free;
    ``"on"`` / ``"off"``
        force the choice (``"on"`` under fork is how the attach path is
        exercised on Linux CI)."""

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ConfigurationError("workers must be at least 1 (or 0 for auto)")
        if self.executor not in ("auto", "process", "serial"):
            raise ConfigurationError(
                f"unknown executor {self.executor!r}; expected 'auto', 'process' or 'serial'"
            )
        if self.shards_per_worker < 1:
            raise ConfigurationError("shards_per_worker must be at least 1")
        if self.dispatch not in ("static", "balanced", "stealing"):
            raise ConfigurationError(
                f"unknown dispatch {self.dispatch!r}; "
                "expected 'static', 'balanced' or 'stealing'"
            )
        if self.shared_memory not in ("auto", "on", "off"):
            raise ConfigurationError(
                f"unknown shared_memory mode {self.shared_memory!r}; "
                "expected 'auto', 'on' or 'off'"
            )

    @property
    def resolved_workers(self) -> int:
        """The effective worker count: ``workers``, or the affinity-aware
        core count when ``workers`` is 0 (auto)."""
        if self.workers == 0:
            from repro.core.cpu import effective_cpu_count

            return effective_cpu_count()
        return self.workers


#: Exporter names :class:`ObservabilityConfig` accepts.
OBSERVABILITY_EXPORTERS: Tuple[str, ...] = ("jsonl", "prometheus", "summary")


@dataclass(frozen=True)
class ObservabilityConfig:
    """Selection of the telemetry subsystem (:mod:`repro.obs`).

    Disabled by default: every executor then runs the exact pre-telemetry
    code path (no tracer, no registry, no per-event bookkeeping), so the
    disabled overhead is unmeasurable.  When ``enabled`` is true the compiled
    :class:`~repro.engine.plan.Plan` carries a
    :class:`~repro.obs.runtime.Telemetry` runtime whose tracer emits one
    per-trajectory span tree (trace id = trajectory id, one span per stage,
    surviving the process-pool boundary) and whose
    :class:`~repro.obs.metrics.MetricsRegistry` collects engine, streaming
    and store metrics with the existing latency profiles as the stage-latency
    histogram backend.
    """

    enabled: bool = False
    """Master switch; off keeps the zero-overhead no-op path."""

    tracing: bool = True
    """Emit per-trajectory spans (only meaningful when ``enabled``)."""

    metrics: bool = True
    """Maintain the metrics registry (only meaningful when ``enabled``)."""

    exporters: Tuple[str, ...] = ()
    """Exporters :meth:`Telemetry.export` runs: any of ``"jsonl"``,
    ``"prometheus"``, ``"summary"``."""

    export_path: Optional[str] = None
    """Directory the file exporters write into (defaults to the CWD)."""

    def __post_init__(self) -> None:
        unknown = set(self.exporters).difference(OBSERVABILITY_EXPORTERS)
        if unknown:
            raise ConfigurationError(
                f"unknown exporters {sorted(unknown)!r}; "
                f"expected a subset of {list(OBSERVABILITY_EXPORTERS)}"
            )

    @classmethod
    def from_env(cls) -> "ObservabilityConfig":
        """The default observability block, overridable via the environment.

        ``SEMITRI_OBSERVABILITY`` set to ``trace``/``on``/``1`` enables full
        telemetry, ``metrics`` enables the registry without spans; unset (or
        ``off``/``0``) keeps the disabled default.  This is how the CI parity
        leg reruns the whole suite with tracing enabled without touching any
        test.
        """
        value = os.environ.get("SEMITRI_OBSERVABILITY", "").strip().lower()
        if value in ("", "0", "off", "false"):
            return cls()
        if value in ("1", "on", "true", "trace", "full"):
            return cls(enabled=True)
        if value == "metrics":
            return cls(enabled=True, tracing=False)
        raise ConfigurationError(
            f"unknown SEMITRI_OBSERVABILITY value {value!r}; "
            "expected 'trace', 'metrics', 'on' or 'off'"
        )


#: The failure-handling modes a :class:`FailurePolicy` can select.
FAILURE_MODES: Tuple[str, ...] = ("fail_fast", "skip", "retry")


@dataclass(frozen=True)
class FailurePolicy:
    """How executors treat a per-trajectory stage failure (:mod:`repro.faults`).

    The default ``fail_fast`` reproduces the historical behaviour exactly: the
    first stage exception propagates and aborts the run.  ``skip`` isolates
    the failure to the one trajectory (it is quarantined, the rest of the
    batch survives); ``retry`` additionally re-runs the failed trajectory with
    deterministic exponential backoff before quarantining it.  The policy also
    arms worker-loss recovery in the process-pool executor: lost shards are
    resubmitted (and bisected down to the poison trajectory) instead of
    aborting the batch.
    """

    mode: str = "fail_fast"
    """``"fail_fast"``, ``"skip"`` or ``"retry"``."""

    max_retries: int = 2
    """Re-attempts per failed trajectory before quarantine (``retry`` mode)."""

    backoff_base: float = 0.05
    """Seconds slept before the first retry; deterministic, never jittered."""

    backoff_factor: float = 2.0
    """Multiplier applied to the backoff for each further retry."""

    max_shard_retries: int = 1
    """Whole-shard resubmissions after a worker loss before the shard is
    bisected to isolate the trajectory that keeps killing workers."""

    def __post_init__(self) -> None:
        if self.mode not in FAILURE_MODES:
            raise ConfigurationError(
                f"unknown failure mode {self.mode!r}; expected one of {list(FAILURE_MODES)}"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be at least 1.0")
        if self.max_shard_retries < 0:
            raise ConfigurationError("max_shard_retries must be non-negative")

    @property
    def isolates(self) -> bool:
        """Whether a stage failure is contained to its trajectory."""
        return self.mode != "fail_fast"

    @property
    def retries(self) -> int:
        """Effective per-trajectory retry budget (0 outside ``retry`` mode)."""
        return self.max_retries if self.mode == "retry" else 0

    def backoff(self, attempt: int) -> float:
        """Deterministic backoff (seconds) before re-attempt ``attempt + 1``."""
        return self.backoff_base * self.backoff_factor ** max(0, attempt - 1)


@dataclass(frozen=True)
class ServiceConfig:
    """Parameters of the asyncio ingestion service (:mod:`repro.service`).

    The service multiplexes many concurrent object streams into sharded
    :class:`~repro.engine.executors.MicroBatchExecutor` instances: events are
    routed to a shard by consistent-hashing the object id, buffered in a
    bounded per-shard queue (slow producers are *awaited*, never dropped) and
    absorbed by the shard's streaming session loop.  These knobs bound the
    service's memory (queues + open sessions) and control the shard fan-out.
    """

    shards: int = 0
    """Number of executor shards; 0 means "auto": the affinity-aware core
    count of :func:`repro.core.cpu.effective_cpu_count`."""

    queue_depth: int = 256
    """Capacity of each shard's bounded event queue; a full queue makes
    ``ingest`` await (explicit backpressure) instead of dropping events."""

    max_batch: int = 64
    """Maximum events handed to a shard executor per processing step; larger
    batches amortise the thread hand-off, smaller ones bound added latency."""

    session_budget: int = 10_000
    """Total open per-object sessions allowed across all shards (the memory
    budget); each shard's LRU session capacity is the per-shard share, and
    the least recently active sessions are gracefully closed through the gap
    close-out path when a shard exceeds it."""

    ring_replicas: int = 64
    """Virtual nodes per shard on the consistent-hash ring; more replicas
    smooth the key distribution at a small routing-table cost."""

    journal_dir: str = ""
    """Directory of the crash-safe ingest journal (per-shard write-ahead
    logs).  Empty (the default) disables journaling; when set, every accepted
    event and close is appended before it is enqueued, a killed service
    replays the un-drained tail on its next :meth:`start`, and a successful
    drain rotates the segments away."""

    journal_fsync_batch: int = 1024
    """Appends between journal ``fdatasync`` calls (group commit).  1 syncs
    every record (maximum durability, slowest); larger batches trade a
    bounded crash window — well under 100 ms of events at sustained ingest
    rates — for throughput.  The journal always syncs at drain time."""

    transport: str = "auto"
    """Where shard executors run: ``"thread"`` keeps every shard's
    :class:`~repro.engine.executors.MicroBatchExecutor` on the service's
    thread pool (one process, GIL-serialized annotation work), ``"process"``
    gives each shard its own worker process attached zero-copy to the shared
    :class:`~repro.parallel.context.GeoContext` (events cross in batched
    pre-encoded frames over pipes).  ``"auto"`` — the default — resolves to
    ``"process"`` when :func:`repro.core.cpu.effective_cpu_count` sees more
    than one core and to ``"thread"`` on a single-core allowance, where
    worker processes would only add IPC cost (see
    :attr:`resolved_transport`)."""

    def __post_init__(self) -> None:
        if self.shards < 0:
            raise ConfigurationError("shards must be at least 1 (or 0 for auto)")
        if self.queue_depth < 1:
            raise ConfigurationError("queue_depth must be at least 1")
        if self.max_batch < 1:
            raise ConfigurationError("max_batch must be at least 1")
        if self.session_budget < 1:
            raise ConfigurationError("session_budget must be at least 1")
        if self.ring_replicas < 1:
            raise ConfigurationError("ring_replicas must be at least 1")
        if self.journal_fsync_batch < 1:
            raise ConfigurationError("journal_fsync_batch must be at least 1")
        if self.transport not in ("thread", "process", "auto"):
            raise ConfigurationError(
                f"unknown transport {self.transport!r}; expected 'thread', 'process' or 'auto'"
            )
        if self.transport == "process" and self.shards > 0:
            from repro.core.cpu import effective_cpu_count

            cores = effective_cpu_count()
            if self.shards > 4 * cores:
                raise ConfigurationError(
                    f"transport='process' with {self.shards} shards oversubscribes "
                    f"{cores} effective cores by more than 4x; lower shards or use "
                    "transport='thread'"
                )

    @property
    def resolved_shards(self) -> int:
        """The effective shard count: ``shards``, or the affinity-aware core
        count when ``shards`` is 0 (auto)."""
        if self.shards == 0:
            from repro.core.cpu import effective_cpu_count

            return effective_cpu_count()
        return self.shards

    @property
    def resolved_transport(self) -> str:
        """The effective transport: ``transport``, with ``"auto"`` resolved.

        ``auto`` picks ``"process"`` exactly when the affinity-aware core
        count is greater than one — that is where per-shard worker processes
        beat the GIL — and falls back to ``"thread"`` on a single-core
        allowance, where the thread transport has the same parallelism (none)
        without the IPC and spawn cost.
        """
        if self.transport != "auto":
            return self.transport
        from repro.core.cpu import effective_cpu_count

        return "process" if effective_cpu_count() > 1 else "thread"


@dataclass(frozen=True)
class PipelineConfig:
    """Top-level configuration bundling every layer's parameters."""

    cleaning: CleaningConfig = field(default_factory=CleaningConfig)
    identification: TrajectoryIdentificationConfig = field(
        default_factory=TrajectoryIdentificationConfig
    )
    stop_move: StopMoveConfig = field(default_factory=StopMoveConfig)
    region: RegionAnnotationConfig = field(default_factory=RegionAnnotationConfig)
    map_matching: MapMatchingConfig = field(default_factory=MapMatchingConfig)
    transport: TransportModeConfig = field(default_factory=TransportModeConfig)
    point: PointAnnotationConfig = field(default_factory=PointAnnotationConfig)
    streaming: StreamingConfig = field(default_factory=StreamingConfig)
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    compute: ComputeConfig = field(default_factory=ComputeConfig)
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig.from_env)
    service: ServiceConfig = field(default_factory=ServiceConfig)
    failure: FailurePolicy = field(default_factory=FailurePolicy)

    # ------------------------------------------------------- dict construction
    def to_dict(self) -> Dict[str, Any]:
        """Nested plain-data rendering of every section (JSON-serialisable).

        Round-trips through :meth:`from_dict`:
        ``PipelineConfig.from_dict(config.to_dict()) == config``.
        """
        return {
            section.name: dataclasses.asdict(getattr(self, section.name))
            for section in dataclasses.fields(self)
        }

    @classmethod
    def from_dict(
        cls,
        data: Optional[Mapping[str, Any]] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        base: Optional["PipelineConfig"] = None,
    ) -> "PipelineConfig":
        """Build a validated configuration from nested plain data.

        The **one** construction path the service, the benchmarks and the
        environment knobs share: ``data`` is a (possibly partial) nested
        mapping like :meth:`to_dict` produces, ``overrides`` maps dotted
        keyword paths to values (``{"parallel.dispatch": "stealing"}``), and
        ``base`` supplies the defaults for everything left unspecified.
        Unknown sections or fields raise :class:`ConfigurationError`; every
        value passes through the owning dataclass's own ``__post_init__``
        validation, and string values (e.g. from ``SEMITRI_*`` environment
        variables or CLI flags) are coerced to the field's type first.
        """
        if base is None:
            base = cls()
        sections = {section.name: section for section in dataclasses.fields(cls)}
        merged: Dict[str, Dict[str, Any]] = {}
        if data:
            for section_name, section_data in data.items():
                if section_name not in sections:
                    raise ConfigurationError(
                        f"unknown configuration section {section_name!r}; "
                        f"expected one of {sorted(sections)}"
                    )
                if not isinstance(section_data, Mapping):
                    raise ConfigurationError(
                        f"section {section_name!r} must be a mapping of field values"
                    )
                merged[section_name] = dict(section_data)
        if overrides:
            for path, value in overrides.items():
                section_name, _, field_name = path.partition(".")
                if not field_name or section_name not in sections:
                    raise ConfigurationError(
                        f"override path {path!r} must look like '<section>.<field>' "
                        f"with a section among {sorted(sections)}"
                    )
                merged.setdefault(section_name, {})[field_name] = value

        built: Dict[str, Any] = {}
        for section_name, values in merged.items():
            current = getattr(base, section_name)
            built[section_name] = _replace_section(current, values, section_name)
        return dataclasses.replace(base, **built)

    def with_overrides(self, overrides: Mapping[str, Any]) -> "PipelineConfig":
        """A copy of this configuration with dotted-path overrides applied."""
        return type(self).from_dict(overrides=overrides, base=self)

    @classmethod
    def for_vehicles(cls) -> "PipelineConfig":
        """Defaults suited to vehicle (taxi / private car) trajectories."""
        return cls(
            stop_move=StopMoveConfig(
                policy="hybrid", speed_threshold=1.5, min_stop_duration=150.0, density_radius=60.0
            ),
            map_matching=MapMatchingConfig(candidate_radius=40.0),
            point=PointAnnotationConfig(
                default_sigma=25.0, neighbor_radius=120.0, grid_cell_size=25.0
            ),
        )

    @classmethod
    def for_people(cls) -> "PipelineConfig":
        """Defaults suited to smartphone people trajectories (noisier, gappier)."""
        return cls(
            cleaning=CleaningConfig(max_speed=45.0),
            identification=TrajectoryIdentificationConfig(max_time_gap=3600.0),
            stop_move=StopMoveConfig(
                policy="hybrid", speed_threshold=0.8, min_stop_duration=240.0, density_radius=80.0
            ),
            map_matching=MapMatchingConfig(candidate_radius=60.0),
        )


def _replace_section(current: Any, values: Mapping[str, Any], section_name: str) -> Any:
    """One section dataclass with ``values`` applied (validated, type-coerced)."""
    known = {section_field.name for section_field in dataclasses.fields(current)}
    coerced: Dict[str, Any] = {}
    for field_name, value in values.items():
        if field_name not in known:
            raise ConfigurationError(
                f"unknown field {field_name!r} in section {section_name!r}; "
                f"expected one of {sorted(known)}"
            )
        coerced[field_name] = _coerce_value(value, getattr(current, field_name))
    return dataclasses.replace(current, **coerced)


def _coerce_value(value: Any, current: Any) -> Any:
    """Coerce a raw override value to the type of the field's current value.

    Strings arriving from ``SEMITRI_*`` environment variables or CLI flags
    become the int/float/bool the field holds; JSON lists become the tuples
    frozen dataclasses store.  Values already of the right type pass through
    untouched, and coercion failures surface as :class:`ConfigurationError`
    naming the offending value rather than a bare ``ValueError``.
    """
    if isinstance(current, bool):
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("1", "true", "on", "yes"):
                return True
            if lowered in ("0", "false", "off", "no"):
                return False
        raise ConfigurationError(f"cannot interpret {value!r} as a boolean")
    if isinstance(current, int) and not isinstance(value, int):
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ConfigurationError(f"cannot interpret {value!r} as an integer")
    if isinstance(current, float) and not isinstance(value, float):
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ConfigurationError(f"cannot interpret {value!r} as a number")
    if isinstance(current, tuple) and isinstance(value, list):
        return tuple(value)
    return value
