"""Unit tests for Algorithm 1: trajectory annotation with regions."""

from __future__ import annotations

import pytest

from repro.core.annotations import AnnotationKind
from repro.core.config import RegionAnnotationConfig
from repro.core.episodes import Episode, EpisodeKind
from repro.core.places import RegionOfInterest
from repro.core.points import build_trajectory
from repro.geometry.primitives import BoundingBox
from repro.regions.annotator import RegionAnnotator
from repro.regions.sources import RegionSource


def _cell(place_id: str, x: float, category: str) -> RegionOfInterest:
    return RegionOfInterest(
        place_id=place_id,
        name=place_id,
        category=category,
        extent=BoundingBox(x, 0, x + 100, 100),
    )


@pytest.fixture()
def strip_source() -> RegionSource:
    """Three adjacent 100x100 cells along the x axis."""
    return RegionSource(
        [_cell("c0", 0, "1.2"), _cell("c1", 100, "1.3"), _cell("c2", 200, "1.2")],
        name="strip",
    )


@pytest.fixture()
def crossing_trajectory():
    """A trajectory crossing the three cells left to right at 10 m/s."""
    triples = [(float(i * 10), 50.0, float(i * 1)) for i in range(30)]
    return build_trajectory(triples, object_id="o", trajectory_id="cross")


class TestAnnotateTrajectory:
    def test_region_sequence(self, strip_source, crossing_trajectory):
        annotator = RegionAnnotator(strip_source)
        structured = annotator.annotate_trajectory(crossing_trajectory)
        assert structured.place_sequence() == ["c0", "c1", "c2"]

    def test_records_are_time_ordered_and_contiguous(self, strip_source, crossing_trajectory):
        structured = RegionAnnotator(strip_source).annotate_trajectory(crossing_trajectory)
        times = [(record.time_in, record.time_out) for record in structured]
        assert all(t_in <= t_out for t_in, t_out in times)
        assert all(a[1] <= b[0] for a, b in zip(times, times[1:]))

    def test_consecutive_same_region_merged(self, strip_source):
        # A trajectory that stays in one cell produces a single record.
        triples = [(50.0 + i, 50.0, float(i)) for i in range(20)]
        structured = RegionAnnotator(strip_source).annotate_trajectory(build_trajectory(triples))
        assert len(structured) == 1
        assert structured[0].place.place_id == "c0"

    def test_points_outside_all_regions_get_no_place(self, strip_source):
        triples = [(1000.0 + i, 50.0, float(i)) for i in range(10)]
        structured = RegionAnnotator(strip_source).annotate_trajectory(build_trajectory(triples))
        assert len(structured) == 1
        assert structured[0].place is None

    def test_region_annotations_attached(self, strip_source, crossing_trajectory):
        structured = RegionAnnotator(strip_source).annotate_trajectory(crossing_trajectory)
        for record in structured:
            assert any(a.kind is AnnotationKind.REGION for a in record.annotations)


class TestAnnotateEpisodes:
    def test_stop_annotated_by_center(self, strip_source, crossing_trajectory):
        episodes = [
            Episode(EpisodeKind.STOP, crossing_trajectory, 0, 5),
            Episode(EpisodeKind.MOVE, crossing_trajectory, 5, 30),
        ]
        annotator = RegionAnnotator(strip_source)
        structured = annotator.annotate_episodes(episodes)
        assert len(structured) == 2
        assert structured[0].place.place_id == "c0"
        assert structured[0].kind is EpisodeKind.STOP

    def test_move_gets_dominant_region(self, strip_source, crossing_trajectory):
        episodes = [Episode(EpisodeKind.MOVE, crossing_trajectory, 0, 30)]
        structured = RegionAnnotator(strip_source).annotate_episodes(episodes)
        # Points 0..29 at x=0..290: cells c0 (10 pts), c1 (10), c2 (10); ties break by id.
        assert structured[0].place is not None

    def test_episode_annotation_also_attached_to_episode(self, strip_source, crossing_trajectory):
        episode = Episode(EpisodeKind.STOP, crossing_trajectory, 0, 5)
        RegionAnnotator(strip_source).annotate_episodes([episode])
        assert episode.annotations_of_kind(AnnotationKind.REGION)

    def test_intersects_predicate(self, strip_source, crossing_trajectory):
        config = RegionAnnotationConfig(join_predicate="intersects")
        episodes = [Episode(EpisodeKind.MOVE, crossing_trajectory, 0, 30)]
        structured = RegionAnnotator(strip_source, config).annotate_episodes(episodes)
        assert structured[0].place is not None

    def test_empty_episode_list_raises(self, strip_source):
        with pytest.raises(ValueError):
            RegionAnnotator(strip_source).annotate_episodes([])


class TestDistributions:
    def test_point_category_distribution(self, strip_source, crossing_trajectory):
        counts = RegionAnnotator(strip_source).point_category_distribution([crossing_trajectory])
        assert counts["1.2"] == 20
        assert counts["1.3"] == 10

    def test_episode_category_distribution(self, strip_source, crossing_trajectory):
        episodes = [
            Episode(EpisodeKind.STOP, crossing_trajectory, 0, 5),
            Episode(EpisodeKind.STOP, crossing_trajectory, 25, 30),
        ]
        counts = RegionAnnotator(strip_source).episode_category_distribution(episodes)
        assert counts == {"1.2": 2}
