"""People (smartphone) trajectory simulator.

Substitute for the Nokia smartphone dataset of Table 2: daily trajectories of
people who commute between home and office using different transportation
modes (walk + metro, bicycle, bus, or walking only), run errands at lunch and
shop in the evening.  People trajectories are deliberately messier than the
vehicle ones:

* GPS fixes are dropped with high probability during indoor stops (signal
  loss at home and at the office);
* the sampling period varies from fix to fix (power-saving duty cycling);
* positional noise is larger than for vehicles;
* commutes combine on-road and off-road (footpath) legs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.datasets.movement import PathSample, concatenate, sample_dwell, sample_path
from repro.datasets.routing import RoadRouter
from repro.datasets.world import SyntheticWorld
from repro.geometry.primitives import Point

#: Commute styles and the mode sequence each one implies.
COMMUTE_STYLES: Tuple[str, ...] = ("metro", "bicycle", "bus", "walk")


@dataclass(frozen=True)
class PersonProfile:
    """Static description of one simulated smartphone user."""

    user_id: str
    home: Point
    office: Point
    commute_style: str
    days: int
    leisure_bias: float = 0.3
    """Probability of an extra evening leisure stop (park, sport)."""

    excursion_days: Tuple[int, ...] = ()
    """Day indices spent on an off-urban excursion (hike to the forest or lake)
    instead of commuting; this is what makes some users' landuse profiles stand
    out in Figure 14 (the paper's forest-hiking and lake-side users)."""


@dataclass
class PeopleDataset:
    """Generated people dataset: daily trajectories per user plus ground truth."""

    trajectories_by_user: Dict[str, List[RawTrajectory]] = field(default_factory=dict)
    truth_segments: Dict[str, List[Optional[str]]] = field(default_factory=dict)
    profiles: Dict[str, PersonProfile] = field(default_factory=dict)

    @property
    def all_trajectories(self) -> List[RawTrajectory]:
        """Every daily trajectory of every user."""
        result: List[RawTrajectory] = []
        for trajectories in self.trajectories_by_user.values():
            result.extend(trajectories)
        return result

    @property
    def gps_record_count(self) -> int:
        """Total number of GPS fixes."""
        return sum(len(t) for t in self.all_trajectories)

    @property
    def user_ids(self) -> List[str]:
        """Identifiers of the simulated users."""
        return sorted(self.trajectories_by_user.keys())


class PersonSimulator:
    """Simulates daily smartphone trajectories for a set of user profiles."""

    def __init__(
        self,
        world: SyntheticWorld,
        user_count: int = 6,
        days_per_user: int = 3,
        noise_sigma: float = 12.0,
        indoor_drop_probability: float = 0.85,
        seed: int = 31,
    ):
        self._world = world
        self._user_count = user_count
        self._days_per_user = days_per_user
        self._noise_sigma = noise_sigma
        self._indoor_drop = indoor_drop_probability
        self._seed = seed
        network = world.road_network()
        self._walk_router = RoadRouter(network, allowed_types=("road", "path_way"))
        self._metro_router = RoadRouter(network, allowed_types=("metro_line",))
        self._road_router = RoadRouter(network, allowed_types=("road", "highway"))
        self._network = network

    # -------------------------------------------------------------- profiles
    def build_profiles(self) -> List[PersonProfile]:
        """Deterministic user profiles (one commute style per user, round-robin)."""
        profiles: List[PersonProfile] = []
        for index in range(self._user_count):
            rng = np.random.default_rng(self._seed + index * 97)
            style = COMMUTE_STYLES[index % len(COMMUTE_STYLES)]
            # Every other user spends their last tracked day on an excursion
            # (hike in the woods or a lake-side walk), which diversifies the
            # per-user landuse profiles exactly as Figure 14 shows.
            excursions: Tuple[int, ...] = ()
            if index % 2 == 1 and self._days_per_user >= 2:
                excursions = (self._days_per_user - 1,)
            profiles.append(
                PersonProfile(
                    user_id=f"user{index + 1}",
                    home=self._world.random_home(rng),
                    office=self._world.random_office(rng),
                    commute_style=style,
                    days=self._days_per_user,
                    leisure_bias=float(rng.uniform(0.1, 0.5)),
                    excursion_days=excursions,
                )
            )
        return profiles

    # -------------------------------------------------------------- generation
    def generate(self, profiles: Optional[Sequence[PersonProfile]] = None) -> PeopleDataset:
        """Generate daily trajectories for every profile."""
        dataset = PeopleDataset()
        for profile in profiles if profiles is not None else self.build_profiles():
            dataset.profiles[profile.user_id] = profile
            dataset.trajectories_by_user[profile.user_id] = []
            for day in range(profile.days):
                user_hash = sum(ord(char) for char in profile.user_id)
                rng = np.random.default_rng(self._seed + user_hash + day * 131)
                sample = self._simulate_day(profile, rng, day)
                if len(sample.points) < 5:
                    continue
                trajectory_id = f"{profile.user_id}-day{day}"
                trajectory = RawTrajectory(
                    self._apply_variable_sampling(sample.points, rng),
                    object_id=profile.user_id,
                    trajectory_id=trajectory_id,
                )
                dataset.trajectories_by_user[profile.user_id].append(trajectory)
                dataset.truth_segments[trajectory_id] = sample.truth_segment_ids
        return dataset

    # ---------------------------------------------------------------- per-day
    def _simulate_day(
        self, profile: PersonProfile, rng: np.random.Generator, day: int
    ) -> PathSample:
        if day in profile.excursion_days:
            return self._simulate_excursion_day(profile, rng, day)
        day_start = day * 86_400.0
        pieces: List[PathSample] = []
        current_time = day_start + 7 * 3600.0 + float(rng.uniform(0, 1800.0))

        # Morning at home (mostly indoors, few fixes).
        home_dwell = sample_dwell(
            profile.home,
            duration=float(rng.uniform(1200.0, 2400.0)),
            sample_interval=30.0,
            noise_sigma=self._noise_sigma,
            rng=rng,
            start_time=current_time,
            indoor_drop_probability=self._indoor_drop,
        )
        pieces.append(home_dwell)
        current_time = home_dwell.end_time

        # Commute to the office.
        commute = self._commute(profile, profile.home, profile.office, rng, current_time)
        pieces.append(commute)
        current_time = commute.end_time

        # Work (long indoor stop).
        work_dwell = sample_dwell(
            profile.office,
            duration=float(rng.uniform(6 * 3600.0, 8 * 3600.0)),
            sample_interval=60.0,
            noise_sigma=self._noise_sigma,
            rng=rng,
            start_time=current_time,
            indoor_drop_probability=self._indoor_drop,
        )
        pieces.append(work_dwell)
        current_time = work_dwell.end_time

        # Evening shopping stop near the commercial centre.
        shop = self._nearby_poi_location(self._world.config.commercial_center, rng)
        walk_to_shop = self._walk_leg(profile.office, shop, rng, current_time)
        pieces.append(walk_to_shop)
        current_time = walk_to_shop.end_time
        shop_dwell = sample_dwell(
            shop,
            duration=float(rng.uniform(900.0, 2400.0)),
            sample_interval=20.0,
            noise_sigma=self._noise_sigma * 0.8,
            rng=rng,
            start_time=current_time,
            indoor_drop_probability=0.4,
        )
        pieces.append(shop_dwell)
        current_time = shop_dwell.end_time

        # Optional leisure detour (park footpaths).
        if rng.random() < profile.leisure_bias:
            park = Point(self._world.config.size * 0.65, self._world.config.size * 0.35)
            walk_to_park = self._walk_leg(shop, park, rng, current_time)
            pieces.append(walk_to_park)
            current_time = walk_to_park.end_time
            park_dwell = sample_dwell(
                park,
                duration=float(rng.uniform(1200.0, 2400.0)),
                sample_interval=20.0,
                noise_sigma=self._noise_sigma * 0.8,
                rng=rng,
                start_time=current_time,
                indoor_drop_probability=0.1,
            )
            pieces.append(park_dwell)
            current_time = park_dwell.end_time
            shop = park

        # Commute home.
        commute_home = self._commute(profile, shop, profile.home, rng, current_time)
        pieces.append(commute_home)
        current_time = commute_home.end_time

        # Evening at home.
        pieces.append(
            sample_dwell(
                profile.home,
                duration=float(rng.uniform(1200.0, 2400.0)),
                sample_interval=60.0,
                noise_sigma=self._noise_sigma,
                rng=rng,
                start_time=current_time,
                indoor_drop_probability=self._indoor_drop,
            )
        )
        return concatenate(pieces)

    def _simulate_excursion_day(
        self, profile: PersonProfile, rng: np.random.Generator, day: int
    ) -> PathSample:
        """A leisure day: hike to the wooded north edge or walk to the lake.

        The outbound leg starts on the street network and continues off-road
        (no matching road segments), producing exactly the kind of off-network
        movement that makes people trajectories heterogeneous: forest, meadow
        and lake-side GPS points far from any urban cell.
        """
        size = self._world.config.size
        day_start = day * 86_400.0
        current_time = day_start + 9 * 3600.0 + float(rng.uniform(0, 1800.0))
        pieces: List[PathSample] = []

        # Late morning at home.
        home_dwell = sample_dwell(
            profile.home,
            duration=float(rng.uniform(1800.0, 3600.0)),
            sample_interval=60.0,
            noise_sigma=self._noise_sigma,
            rng=rng,
            start_time=current_time,
            indoor_drop_probability=self._indoor_drop,
        )
        pieces.append(home_dwell)
        current_time = home_dwell.end_time

        # Pick the destination: hikers head to the forest, the others to the lake.
        if rng.random() < 0.5:
            destination = Point(
                float(rng.uniform(size * 0.3, size * 0.6)), float(rng.uniform(size * 0.86, size * 0.93))
            )
        else:
            destination = Point(
                float(rng.uniform(size * 0.88, size * 0.96)), float(rng.uniform(size * 0.05, size * 0.18))
            )

        # Walk along the streets to the edge of the urban core...
        core_exit = Point(
            min(max(destination.x, self._world.config.core_min), self._world.config.core_max),
            self._world.config.core_max if destination.y > size / 2 else self._world.config.core_min,
        )
        walk_out = self._walk_leg(profile.home, core_exit, rng, current_time)
        pieces.append(walk_out)
        current_time = walk_out.end_time

        # ... then hike off-road to the destination and back.
        hike_out = sample_path(
            [core_exit, destination],
            [None],
            speed=float(rng.uniform(1.0, 1.4)),
            sample_interval=float(rng.uniform(15.0, 30.0)),
            noise_sigma=self._noise_sigma * 1.2,
            rng=rng,
            start_time=current_time,
        )
        pieces.append(hike_out)
        current_time = hike_out.end_time
        picnic = sample_dwell(
            destination,
            duration=float(rng.uniform(3600.0, 7200.0)),
            sample_interval=60.0,
            noise_sigma=self._noise_sigma,
            rng=rng,
            start_time=current_time,
            indoor_drop_probability=0.1,
        )
        pieces.append(picnic)
        current_time = picnic.end_time
        hike_back = sample_path(
            [destination, core_exit],
            [None],
            speed=float(rng.uniform(1.0, 1.4)),
            sample_interval=float(rng.uniform(15.0, 30.0)),
            noise_sigma=self._noise_sigma * 1.2,
            rng=rng,
            start_time=current_time,
        )
        pieces.append(hike_back)
        current_time = hike_back.end_time

        # Walk home and stay in for the evening.
        walk_home = self._walk_leg(core_exit, profile.home, rng, current_time)
        pieces.append(walk_home)
        pieces.append(
            sample_dwell(
                profile.home,
                duration=float(rng.uniform(1800.0, 3600.0)),
                sample_interval=60.0,
                noise_sigma=self._noise_sigma,
                rng=rng,
                start_time=walk_home.end_time,
                indoor_drop_probability=self._indoor_drop,
            )
        )
        return concatenate(pieces)

    # ------------------------------------------------------------------ legs
    def _commute(
        self,
        profile: PersonProfile,
        origin: Point,
        destination: Point,
        rng: np.random.Generator,
        start_time: float,
    ) -> PathSample:
        style = profile.commute_style
        if style == "metro":
            return self._metro_commute(origin, destination, rng, start_time)
        if style == "bicycle":
            return self._routed_leg(
                self._walk_router, origin, destination, rng, start_time, speed_range=(4.0, 6.0)
            )
        if style == "bus":
            return self._routed_leg(
                self._road_router, origin, destination, rng, start_time, speed_range=(7.0, 10.0)
            )
        return self._walk_leg(origin, destination, rng, start_time)

    def _walk_leg(
        self, origin: Point, destination: Point, rng: np.random.Generator, start_time: float
    ) -> PathSample:
        return self._routed_leg(
            self._walk_router, origin, destination, rng, start_time, speed_range=(1.1, 1.7)
        )

    def _routed_leg(
        self,
        router: RoadRouter,
        origin: Point,
        destination: Point,
        rng: np.random.Generator,
        start_time: float,
        speed_range: Tuple[float, float],
    ) -> PathSample:
        waypoints, segment_ids = router.shortest_path(origin, destination)
        # Short off-road legs from the true origin/destination to the network.
        waypoints = [origin] + waypoints + [destination]
        segment_ids = [None] + segment_ids + [None]
        return sample_path(
            waypoints,
            segment_ids,
            speed=float(rng.uniform(*speed_range)),
            sample_interval=float(rng.uniform(8.0, 15.0)),
            noise_sigma=self._noise_sigma,
            rng=rng,
            start_time=start_time,
        )

    def _metro_commute(
        self,
        origin: Point,
        destination: Point,
        rng: np.random.Generator,
        start_time: float,
    ) -> PathSample:
        """Walk to the nearest metro station, ride, walk to the destination.

        This is the home-office pattern of Figure 15: a walking leg, a metro
        leg travelled at metro speed, and a final walking leg.  When origin and
        destination share the nearest station the commute degenerates to a
        plain walk.
        """
        origin_station = self._metro_router.node_position(
            self._metro_router.nearest_node(origin)
        )
        destination_station = self._metro_router.node_position(
            self._metro_router.nearest_node(destination)
        )
        if origin_station.distance_to(destination_station) < 1.0:
            return self._walk_leg(origin, destination, rng, start_time)

        pieces: List[PathSample] = []
        walk_in = self._walk_leg(origin, origin_station, rng, start_time)
        pieces.append(walk_in)
        ride_waypoints, ride_segments = self._metro_router.shortest_path(
            origin_station, destination_station
        )
        ride = sample_path(
            ride_waypoints,
            ride_segments,
            speed=float(rng.uniform(14.0, 18.0)),
            sample_interval=float(rng.uniform(8.0, 15.0)),
            noise_sigma=self._noise_sigma * 1.5,
            rng=rng,
            start_time=walk_in.end_time,
        )
        pieces.append(ride)
        pieces.append(self._walk_leg(destination_station, destination, rng, ride.end_time))
        return concatenate(pieces)

    # -------------------------------------------------------------- utilities
    def _nearby_poi_location(self, around: Point, rng: np.random.Generator) -> Point:
        pois = self._world.poi_source().pois_within(around, radius=800.0)
        if pois:
            _, poi = pois[int(rng.integers(0, len(pois)))]
            return poi.location
        return Point(
            around.x + float(rng.normal(0.0, 200.0)),
            around.y + float(rng.normal(0.0, 200.0)),
        )

    def _apply_variable_sampling(
        self, points: Sequence[SpatioTemporalPoint], rng: np.random.Generator
    ) -> List[SpatioTemporalPoint]:
        """Randomly thin the stream to emulate duty-cycled GPS sampling."""
        if len(points) <= 10:
            return list(points)
        kept: List[SpatioTemporalPoint] = [points[0]]
        for point in points[1:-1]:
            if rng.random() < 0.85:
                kept.append(point)
        kept.append(points[-1])
        return kept
