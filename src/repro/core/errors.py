"""Exception hierarchy for the SeMiTri reproduction.

Every error raised by the library derives from :class:`SemitriError`, so
applications can catch a single type.  Sub-classes distinguish configuration
mistakes, data-quality failures detected in GPS streams, and problems with the
third-party geographic sources.
"""

from __future__ import annotations


class SemitriError(Exception):
    """Base class for all SeMiTri errors."""


class ConfigurationError(SemitriError):
    """A configuration object contains an invalid or inconsistent value."""


class DataQualityError(SemitriError):
    """A GPS stream or trajectory violates a structural requirement.

    Examples: timestamps that are not monotonically non-decreasing, an empty
    trajectory fed to an annotation layer, or an episode whose time interval
    is inverted.
    """


class SourceError(SemitriError):
    """A third-party geographic source is missing, empty or malformed."""


class StoreError(SemitriError):
    """The semantic trajectory store rejected an operation."""


class ServiceError(SemitriError):
    """The ingestion service was used outside its lifecycle contract.

    Examples: feeding events before :meth:`AnnotationService.start` or after
    a drain began, or draining a service that was never started.
    """


class InjectedFault(SemitriError):
    """An artificial failure raised by the deterministic fault injector.

    Only ever raised when ``SEMITRI_FAULTS`` (or an explicit
    :class:`~repro.faults.inject.FaultPlan`) arms :mod:`repro.faults.inject`;
    production runs never see this type.  It deliberately derives from
    :class:`SemitriError` so injected chaos exercises exactly the handling
    paths real failures take.
    """
