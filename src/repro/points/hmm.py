"""A generic discrete-state Hidden Markov Model with Viterbi decoding.

The semantic-point annotation layer models the sequence of stops of a
trajectory as observations of an HMM whose hidden states are POI categories
(Figure 5).  This module implements the model container ``lambda = (pi, A, B)``
and the dynamic-programming decoder of Algorithm 3 (Equations 5-7), plus the
forward algorithm used by tests to cross-check likelihoods.

Observation probabilities are supplied by a callable ``B(state, observation)``
so the same decoder serves both the POI observation model (continuous stop
positions) and the unit tests (small discrete alphabets).

The decoder has two implementations selected by ``backend``: the scalar
dict-based recurrence (``"python"``, the reference oracle) and a vectorized
one (``"numpy"``) that runs Equation 5/6 over log-space ``delta``/``psi``
matrices.  They are **bit-identical**: the vectorized path pre-computes every
logarithm with the same ``math.log`` calls as the scalar loop and the
recurrence itself uses only IEEE additions and first-occurrence ``argmax``,
which mirrors the scalar strict-``>`` update exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple, TypeVar

import numpy as np

from repro.core.errors import ConfigurationError

Observation = TypeVar("Observation")

#: Type of the observation-probability callable B: (state, observation) -> probability.
ObservationFn = Callable[[str, object], float]


@dataclass(frozen=True)
class ViterbiResult:
    """Output of Viterbi decoding: state sequence, its log-probability, per-step deltas."""

    states: List[str]
    log_probability: float
    deltas: List[Dict[str, float]]


class HiddenMarkovModel:
    """Discrete-state HMM ``lambda = (pi, A, B)`` over named states.

    Parameters
    ----------
    states:
        Ordered state names (POI categories in the paper).
    initial:
        Mapping state -> initial probability ``pi``; must sum to ~1.
    transitions:
        Mapping state -> {state -> probability}; each row must sum to ~1.
    min_probability:
        Floor applied to probabilities before taking logarithms.
    """

    def __init__(
        self,
        states: Sequence[str],
        initial: Dict[str, float],
        transitions: Dict[str, Dict[str, float]],
        min_probability: float = 1e-12,
        backend: str = "numpy",
    ):
        if not states:
            raise ConfigurationError("an HMM needs at least one state")
        if len(set(states)) != len(states):
            raise ConfigurationError("HMM state names must be unique")
        if backend not in ("numpy", "python"):
            raise ConfigurationError(
                f"unknown HMM backend {backend!r}; expected 'numpy' or 'python'"
            )
        self._states: List[str] = list(states)
        self._min_probability = min_probability
        self._backend = backend
        self._initial = self._validated_distribution(initial, "initial")
        self._transitions: Dict[str, Dict[str, float]] = {}
        for state in self._states:
            row = transitions.get(state)
            if row is None:
                raise ConfigurationError(f"missing transition row for state {state!r}")
            self._transitions[state] = self._validated_distribution(row, f"transitions[{state}]")
        # Log-space parameters of the vectorized decoder, pre-computed with
        # the same `_log` calls the scalar loops make (so both decoders add
        # exactly the same floats).
        self._log_initial = np.array(
            [self._log(self._initial[state]) for state in self._states], dtype=np.float64
        )
        self._log_transitions = np.array(
            [
                [self._log(self._transitions[source][target]) for target in self._states]
                for source in self._states
            ],
            dtype=np.float64,
        )

    # -------------------------------------------------------------- accessors
    @property
    def states(self) -> List[str]:
        """Ordered state names."""
        return list(self._states)

    @property
    def initial(self) -> Dict[str, float]:
        """Initial state distribution pi."""
        return dict(self._initial)

    @property
    def transitions(self) -> Dict[str, Dict[str, float]]:
        """State-transition matrix A as nested dictionaries."""
        return {state: dict(row) for state, row in self._transitions.items()}

    def transition_matrix(self) -> np.ndarray:
        """A as a dense numpy array (rows/columns follow the state order)."""
        matrix = np.zeros((len(self._states), len(self._states)))
        for i, source in enumerate(self._states):
            for j, target in enumerate(self._states):
                matrix[i, j] = self._transitions[source][target]
        return matrix

    @property
    def backend(self) -> str:
        """The active decoder backend (``"numpy"`` or ``"python"``)."""
        return self._backend

    # --------------------------------------------------------------- decoding
    def viterbi(
        self, observations: Sequence[object], observation_fn: ObservationFn
    ) -> ViterbiResult:
        """Most probable hidden state sequence for ``observations`` (Algorithm 3).

        ``observation_fn(state, observation)`` must return ``Pr(o | state)``.
        Computation is carried out in log space; the per-step ``delta`` tables
        of Equation 5/6 are returned (as log-probabilities) for inspection.
        Dispatches to the vectorized matrix recurrence under the ``numpy``
        backend and to :meth:`viterbi_scalar` (the reference oracle) under
        ``python``; the two are bit-identical (see the module docstring).
        """
        if self._backend == "numpy":
            return self._viterbi_arrays(observations, observation_fn)
        return self.viterbi_scalar(observations, observation_fn)

    def _viterbi_arrays(
        self, observations: Sequence[object], observation_fn: ObservationFn
    ) -> ViterbiResult:
        """Vectorized Algorithm 3: log-space ``delta``/``psi`` matrices.

        The observation log-probabilities are still produced by per-state
        ``_log(observation_fn(...))`` calls — identical to the scalar loop —
        but the O(n^2) recurrence per step collapses into one broadcast add
        and a column-wise ``argmax`` (first occurrence, matching the scalar
        strict-``>`` tie-break); termination replicates the scalar
        ``max(..., key=(value, state))`` tie-break on state *names*.
        """
        if not observations:
            return ViterbiResult(states=[], log_probability=0.0, deltas=[])
        states = self._states
        n = len(states)
        log_b = np.empty(n, dtype=np.float64)

        def fill_log_b(observation: object) -> None:
            for i, state in enumerate(states):
                log_b[i] = self._log(observation_fn(state, observation))

        fill_log_b(observations[0])
        delta = self._log_initial + log_b
        deltas = [delta]
        psi: List[np.ndarray] = []
        for observation in observations[1:]:
            scores = delta[:, None] + self._log_transitions
            pointers = np.argmax(scores, axis=0)
            best = scores[pointers, np.arange(n)]
            fill_log_b(observation)
            delta = best + log_b
            deltas.append(delta)
            psi.append(pointers)

        # Termination: ties on the final delta prefer the lexicographically
        # greatest state name, like the scalar `max(items, key=(value, state))`.
        peak = float(delta.max())
        best_index = max(
            (i for i in range(n) if delta[i] == peak), key=lambda i: states[i]
        )
        indices = [best_index]
        for pointers in reversed(psi):
            indices.append(int(pointers[indices[-1]]))
        indices.reverse()
        return ViterbiResult(
            states=[states[i] for i in indices],
            log_probability=peak,
            deltas=[
                {state: float(row[i]) for i, state in enumerate(states)} for row in deltas
            ],
        )

    def viterbi_scalar(
        self, observations: Sequence[object], observation_fn: ObservationFn
    ) -> ViterbiResult:
        """The scalar dict-based Algorithm 3 recurrence (the reference oracle)."""
        if not observations:
            return ViterbiResult(states=[], log_probability=0.0, deltas=[])

        log_delta: List[Dict[str, float]] = []
        psi: List[Dict[str, str]] = []

        # Initialisation: delta_1(i) = pi_i * B_i(o_1).
        first: Dict[str, float] = {}
        for state in self._states:
            first[state] = self._log(self._initial[state]) + self._log(
                observation_fn(state, observations[0])
            )
        log_delta.append(first)
        psi.append({})

        # Recursion: delta_t(j) = max_i [delta_{t-1}(i) A_ij] * B_j(o_t).
        for observation in observations[1:]:
            current: Dict[str, float] = {}
            pointers: Dict[str, str] = {}
            previous = log_delta[-1]
            for target in self._states:
                best_state = self._states[0]
                best_value = -math.inf
                for source in self._states:
                    value = previous[source] + self._log(self._transitions[source][target])
                    if value > best_value:
                        best_value = value
                        best_state = source
                current[target] = best_value + self._log(observation_fn(target, observation))
                pointers[target] = best_state
            log_delta.append(current)
            psi.append(pointers)

        # Termination and backtracking: q*_T = argmax_i delta_T(i).
        last = log_delta[-1]
        best_final = max(last.items(), key=lambda pair: (pair[1], pair[0]))
        states = [best_final[0]]
        for pointers in reversed(psi[1:]):
            states.append(pointers[states[-1]])
        states.reverse()
        return ViterbiResult(states=states, log_probability=best_final[1], deltas=log_delta)

    def forward_log_likelihood(
        self, observations: Sequence[object], observation_fn: ObservationFn
    ) -> float:
        """Log-likelihood of ``observations`` under the model (forward algorithm).

        Not needed by Algorithm 3 itself but used by the tests to verify that
        the Viterbi path's probability never exceeds the total observation
        likelihood.
        """
        if not observations:
            return 0.0
        alpha = {
            state: self._log(self._initial[state])
            + self._log(observation_fn(state, observations[0]))
            for state in self._states
        }
        for observation in observations[1:]:
            new_alpha: Dict[str, float] = {}
            for target in self._states:
                terms = [
                    alpha[source] + self._log(self._transitions[source][target])
                    for source in self._states
                ]
                new_alpha[target] = _log_sum_exp(terms) + self._log(
                    observation_fn(target, observation)
                )
            alpha = new_alpha
        return _log_sum_exp(list(alpha.values()))

    def brute_force_best_path(
        self, observations: Sequence[object], observation_fn: ObservationFn
    ) -> Tuple[List[str], float]:
        """Exhaustive search over all state sequences (test oracle only)."""
        if not observations:
            return [], 0.0
        best_path: List[str] = []
        best_value = -math.inf

        def recurse(index: int, path: List[str], value: float) -> None:
            nonlocal best_path, best_value
            if index == len(observations):
                if value > best_value:
                    best_value = value
                    best_path = list(path)
                return
            for state in self._states:
                if index == 0:
                    step = self._log(self._initial[state])
                else:
                    step = self._log(self._transitions[path[-1]][state])
                step += self._log(observation_fn(state, observations[index]))
                path.append(state)
                recurse(index + 1, path, value + step)
                path.pop()

        recurse(0, [], 0.0)
        return best_path, best_value

    # -------------------------------------------------------------- internals
    def _log(self, probability: float) -> float:
        return math.log(max(probability, self._min_probability))

    def _validated_distribution(self, raw: Dict[str, float], label: str) -> Dict[str, float]:
        distribution: Dict[str, float] = {}
        for state in self._states:
            if state not in raw:
                raise ConfigurationError(f"{label} is missing state {state!r}")
            value = float(raw[state])
            if value < 0:
                raise ConfigurationError(f"{label}[{state}] is negative")
            distribution[state] = value
        total = sum(distribution.values())
        if total <= 0:
            raise ConfigurationError(f"{label} must contain at least one positive probability")
        if abs(total - 1.0) > 1e-6:
            distribution = {state: value / total for state, value in distribution.items()}
        return distribution


def uniform_transitions(states: Sequence[str]) -> Dict[str, Dict[str, float]]:
    """A fully uniform transition matrix over ``states``."""
    probability = 1.0 / len(states)
    return {source: {target: probability for target in states} for source in states}


def diagonal_transitions(
    states: Sequence[str], self_probability: float = 0.8
) -> Dict[str, Dict[str, float]]:
    """The default transition structure of Figure 6.

    Each state keeps ``self_probability`` on the diagonal and spreads the rest
    uniformly over the other states; this encodes "a moving object tends to
    keep performing activities of the same category" without any history.
    """
    if not (0.0 < self_probability < 1.0):
        raise ConfigurationError("self_probability must lie strictly between 0 and 1")
    if len(states) == 1:
        return {states[0]: {states[0]: 1.0}}
    off_probability = (1.0 - self_probability) / (len(states) - 1)
    return {
        source: {
            target: (self_probability if source == target else off_probability)
            for target in states
        }
        for source in states
    }


def _log_sum_exp(values: Sequence[float]) -> float:
    """Numerically stable log(sum(exp(values)))."""
    peak = max(values)
    if peak == -math.inf:
        return -math.inf
    return peak + math.log(sum(math.exp(value - peak) for value in values))
