"""SeMiTri reproduction: semantic annotation of heterogeneous trajectories.

A from-scratch Python implementation of the SeMiTri framework (Yan et al.,
EDBT 2011): the semantic trajectory model, the trajectory-computation layer
(cleaning, identification, stop/move segmentation), the three semantic
annotation layers (regions via spatial join, lines via global map matching and
transportation-mode inference, points via an HMM over POI categories), the
semantic trajectory store and analytics, and deterministic synthetic datasets
standing in for the paper's proprietary GPS and geographic sources.

The public API is the handful of functions in :mod:`repro.api`, re-exported
here::

    import repro
    from repro import AnnotationSources, PipelineConfig
    from repro.datasets import SyntheticWorld, TaxiFleetSimulator

    world = SyntheticWorld()
    taxis = TaxiFleetSimulator(world).generate()
    sources = AnnotationSources(
        regions=world.region_source(),
        road_network=world.road_network(),
        pois=world.poi_source(),
    )
    results = repro.annotate_many(
        taxis.trajectories, sources, config=PipelineConfig.for_vehicles()
    )

plus :func:`repro.stream` for online feeds, :func:`repro.serve` for the
asyncio multi-stream ingestion service and :func:`repro.compile_plan` for
custom stage plans.  The pre-PR 8 class entry points (``repro.SeMiTriPipeline``,
``repro.StreamingAnnotationEngine``) still resolve but emit a
``DeprecationWarning``; deep imports (``repro.core``, ``repro.streaming``)
remain fully supported.
"""

import warnings

from repro.core import (
    Annotation,
    AnnotationKind,
    AnnotationSources,
    Episode,
    EpisodeKind,
    LineOfInterest,
    MapMatchingConfig,
    PipelineConfig,
    PipelineResult,
    PointAnnotationConfig,
    PointOfInterest,
    RawTrajectory,
    RegionAnnotationConfig,
    RegionOfInterest,
    SemanticPlace,
    SemanticTrajectory,
    SpatioTemporalPoint,
    StopMoveConfig,
    StreamingConfig,
    StructuredSemanticTrajectory,
)

# The streaming package must be imported before anything touches
# ``repro.engine``: engine stages import ``repro.streaming.matching``, and
# entering that cycle through ``repro.streaming`` (rather than through
# ``repro.engine``) is the order that resolves.  Priming it here covers every
# later import, eager or lazy.
import repro.streaming  # noqa: E402,F401  (import-cycle priming)
from repro.api import (  # noqa: E402
    annotate,
    annotate_many,
    compile_plan,
    open_pipeline,
    serve,
    stream,
)

__version__ = "1.1.0"

__all__ = [
    "Annotation",
    "AnnotationKind",
    "AnnotationSources",
    "Episode",
    "EpisodeKind",
    "LineOfInterest",
    "MapMatchingConfig",
    "PipelineConfig",
    "PipelineResult",
    "PointAnnotationConfig",
    "PointOfInterest",
    "RawTrajectory",
    "RegionAnnotationConfig",
    "RegionOfInterest",
    "SemanticPlace",
    "SemanticTrajectory",
    "SpatioTemporalPoint",
    "StopMoveConfig",
    "StreamingConfig",
    "StructuredSemanticTrajectory",
    "__version__",
    "annotate",
    "annotate_many",
    "compile_plan",
    "open_pipeline",
    "serve",
    "stream",
]

# Legacy top-level entry points, kept as lazy deprecated aliases: resolving
# them still returns the real class (so existing code keeps working), but
# with a one-line migration hint.  Deep imports of the same classes
# (``repro.core.SeMiTriPipeline``, ``repro.streaming.StreamingAnnotationEngine``)
# are NOT deprecated — they are the supported advanced surface.
_DEPRECATED = {
    "SeMiTriPipeline": (
        "repro.core.pipeline",
        "SeMiTriPipeline",
        "use repro.open_pipeline() / repro.annotate_many() instead of repro.SeMiTriPipeline",
    ),
    "StreamingAnnotationEngine": (
        "repro.streaming.engine",
        "StreamingAnnotationEngine",
        "use repro.stream() instead of repro.StreamingAnnotationEngine",
    ),
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        module_name, attribute, hint = _DEPRECATED[name]
        warnings.warn(
            f"repro.{name} is deprecated; {hint}",
            DeprecationWarning,
            stacklevel=2,
        )
        import importlib

        return getattr(importlib.import_module(module_name), attribute)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(__all__) | set(_DEPRECATED))
