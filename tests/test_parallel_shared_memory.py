"""Zero-copy shared-memory snapshot transport and size-aware dispatch.

Covers the acceptance criteria of the parallel-scaling fix:

* :class:`SharedArrayBundle` round-trips named numpy blocks through one
  POSIX segment with read-only zero-copy views on the attach side;
* :func:`share_context` / :func:`attach_context` rebuild a
  :class:`GeoContext` whose flat-index arrays *alias* the shared segment
  (asserted with :func:`numpy.shares_memory`) instead of copying;
* canonical output bytes are identical across every
  ``dispatch`` × ``shared_memory`` combination and equal to sequential;
* no ``/dev/shm`` segment survives a runner/executor close, a dropped
  (garbage-collected) executor or a SIGKILLed worker.
"""

from __future__ import annotations

import dataclasses
import gc
import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.core import PipelineConfig, SeMiTriPipeline
from repro.core.errors import ConfigurationError
from repro.engine.executors import ProcessPoolExecutor, dispatch_shards
from repro.parallel import (
    GeoContext,
    ParallelAnnotationRunner,
    SharedArrayBundle,
    canonical_bytes,
    canonical_digest,
    attach_context,
    share_context,
)

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="POSIX shared memory not available"
)

TEST_WORKERS = max(2, int(os.environ.get("SEMITRI_TEST_WORKERS", "2")))


def _segment_paths(name):
    return glob.glob(f"/dev/shm/{name}") + glob.glob(f"/dev/shm/psm_{name}")


def _people_config() -> PipelineConfig:
    config = PipelineConfig.for_people()
    # Pin the flat index backend: the zero-copy assertions below inspect the
    # flat-index blocks by name, which only exist on that backend.
    return dataclasses.replace(
        config, compute=dataclasses.replace(config.compute, index_backend="flat")
    )


@pytest.fixture(scope="module")
def flat_context(annotation_sources) -> GeoContext:
    return GeoContext.build(annotation_sources, _people_config())


@pytest.fixture(scope="module")
def small_batch(people_dataset):
    return people_dataset.all_trajectories


@pytest.fixture(scope="module")
def sequential_bytes(small_batch, annotation_sources) -> bytes:
    results = SeMiTriPipeline(_people_config()).annotate_many(
        small_batch, annotation_sources
    )
    return canonical_bytes(results)


# ------------------------------------------------------------ bundle basics
class TestSharedArrayBundle:
    def test_round_trip_values_and_read_only_views(self):
        arrays = {
            "floats": np.linspace(0.0, 1.0, 512),
            "ints": np.arange(128, dtype=np.int64).reshape(8, 16),
            "tiny": np.array([1.5, 2.5]),
        }
        with SharedArrayBundle.create(arrays) as bundle:
            attached = SharedArrayBundle.attach(bundle.manifest)
            try:
                assert attached.keys() == tuple(arrays)
                for key, array in arrays.items():
                    view = attached[key]
                    assert np.array_equal(view, array)
                    assert view.shape == array.shape
                    assert view.dtype == array.dtype
                    assert not view.flags.writeable
                    with pytest.raises((ValueError, RuntimeError)):
                        view[(0,) * view.ndim] = 99.0
            finally:
                attached.close()

    def test_blocks_are_cache_line_aligned(self):
        arrays = {"a": np.ones(3), "b": np.ones(5), "c": np.ones(7)}
        with SharedArrayBundle.create(arrays) as bundle:
            for block in bundle.manifest.blocks:
                assert block.offset % 64 == 0

    def test_unknown_key_and_contiguity_validation(self):
        with SharedArrayBundle.create({"a": np.ones(4)}) as bundle:
            with pytest.raises(KeyError):
                bundle["missing"]
        with pytest.raises(ValueError):
            SharedArrayBundle.create({"f": np.ones((8, 8))[:, ::2]})
        with pytest.raises(ValueError):
            SharedArrayBundle.create({"o": np.array([object()], dtype=object)})

    def test_close_unlinks_segment_even_with_live_views(self):
        bundle = SharedArrayBundle.create({"a": np.arange(64, dtype=np.float64)})
        segment = bundle.segment_name
        view = bundle["a"]  # still referenced when the segment goes away
        assert _segment_paths(segment)
        bundle.close()
        assert bundle.closed
        assert not _segment_paths(segment)
        assert view[1] == 1.0  # the mapping stays valid until process exit
        bundle.close()  # idempotent

    def test_dropped_bundle_is_unlinked_by_finalizer(self):
        bundle = SharedArrayBundle.create({"a": np.ones(32)})
        segment = bundle.segment_name
        del bundle
        gc.collect()
        assert not _segment_paths(segment)


# ------------------------------------------------------ context share/attach
class TestShareContext:
    def test_manifest_names_match_precompiled_blocks(self, flat_context):
        blocks = flat_context.precompiled_blocks()
        assert blocks  # the flat backend always pre-compiles index columns
        with share_context(flat_context) as shared:
            manifest = shared.spec.manifest
            assert manifest is not None
            named = set(manifest.keys()) & set(blocks)
            # Every *large* precompiled block travels via the segment under
            # its human-readable name; only sub-256-byte stragglers pickle
            # inline.
            assert named
            for key in named:
                assert blocks[key].nbytes >= 256

    def test_attached_views_alias_the_segment(self, flat_context):
        with share_context(flat_context) as shared:
            context, bundle = attach_context(shared.spec)
            try:
                assert bundle is not None
                attached_blocks = context.precompiled_blocks()
                shared_keys = set(shared.spec.manifest.keys()) & set(attached_blocks)
                assert shared_keys
                for key in shared_keys:
                    view = attached_blocks[key]
                    assert np.shares_memory(view, bundle[key])  # zero-copy
                    assert not view.flags.writeable
                    assert np.array_equal(
                        view, flat_context.precompiled_blocks()[key]
                    )
            finally:
                bundle.close()

    def test_skeleton_is_smaller_than_a_full_pickle(self, flat_context):
        import pickle

        full = len(pickle.dumps(flat_context, protocol=pickle.HIGHEST_PROTOCOL))
        with share_context(flat_context) as shared:
            assert len(shared.spec.skeleton) < full
            assert shared.spec.shared_bytes > 0

    def test_attached_context_annotates_identically(
        self, flat_context, small_batch, sequential_bytes
    ):
        with share_context(flat_context) as shared:
            context, bundle = attach_context(shared.spec)
            try:
                runner = ParallelAnnotationRunner(
                    config=_people_config(), workers=1, executor="serial"
                )
                results = runner.annotate_many(small_batch, context=context)
                assert canonical_bytes(results) == sequential_bytes
            finally:
                bundle.close()


# ----------------------------------------------------------- dispatch modes
class TestDispatch:
    def test_modes_partition_the_same_items(self, small_batch):
        reference = sorted(
            (order, t.trajectory_id)
            for order, t in enumerate(small_batch)
        )
        for mode in ("static", "balanced", "stealing"):
            shards = dispatch_shards(small_batch, 3, mode)
            seen = sorted(
                (order, t.trajectory_id) for _, items in shards for order, t in items
            )
            assert seen == reference, mode

    def test_objects_never_split_across_shards(self, small_batch):
        for mode in ("static", "balanced", "stealing"):
            owner = {}
            for index, items in dispatch_shards(small_batch, 3, mode):
                for _, trajectory in items:
                    assert owner.setdefault(trajectory.object_id, index) == index

    def test_unknown_mode_rejected(self, small_batch):
        with pytest.raises(ConfigurationError):
            dispatch_shards(small_batch, 2, "greedy")


# ------------------------------------------------- full-matrix byte parity
@pytest.mark.parametrize("dispatch", ["static", "balanced", "stealing"])
@pytest.mark.parametrize("shared_memory", ["on", "off"])
def test_pool_parity_across_dispatch_and_transport(
    dispatch, shared_memory, small_batch, annotation_sources, sequential_bytes
):
    """Canonical bytes are identical for every dispatch × transport combo."""
    with ParallelAnnotationRunner(
        config=_people_config(),
        workers=TEST_WORKERS,
        executor="process",
        dispatch=dispatch,
        shared_memory=shared_memory,
    ) as runner:
        assert runner.dispatch == dispatch
        assert runner.shared_memory == shared_memory
        results = runner.annotate_many(small_batch, annotation_sources)
        segment = runner.shared_segment_name
        if shared_memory == "on":
            assert segment is not None and _segment_paths(segment)
        else:
            assert segment is None
        assert canonical_bytes(results) == sequential_bytes
        assert canonical_digest(results) == canonical_digest_from(sequential_bytes)
    if segment is not None:
        assert not _segment_paths(segment)


def canonical_digest_from(payload: bytes) -> str:
    import hashlib

    return hashlib.sha256(payload).hexdigest()


# ------------------------------------------------------------------ cleanup
class TestSegmentCleanup:
    def test_runner_close_unlinks_segment(self, small_batch, annotation_sources):
        runner = ParallelAnnotationRunner(
            config=_people_config(),
            workers=TEST_WORKERS,
            executor="process",
            shared_memory="on",
        )
        runner.annotate_many(small_batch, annotation_sources)
        segment = runner.shared_segment_name
        assert segment is not None and _segment_paths(segment)
        runner.close()
        assert not _segment_paths(segment)
        assert runner.shared_segment_name is None

    def test_dropped_executor_unlinks_segment(self, flat_context, small_batch):
        from repro.engine.plan import Plan

        executor = ProcessPoolExecutor(workers=2, shared_memory="on")
        plan = Plan.from_context(flat_context)
        executor.run(plan, small_batch[:4])
        segment = executor.shared_segment_name
        assert segment is not None and _segment_paths(segment)
        del executor
        gc.collect()
        assert not _segment_paths(segment)

    def test_worker_crash_unlinks_segment(self, flat_context, small_batch):
        from concurrent.futures import BrokenExecutor

        from repro.engine.plan import Plan

        executor = ProcessPoolExecutor(workers=2, shared_memory="on")
        plan = Plan.from_context(flat_context)
        executor.run(plan, small_batch[:4])  # prime the pool + segment
        segment = executor.shared_segment_name
        assert segment is not None and _segment_paths(segment)
        assert executor._pool is not None
        victim = next(iter(executor._pool._processes.values()))
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        with pytest.raises(BrokenExecutor):
            while time.monotonic() < deadline:  # the pool notices on submit
                executor.run(plan, small_batch[:4])
        # The except-path close() tore everything down: pool gone, segment
        # unlinked, and a fresh run re-primes cleanly.
        assert executor._pool is None
        assert not _segment_paths(segment)
        results = executor.run(plan, small_batch[:4])
        assert len(results) == 4
        executor.close()
        assert not glob.glob("/dev/shm/semitri-*")

    def test_no_stray_segments_after_module(self):
        gc.collect()
        assert not glob.glob("/dev/shm/semitri-*")
