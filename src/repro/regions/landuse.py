"""The Swisstopo landuse ontology of Figure 4.

Four top-level categories (settlement/urban, agricultural, wooded,
unproductive) and seventeen sub-categories, identified by their paper codes
("1.1" ... "4.17").  The region-annotation benchmarks report distributions
over these codes exactly as Figure 9 and Figure 14 do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.errors import SourceError


@dataclass(frozen=True)
class LanduseCategory:
    """One landuse sub-category of the Swisstopo ontology."""

    code: str
    top_level: int
    label: str


LANDUSE_TOP_LEVELS: Dict[int, str] = {
    1: "Settlement and urban areas",
    2: "Agricultural areas",
    3: "Wooded areas",
    4: "Unproductive areas",
}

_CATEGORY_ROWS: Tuple[Tuple[str, int, str], ...] = (
    ("1.1", 1, "industrial and commercial area"),
    ("1.2", 1, "building areas"),
    ("1.3", 1, "transportation areas"),
    ("1.4", 1, "special urban areas"),
    ("1.5", 1, "recreational areas and cemeteries"),
    ("2.6", 2, "orchard, vineyard and horticulture areas"),
    ("2.7", 2, "arable land"),
    ("2.8", 2, "meadows, farm pastures"),
    ("2.9", 2, "alpine agricultural areas"),
    ("3.10", 3, "forest (except brush forest)"),
    ("3.11", 3, "brush forest"),
    ("3.12", 3, "woods"),
    ("4.13", 4, "lakes"),
    ("4.14", 4, "rivers"),
    ("4.15", 4, "unproductive vegetation"),
    ("4.16", 4, "bare land"),
    ("4.17", 4, "glaciers, perpetual snow"),
)

LANDUSE_CATEGORIES: Dict[str, LanduseCategory] = {
    code: LanduseCategory(code=code, top_level=level, label=label)
    for code, level, label in _CATEGORY_ROWS
}

ALL_LANDUSE_CODES: List[str] = [code for code, _, _ in _CATEGORY_ROWS]


def landuse_category(code: str) -> LanduseCategory:
    """Look up a landuse sub-category by its paper code (e.g. ``"1.2"``)."""
    try:
        return LANDUSE_CATEGORIES[code]
    except KeyError as error:
        raise SourceError(f"unknown landuse category code {code!r}") from error


def top_level_of(code: str) -> int:
    """Top-level category (1..4) of a landuse sub-category code."""
    return landuse_category(code).top_level


def is_urban(code: str) -> bool:
    """True for settlement/urban sub-categories (top level 1)."""
    return top_level_of(code) == 1


def label_of(code: str) -> str:
    """Human-readable label of a landuse sub-category."""
    return landuse_category(code).label
