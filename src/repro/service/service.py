"""Annotation-as-a-service: an asyncio ingest tier over the stage-graph engine.

:class:`AnnotationService` multiplexes many concurrent GPS object streams into
sharded :class:`~repro.engine.executors.MicroBatchExecutor` instances — the
same streaming session loop :class:`StreamingAnnotationEngine` drives, but
fanned out across shards so heavy traffic from many emitters does not
serialise behind one session registry:

* **routing** — events are routed to a shard by consistent-hashing the object
  id (:mod:`repro.service.routing`), so all trajectories of one object share
  one stateful session and routing is stable across processes;
* **backpressure** — each shard owns a bounded ``asyncio.Queue``; when it
  fills, ``await service.ingest(...)`` suspends the producer until the shard
  catches up.  Events are *never* dropped: slow producers wait;
* **memory budget** — ``config.service.session_budget`` is divided across
  shards as each shard's LRU session capacity; the least recently active
  sessions are gracefully closed through the same gap close-out path an
  explicit close takes (sealing and annotating their open trajectories), and
  :meth:`evict_sessions` forces the same path on demand;
* **drain/shutdown** — :meth:`drain` stops intake, flushes every queue, closes
  every open session in every shard and (when persistence is on) commits all
  sealed results in one deterministic-order transaction, so the drained
  output is canonically byte-identical to a sequential
  :meth:`~repro.core.pipeline.SeMiTriPipeline.annotate_many` over the
  delivered events;
* **telemetry** — per-shard queue-depth gauges, events/results counters and a
  service-wide enqueue-to-absorbed latency histogram live in a PR 6
  :class:`~repro.obs.metrics.MetricsRegistry`, Prometheus rendering included.

Shard executors run on a thread pool (one hand-off per micro-batch, one
in-flight batch per shard), which keeps the event loop free for I/O and lets
the numpy kernels overlap across shards; per-shard absorption order equals
enqueue order, which is what the parity tests pin down.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Iterable, List, Optional, Tuple, Union

from repro.core.config import PipelineConfig
from repro.core.errors import ConfigurationError, ServiceError
from repro.core.pipeline import AnnotationSources, PipelineResult
from repro.core.points import SpatioTemporalPoint
from repro.engine.executors import MicroBatchExecutor
from repro.engine.plan import Plan
from repro.obs.metrics import MetricsRegistry, ServiceMetrics, ShardMetrics
from repro.parallel.context import GeoContext
from repro.service.routing import ConsistentHashRing
from repro.store.store import SemanticTrajectoryStore

__all__ = ["AnnotationService", "ServiceStats"]

#: Queue sentinel that tells a shard consumer the stream is over.
_STOP = object()

#: Queue item kinds (events and per-object control messages share the queue
#: so control respects the same ordering and backpressure as data).
_EVENT, _CLOSE, _EVICT = "event", "close", "evict"

#: One queued item: (kind, object id or eviction target, point, enqueue time).
_Item = Tuple[str, object, Optional[SpatioTemporalPoint], float]


@dataclass
class ServiceStats:
    """Counters the service maintains across its lifetime."""

    events: int = 0
    """Events accepted into a shard queue."""

    results: int = 0
    """Sealed trajectories collected from the shards."""

    closed_objects: int = 0
    """Explicit per-object close requests."""

    backpressure_waits: int = 0
    """Ingest calls that found their shard queue full and had to await."""

    batches: int = 0
    """Micro-batches handed to shard executors."""

    errors: int = 0
    """Shard batches that raised (their events are poisoned, never retried)."""


class _ShardWorker:
    """One shard's synchronous half: a micro-batch executor plus bookkeeping.

    ``process`` runs on the service's thread pool; the consumer coroutine
    awaits each batch before submitting the next, so a worker is only ever
    touched by one thread at a time.
    """

    def __init__(self, index: int, plan: Plan, metrics: ShardMetrics):
        self.index = index
        self.executor = MicroBatchExecutor(plan)
        self.metrics = metrics
        self.events_absorbed = 0

    def process(self, batch: List[_Item]) -> List[PipelineResult]:
        """Absorb one micro-batch of events and control messages, in order."""
        executor = self.executor
        results: List[PipelineResult] = []
        for kind, object_id, point, _ in batch:
            if kind == _EVENT:
                assert point is not None
                results.extend(executor.ingest(str(object_id), point))
                self.events_absorbed += 1
            elif kind == _CLOSE:
                results.extend(executor.close_object(str(object_id)))
            else:  # _EVICT: object_id carries the target open-session count
                results.extend(executor.evict_sessions(int(object_id)))  # type: ignore[arg-type]
        self.metrics.events.inc(sum(1 for item in batch if item[0] == _EVENT))
        self.metrics.results.inc(len(results))
        self.metrics.open_sessions.set(executor.open_session_count)
        return results

    def drain(self) -> List[PipelineResult]:
        """Close every open session (flushing the pending micro-batch first)."""
        results = self.executor.close_all()
        self.metrics.results.inc(len(results))
        self.metrics.open_sessions.set(0)
        return results


class AnnotationService:
    """Long-running ingest front end over sharded streaming executors.

    Typical usage::

        service = AnnotationService(sources, config=config)
        async with service:
            await service.ingest("car-7", point)       # awaits when shard is full
            ...
            results = await service.drain()            # flush + close everything

    Parameters
    ----------
    sources:
        The annotation sources, or a prebuilt immutable
        :class:`~repro.parallel.context.GeoContext` snapshot whose frozen
        indexes every shard then shares (one index build for the whole
        service).
    config:
        Pipeline configuration; ``config.service`` sizes the shard fan-out,
        queues and session budget.  Must be ``None`` or equal to the
        snapshot's config when a :class:`GeoContext` is passed.
    store / persist:
        When both are given, :meth:`drain` commits every sealed trajectory in
        one deterministic-order transaction.  Shards never touch the store.
    on_result:
        Callback invoked on the event-loop thread for every sealed trajectory
        as it is collected.
    """

    def __init__(
        self,
        sources: Union[AnnotationSources, GeoContext],
        config: Optional[PipelineConfig] = None,
        store: Optional[SemanticTrajectoryStore] = None,
        persist: bool = False,
        on_result: Optional[Callable[[PipelineResult], None]] = None,
    ):
        if isinstance(sources, GeoContext):
            context = sources
            if config is not None and config != context.config:
                raise ConfigurationError(
                    "config conflicts with the GeoContext snapshot's config; "
                    "bake the desired config into the snapshot via GeoContext.build"
                )
        else:
            context = GeoContext(sources, config if config is not None else PipelineConfig())
        self._context = context
        self._config = context.config
        service_config = self._config.service
        self._shard_count = service_config.resolved_shards
        self._queue_depth = service_config.queue_depth
        self._max_batch = service_config.max_batch
        self._ring = ConsistentHashRing(self._shard_count, replicas=service_config.ring_replicas)
        self._store = store
        self._persist = persist and store is not None
        self._on_result = on_result

        self.registry = MetricsRegistry()
        self.metrics = ServiceMetrics(self.registry)
        self.stats = ServiceStats()

        # Each shard gets its share of the session budget; everything else
        # (annotators, indexes, config) is the shared snapshot's.  Shard plans
        # never persist — the service commits at drain time, in one place.
        per_shard_sessions = max(1, service_config.session_budget // self._shard_count)
        shard_config = replace(
            self._config,
            streaming=replace(self._config.streaming, max_sessions=per_shard_sessions),
        )
        self._workers = [
            _ShardWorker(
                index,
                Plan.compile(
                    sources=context.sources,
                    config=shard_config,
                    annotators=context.annotators,
                ),
                self.metrics.shard(index),
            )
            for index in range(self._shard_count)
        ]

        self._queues: List["asyncio.Queue[object]"] = []
        self._consumers: List["asyncio.Task[None]"] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._results: List[PipelineResult] = []
        # (object id, collection sequence) per result: the deterministic sort
        # key of the drain-time store commit.  Within one object the sequence
        # follows absorption order (one shard, serialized), so sorting by it
        # reproduces per-object sealing order no matter how shards interleave.
        self._order: List[Tuple[str, int]] = []
        self._state = "new"

    # ---------------------------------------------------------------- identity
    @property
    def shard_count(self) -> int:
        """Number of executor shards the service fans out to."""
        return self._shard_count

    @property
    def config(self) -> PipelineConfig:
        """The pipeline configuration every shard runs."""
        return self._config

    @property
    def context(self) -> GeoContext:
        """The immutable geographic snapshot shared by every shard."""
        return self._context

    @property
    def results(self) -> List[PipelineResult]:
        """Every sealed trajectory collected so far (collection order)."""
        return list(self._results)

    @property
    def delivered_events(self) -> int:
        """Events absorbed by shard executors (equals ``stats.events`` after drain)."""
        return sum(worker.events_absorbed for worker in self._workers)

    @property
    def dropped_events(self) -> int:
        """Accepted-but-never-absorbed events.

        Positive only while events are still queued or after a shard batch
        raised; a clean :meth:`drain` leaves it at zero — the service's
        no-drop contract.
        """
        return self.stats.events - self.delivered_events

    @property
    def open_session_count(self) -> int:
        """Open per-object sessions across every shard."""
        return sum(worker.executor.open_session_count for worker in self._workers)

    @property
    def sessions_evicted(self) -> int:
        """Sessions closed by LRU budget pressure or explicit eviction."""
        return sum(worker.executor.sessions_evicted for worker in self._workers)

    def queue_depths(self) -> List[int]:
        """Current per-shard queue depths (diagnostics)."""
        return [queue.qsize() for queue in self._queues]

    def shard_for(self, object_id: str) -> int:
        """The shard index the router assigns to ``object_id``."""
        return self._ring.shard_for(object_id)

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the service registry."""
        return self.registry.render_prometheus()

    # --------------------------------------------------------------- lifecycle
    async def start(self) -> "AnnotationService":
        """Create the shard queues, consumers and worker thread pool."""
        if self._state != "new":
            raise ServiceError(f"cannot start a service in state {self._state!r}")
        self._queues = [
            asyncio.Queue(maxsize=self._queue_depth) for _ in range(self._shard_count)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=self._shard_count, thread_name_prefix="semitri-shard"
        )
        self._consumers = [
            asyncio.create_task(self._consume(index), name=f"semitri-shard-{index}")
            for index in range(self._shard_count)
        ]
        self._state = "running"
        return self

    async def __aenter__(self) -> "AnnotationService":
        return await self.start()

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.shutdown()

    async def drain(self) -> List[PipelineResult]:
        """Stop intake, flush every queue, close every session, commit.

        Returns **all** results collected since :meth:`start` — queued events
        are fully absorbed (FIFO per shard) before the remaining sessions are
        closed through the gap close-out path, so nothing is lost.  With
        persistence enabled the sealed trajectories are committed here, in
        one transaction, ordered by (object id, per-object sealing order) —
        a deterministic order independent of shard interleaving.
        """
        if self._state == "drained":
            return self.results
        if self._state != "running":
            raise ServiceError(f"cannot drain a service in state {self._state!r}")
        self._state = "draining"
        for queue in self._queues:
            await queue.put(_STOP)
        await asyncio.gather(*self._consumers)
        loop = asyncio.get_running_loop()
        assert self._pool is not None
        closes = [
            loop.run_in_executor(self._pool, worker.drain) for worker in self._workers
        ]
        for sealed in await asyncio.gather(*closes):
            self._collect(sealed)
        if self._persist:
            self._commit_results()
        self._state = "drained"
        return self.results

    async def shutdown(self) -> List[PipelineResult]:
        """Drain (if still running) and release the worker thread pool."""
        results = await self.drain() if self._state in ("running", "draining") else self.results
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._state = "closed"
        return results

    # -------------------------------------------------------------------- feed
    async def ingest(self, object_id: str, point: SpatioTemporalPoint) -> None:
        """Feed one event; awaits (never drops) when the shard queue is full."""
        queue = self._intake_queue(object_id)
        await self._enqueue(queue, (_EVENT, object_id, point, time.perf_counter()))
        self.stats.events += 1

    async def ingest_many(
        self, events: Iterable[Tuple[str, SpatioTemporalPoint]]
    ) -> int:
        """Feed several events in order; returns the number accepted."""
        accepted = 0
        for object_id, point in events:
            await self.ingest(object_id, point)
            accepted += 1
        return accepted

    async def close_object(self, object_id: str) -> None:
        """End of stream for one object: its open trajectory is sealed.

        The close rides the shard queue behind the object's queued events, so
        it takes effect exactly where the emitter hung up.
        """
        queue = self._intake_queue(object_id)
        await self._enqueue(queue, (_CLOSE, object_id, None, time.perf_counter()))
        self.stats.closed_objects += 1

    async def evict_sessions(self, target_per_shard: int) -> None:
        """Ask every shard to shrink to ``target_per_shard`` open sessions.

        The eviction request is queued like any event, so it is applied after
        everything already accepted; evicted sessions seal (and annotate)
        their open trajectories exactly like a gap close-out.
        """
        if self._state != "running":
            raise ServiceError(f"cannot evict on a service in state {self._state!r}")
        if target_per_shard < 0:
            raise ConfigurationError("target_per_shard must be non-negative")
        before = self.sessions_evicted
        for queue in self._queues:
            await self._enqueue(queue, (_EVICT, target_per_shard, None, time.perf_counter()))
        # Eviction is fire-and-forget by design; the counter below reflects
        # evictions already performed, not the ones just requested.
        self.metrics.sessions_evicted.inc(max(0, self.sessions_evicted - before))

    # --------------------------------------------------------------- internals
    def _intake_queue(self, object_id: str) -> "asyncio.Queue[object]":
        if self._state != "running":
            raise ServiceError(
                f"cannot ingest on a service in state {self._state!r}; "
                "start() it first (or stop feeding after drain())"
            )
        return self._queues[self._ring.shard_for(object_id)]

    async def _enqueue(self, queue: "asyncio.Queue[object]", item: _Item) -> None:
        if queue.full():
            # Explicit backpressure: the producer suspends until the shard
            # frees a slot.  Counted so operators can see producers waiting.
            self.stats.backpressure_waits += 1
            self.metrics.backpressure_waits.inc()
        await queue.put(item)

    async def _consume(self, index: int) -> None:
        queue = self._queues[index]
        worker = self._workers[index]
        metrics = worker.metrics
        loop = asyncio.get_running_loop()
        assert self._pool is not None
        stopping = False
        while not stopping:
            head = await queue.get()
            if head is _STOP:
                break
            batch: List[_Item] = [head]  # type: ignore[list-item]
            while len(batch) < self._max_batch:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)  # type: ignore[arg-type]
            metrics.queue_depth.set(queue.qsize())
            self.stats.batches += 1
            try:
                sealed = await loop.run_in_executor(self._pool, worker.process, batch)
            except Exception:
                # The batch is poisoned (its session pass already consumed
                # the events); count it and keep the shard alive for the
                # other objects rather than wedging the whole queue.
                self.stats.errors += 1
                continue
            finished = time.perf_counter()
            for _, _, _, enqueued in batch:
                self.metrics.ingest_latency.observe(finished - enqueued)
            self._collect(sealed)
            metrics.queue_depth.set(queue.qsize())

    def _collect(self, sealed: List[PipelineResult]) -> None:
        for result in sealed:
            self._order.append((result.trajectory.object_id, len(self._order)))
            self._results.append(result)
            self.stats.results += 1
            if self._on_result is not None:
                self._on_result(result)

    def _commit_results(self) -> None:
        assert self._store is not None
        ordered = sorted(
            range(len(self._results)), key=lambda position: self._order[position]
        )
        self._store.save_annotated_trajectories(
            (self._results[position].trajectory, self._results[position].episodes)
            for position in ordered
        )
