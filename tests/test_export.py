"""Unit tests for GeoJSON and KML export."""

from __future__ import annotations

import json
import xml.etree.ElementTree as ElementTree

import pytest

from repro.core.annotations import activity_annotation, transport_mode_annotation
from repro.core.episodes import Episode, EpisodeKind
from repro.core.places import PointOfInterest, RegionOfInterest
from repro.core.points import build_trajectory
from repro.core.trajectory import SemanticEpisodeRecord, StructuredSemanticTrajectory
from repro.export import (
    episodes_to_geojson,
    raw_trajectory_to_geojson,
    structured_trajectory_to_geojson,
    structured_trajectory_to_kml,
    trajectories_to_kml,
)
from repro.geometry.primitives import BoundingBox, Point


@pytest.fixture()
def trajectory():
    return build_trajectory(
        [(float(i * 10), float(i), float(i * 5)) for i in range(10)],
        object_id="u1",
        trajectory_id="traj",
    )


@pytest.fixture()
def structured(trajectory):
    region = RegionOfInterest(
        place_id="cell", name="cell", category="1.2", extent=BoundingBox(0, 0, 100, 100)
    )
    poi = PointOfInterest(place_id="cafe", name="cafe", category="feedings", location=Point(50, 5))
    episode = Episode(EpisodeKind.STOP, trajectory, 0, 3)
    return StructuredSemanticTrajectory(
        "traj:semantic",
        "u1",
        records=[
            SemanticEpisodeRecord(
                region, 0, 100, EpisodeKind.MOVE, [transport_mode_annotation("bus")]
            ),
            SemanticEpisodeRecord(
                poi, 100, 200, EpisodeKind.STOP, [activity_annotation("eating")]
            ),
            SemanticEpisodeRecord(None, 200, 300, EpisodeKind.MOVE, source_episode=episode),
        ],
    )


class TestGeoJson:
    def test_raw_trajectory_round_trips_through_json(self, trajectory):
        document = raw_trajectory_to_geojson(trajectory)
        parsed = json.loads(json.dumps(document))
        assert parsed["type"] == "FeatureCollection"
        feature = parsed["features"][0]
        assert feature["geometry"]["type"] == "LineString"
        assert len(feature["geometry"]["coordinates"]) == 10
        assert feature["properties"]["trajectory_id"] == "traj"

    def test_episodes_export_stop_as_point_and_move_as_linestring(self, trajectory):
        stop = Episode(EpisodeKind.STOP, trajectory, 0, 3)
        stop.add_annotation(activity_annotation("rest"))
        move = Episode(EpisodeKind.MOVE, trajectory, 3, 10)
        move.add_annotation(transport_mode_annotation("walk"))
        document = episodes_to_geojson([stop, move])
        types = [feature["geometry"]["type"] for feature in document["features"]]
        assert types == ["Point", "LineString"]
        properties = [feature["properties"] for feature in document["features"]]
        assert properties[0]["activity"] == "rest"
        assert properties[1]["transport_mode"] == "walk"

    def test_structured_trajectory_features(self, structured):
        document = structured_trajectory_to_geojson(structured)
        assert document["properties"]["record_count"] == 3
        features = document["features"]
        assert len(features) == 3
        assert features[0]["properties"]["transport_mode"] == "bus"
        assert features[1]["properties"]["activity"] == "eating"
        assert features[1]["properties"]["category"] == "feedings"
        # Every emitted feature is valid JSON.
        json.dumps(document)

    def test_structured_trajectory_can_skip_unplaced(self, structured):
        # Replace the third record's source episode with nothing so that it has
        # neither a place nor an episode, then ask to skip such records.
        bare = StructuredSemanticTrajectory(
            "t", "o", records=[SemanticEpisodeRecord(None, 0, 10, EpisodeKind.MOVE)]
        )
        document = structured_trajectory_to_geojson(bare, include_unplaced=False)
        assert document["features"] == []


class TestKml:
    def test_trajectories_to_kml_is_valid_xml(self, trajectory):
        text = trajectories_to_kml([trajectory])
        root = ElementTree.fromstring(text)
        assert root.tag.endswith("kml")
        placemarks = root.findall(".//{http://www.opengis.net/kml/2.2}Placemark")
        assert len(placemarks) == 1

    def test_structured_trajectory_kml_placemarks(self, structured):
        text = structured_trajectory_to_kml(structured)
        root = ElementTree.fromstring(text)
        placemarks = root.findall(".//{http://www.opengis.net/kml/2.2}Placemark")
        assert len(placemarks) == 3
        descriptions = " ".join(
            node.findtext("{http://www.opengis.net/kml/2.2}description", default="")
            for node in placemarks
        )
        assert "transport mode: bus" in descriptions
        assert "activity: eating" in descriptions

    def test_kml_escapes_special_characters(self, trajectory):
        weird = build_trajectory([(0, 0, 0), (1, 1, 1), (2, 2, 2), (3, 3, 3), (4, 4, 4)],
                                 object_id="a&b", trajectory_id="<odd>")
        text = trajectories_to_kml([weird])
        ElementTree.fromstring(text)  # would raise if not escaped

    def test_pipeline_output_exports(self, people_dataset, people_pipeline, annotation_sources):
        trajectory = people_dataset.all_trajectories[0]
        result = people_pipeline.annotate(trajectory, annotation_sources)
        assert result.region_trajectory is not None
        geojson_document = structured_trajectory_to_geojson(result.region_trajectory)
        assert geojson_document["features"]
        kml_text = structured_trajectory_to_kml(result.region_trajectory)
        ElementTree.fromstring(kml_text)
