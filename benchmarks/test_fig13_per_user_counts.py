"""Figure 13: per-user counts of GPS records, trajectories, stops and moves.

The paper shows, for the six named smartphone users, the number of GPS records
(divided by 100 for display), daily trajectories, stops and moves.  This
benchmark reproduces the same four bars per user.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.analytics.statistics import per_user_summary
from repro.preprocessing.stops import segment_many


def test_fig13_per_user_counts(benchmark, people_dataset, people_pipeline):
    def compute():
        episodes_by_user = {
            user: segment_many(trajectories, people_pipeline.config.stop_move)
            for user, trajectories in people_dataset.trajectories_by_user.items()
        }
        return per_user_summary(people_dataset.trajectories_by_user, episodes_by_user)

    summary = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for user in people_dataset.user_ids:
        stats = summary[user]
        rows.append(
            [
                user,
                f"{stats['gps_records_div100']:.1f}",
                int(stats["trajectories"]),
                int(stats["stops"]),
                int(stats["moves"]),
            ]
        )
    text = render_table(
        ["user", "GPS (x100)", "trajectories", "stops", "moves"],
        rows,
        title="Figure 13 - Trajectory context computation per user",
    )
    save_result("fig13_per_user_counts", text)

    assert len(rows) == 6
    for user, stats in summary.items():
        assert stats["stops"] >= stats["trajectories"], (
            f"{user} should have at least one stop per daily trajectory"
        )
