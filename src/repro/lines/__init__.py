"""Semantic Line Annotation Layer (Section 4.2, Algorithm 2).

Contains the road-network model, the global map-matching algorithm built on
the point-segment distance and kernel-weighted global score (Equations 1-4),
simpler baseline matchers used in ablation benchmarks, and the
transportation-mode inference applied to matched move episodes.
"""

from repro.lines.road_network import RoadNetwork
from repro.lines.map_matching import GlobalMapMatcher, MatchedPoint
from repro.lines.baselines import IncrementalMatcher, NearestSegmentMatcher, ViterbiMatcher
from repro.lines.transport_mode import TransportModeClassifier
from repro.lines.annotator import LineAnnotator

__all__ = [
    "RoadNetwork",
    "GlobalMapMatcher",
    "MatchedPoint",
    "NearestSegmentMatcher",
    "IncrementalMatcher",
    "ViterbiMatcher",
    "TransportModeClassifier",
    "LineAnnotator",
]
