"""Ablations of the map-matching design choices.

Two of the design decisions Section 4.2 argues for are isolated here:

* the point-segment distance of Equation 1 versus the classical perpendicular
  (point-to-curve) distance;
* the kernel-weighted global score (Equations 3-4) versus the purely local
  score of each GPS point.

A third comparison pits the global matcher against the baseline matchers from
the related-work taxonomy (nearest-segment geometric matching, incremental
topological matching, HMM/Viterbi matching) at several GPS noise levels.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.core.config import MapMatchingConfig
from repro.lines.baselines import IncrementalMatcher, NearestSegmentMatcher, ViterbiMatcher
from repro.lines.map_matching import GlobalMapMatcher, matching_accuracy

NOISE_LEVELS = (5.0, 10.0, 20.0)


def _accuracy(matcher, drive) -> float:
    matched = matcher.match(drive.trajectory.points)
    return 100.0 * matching_accuracy(
        [m.segment_id for m in matched], drive.truth_segment_ids
    )


def test_ablation_distance_metric_and_global_score(benchmark, world, drive_generator):
    network = world.road_network()
    drives = {sigma: drive_generator.generate(noise_sigma=sigma) for sigma in NOISE_LEVELS}

    configurations = {
        "point-segment + global score (paper)": MapMatchingConfig(candidate_radius=50.0),
        "perpendicular + global score": MapMatchingConfig(
            candidate_radius=50.0, distance_metric="perpendicular"
        ),
        "point-segment, local score only": MapMatchingConfig(
            candidate_radius=50.0, use_global_score=False
        ),
    }

    def run():
        table = {}
        for label, config in configurations.items():
            matcher = GlobalMapMatcher(network, config)
            table[label] = [_accuracy(matcher, drives[sigma]) for sigma in NOISE_LEVELS]
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [label] + [f"{value:.1f}" for value in values] for label, values in table.items()
    ]
    text = render_table(
        ["configuration"] + [f"noise {sigma:g} m" for sigma in NOISE_LEVELS],
        rows,
        title="Ablation - distance metric and global score (matching accuracy %)",
    )
    save_result("ablation_distance_metric", text)

    paper = table["point-segment + global score (paper)"]
    local_only = table["point-segment, local score only"]
    assert all(p >= l - 2.0 for p, l in zip(paper, local_only))
    assert min(paper) > 75.0


def test_ablation_matcher_comparison(benchmark, world, drive_generator):
    network = world.road_network()
    drives = {sigma: drive_generator.generate(noise_sigma=sigma) for sigma in NOISE_LEVELS}

    matchers = {
        "SeMiTri global matcher": GlobalMapMatcher(network, MapMatchingConfig(candidate_radius=50.0)),
        "nearest segment (geometric)": NearestSegmentMatcher(network, candidate_radius=50.0),
        "incremental (topological)": IncrementalMatcher(network, candidate_radius=50.0),
        "HMM / Viterbi": ViterbiMatcher(network, candidate_radius=50.0),
    }

    def run():
        return {
            label: [_accuracy(matcher, drives[sigma]) for sigma in NOISE_LEVELS]
            for label, matcher in matchers.items()
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [[label] + [f"{value:.1f}" for value in values] for label, values in table.items()]
    text = render_table(
        ["matcher"] + [f"noise {sigma:g} m" for sigma in NOISE_LEVELS],
        rows,
        title="Ablation - map matcher comparison (matching accuracy %)",
    )
    save_result("ablation_matchers", text)

    semitri = table["SeMiTri global matcher"]
    nearest = table["nearest segment (geometric)"]
    assert all(s >= n - 3.0 for s, n in zip(semitri, nearest))
