"""The single public API surface of the SeMiTri reproduction.

Every supported way of running the pipeline is a function in this module —
batch, parallel batch, streaming, serving and plan compilation all start
here, and everything accepts configuration in one of three equivalent forms
(a :class:`~repro.core.config.PipelineConfig`, a plain ``dict`` routed
through :meth:`PipelineConfig.from_dict`, or ``None`` for defaults):

==================  ========================================================
entry point         what it gives you
==================  ========================================================
:func:`open_pipeline`  a :class:`SeMiTriPipeline` for batch annotation
:func:`annotate`       one trajectory, annotated (one-shot convenience)
:func:`annotate_many`  a batch, sequential or multi-process via ``workers``
:func:`stream`         a :class:`StreamingAnnotationEngine` for online feeds
:func:`serve`          an :class:`AnnotationService` multiplexing many feeds
:func:`compile_plan`   the stage-graph :class:`Plan` behind all of the above
==================  ========================================================

The pre-PR 8 entry points (``repro.SeMiTriPipeline``,
``repro.StreamingAnnotationEngine``) still work but are deprecated at the
top level; deep imports (``repro.core``, ``repro.streaming``) remain
supported for library-internal and advanced use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Mapping, Optional, Sequence, Union

from repro.core.config import PipelineConfig
from repro.core.episodes import Episode
from repro.core.pipeline import (
    AnnotationSources,
    LayerAnnotators,
    PipelineResult,
    SeMiTriPipeline,
)
from repro.core.points import RawTrajectory

if TYPE_CHECKING:  # deferred: the engine/streaming/parallel modules form an
    # import cycle with the package root; functions import them lazily.
    from repro.engine.plan import Plan
    from repro.parallel.context import GeoContext
    from repro.service.service import AnnotationService
    from repro.store.store import SemanticTrajectoryStore
    from repro.streaming.engine import StreamingAnnotationEngine

__all__ = [
    "annotate",
    "annotate_many",
    "compile_plan",
    "open_pipeline",
    "serve",
    "stream",
]

#: Config in any accepted spelling: a built object, a ``to_dict``-shaped
#: mapping, or ``None`` for defaults.
ConfigLike = Union[PipelineConfig, Mapping[str, object], None]


def _resolve_config(
    config: ConfigLike, overrides: Optional[Mapping[str, object]] = None
) -> PipelineConfig:
    """Build a validated :class:`PipelineConfig` from any accepted spelling."""
    if isinstance(config, PipelineConfig):
        return config.with_overrides(overrides) if overrides else config
    return PipelineConfig.from_dict(config, overrides=overrides)


def open_pipeline(
    config: ConfigLike = None,
    store: Optional[SemanticTrajectoryStore] = None,
    overrides: Optional[Mapping[str, object]] = None,
) -> SeMiTriPipeline:
    """A batch annotation pipeline (the paper's offline mode).

    ``config`` may be a :class:`PipelineConfig`, a ``dict`` in
    :meth:`PipelineConfig.to_dict` shape, or ``None``; dotted ``overrides``
    (e.g. ``{"stop_move.velocity_threshold": 1.2}``) apply on top either way.
    """
    return SeMiTriPipeline(_resolve_config(config, overrides), store=store)


def annotate(
    trajectory: RawTrajectory,
    sources: AnnotationSources,
    config: ConfigLike = None,
    store: Optional[SemanticTrajectoryStore] = None,
    persist: bool = False,
    overrides: Optional[Mapping[str, object]] = None,
) -> PipelineResult:
    """Annotate one raw trajectory (one-shot convenience over a pipeline)."""
    return open_pipeline(config, store=store, overrides=overrides).annotate(
        trajectory, sources, persist=persist
    )


def annotate_many(
    trajectories: Sequence[RawTrajectory],
    sources: Optional[AnnotationSources] = None,
    config: ConfigLike = None,
    context: Optional[GeoContext] = None,
    workers: Optional[int] = None,
    store: Optional[SemanticTrajectoryStore] = None,
    persist: bool = False,
    overrides: Optional[Mapping[str, object]] = None,
) -> List[PipelineResult]:
    """Annotate a batch of trajectories, sequentially or across processes.

    With ``workers`` unset (or 1, the config default) this is the plain
    sequential batch mode.  Any other value routes through the
    :class:`~repro.parallel.runner.ParallelAnnotationRunner` — ``workers=0``
    auto-detects the effective core count, ``workers>1`` shards by moving
    object across that many processes — with results (and persisted rows)
    byte-identical to the sequential run.  A prebuilt ``context`` snapshot
    may stand in for ``sources`` to skip index building.
    """
    resolved = _resolve_config(config, overrides)
    if context is not None and config is None and overrides is None:
        resolved = context.config
    effective_workers = resolved.parallel.workers if workers is None else workers
    if effective_workers == 1 and resolved.parallel.executor != "process":
        if context is not None:
            pipeline = SeMiTriPipeline(resolved, store=store)
            return pipeline.annotate_many(
                trajectories,
                context.sources if sources is None else sources,
                persist=persist,
                annotators=context.annotators,
            )
        if sources is None:
            raise _missing_sources()
        return SeMiTriPipeline(resolved, store=store).annotate_many(
            trajectories, sources, persist=persist
        )
    if sources is None and context is None:
        raise _missing_sources()
    from repro.parallel.runner import ParallelAnnotationRunner

    with ParallelAnnotationRunner(resolved, workers=workers, store=store) as runner:
        return runner.annotate_many(
            trajectories, sources=sources, persist=persist, context=context
        )


def stream(
    sources: Union[AnnotationSources, GeoContext],
    config: ConfigLike = None,
    store: Optional[SemanticTrajectoryStore] = None,
    persist: bool = False,
    on_result: Optional[Callable[[PipelineResult], None]] = None,
    on_episode: Optional[Callable[[Episode], None]] = None,
    overrides: Optional[Mapping[str, object]] = None,
) -> StreamingAnnotationEngine:
    """An online annotation engine for one ``(object_id, point)`` event feed.

    ``sources`` may be raw sources or a prebuilt
    :class:`~repro.parallel.context.GeoContext` snapshot; with a snapshot,
    ``config``/``overrides`` must be unset (the snapshot's config rules).
    """
    from repro.parallel.context import GeoContext
    from repro.streaming.engine import StreamingAnnotationEngine

    resolved: Optional[PipelineConfig]
    if isinstance(sources, GeoContext) and config is None and overrides is None:
        resolved = None  # adopt the snapshot's config
    else:
        resolved = _resolve_config(config, overrides)
    return StreamingAnnotationEngine(
        sources,
        config=resolved,
        store=store,
        persist=persist,
        on_result=on_result,
        on_episode=on_episode,
    )


def serve(
    sources: Union[AnnotationSources, GeoContext],
    config: ConfigLike = None,
    store: Optional[SemanticTrajectoryStore] = None,
    persist: bool = False,
    on_result: Optional[Callable[[PipelineResult], None]] = None,
    overrides: Optional[Mapping[str, object]] = None,
) -> AnnotationService:
    """The asyncio ingestion service multiplexing many concurrent feeds.

    Returns an unstarted :class:`~repro.service.service.AnnotationService`;
    run it with ``async with serve(...) as service:`` (or ``await
    service.start()``).  ``config.service`` sizes shards, queue depths and
    the session memory budget.  For emitters speaking HTTP, wrap the service
    in an :class:`~repro.service.http.HttpIngestServer`.
    """
    from repro.parallel.context import GeoContext
    from repro.service.service import AnnotationService

    resolved: Optional[PipelineConfig]
    if isinstance(sources, GeoContext) and config is None and overrides is None:
        resolved = None
    else:
        resolved = _resolve_config(config, overrides)
    return AnnotationService(
        sources,
        config=resolved,
        store=store,
        persist=persist,
        on_result=on_result,
    )


def compile_plan(
    sources: Optional[AnnotationSources] = None,
    config: ConfigLike = None,
    context: Optional[GeoContext] = None,
    annotators: Optional[LayerAnnotators] = None,
    store: Optional[SemanticTrajectoryStore] = None,
    persist: bool = False,
    layers: Optional[Sequence[str]] = None,
    overrides: Optional[Mapping[str, object]] = None,
) -> Plan:
    """Compile the stage-graph plan every execution mode runs.

    Use ``layers`` to restrict the annotation layers compiled in (e.g.
    ``["regions"]`` for a region-only pass); pass a ``context`` snapshot to
    reuse frozen indexes across plans.
    """
    from repro.engine.plan import Plan

    if context is not None:
        if config is None and overrides is None:
            return Plan.from_context(context, store=store, persist=persist, layers=layers)
        return Plan.compile(
            sources=context.sources,
            config=_resolve_config(config, overrides),
            annotators=context.annotators,
            store=store,
            persist=persist,
            layers=layers,
        )
    if sources is None and annotators is None:
        raise _missing_sources()
    return Plan.compile(
        sources=sources,
        config=_resolve_config(config, overrides),
        annotators=annotators,
        store=store,
        persist=persist,
        layers=layers,
    )


def _missing_sources() -> Exception:
    from repro.core.errors import ConfigurationError

    return ConfigurationError(
        "annotation needs geographic data: pass sources=AnnotationSources(...) "
        "or context=GeoContext.build(...)"
    )
