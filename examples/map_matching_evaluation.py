"""Traffic-analysis scenario: evaluating the map-matching layer.

Generates a ground-truth drive (the stand-in for Krumm's Seattle benchmark),
then compares the SeMiTri global map matcher against the geometric,
topological and HMM baselines at several GPS noise levels, and sweeps the
global view radius R and kernel width sigma as in Figure 10.

Run it with::

    python examples/map_matching_evaluation.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import MapMatchingConfig
from repro.datasets import GroundTruthDriveGenerator, SyntheticWorld, WorldConfig
from repro.lines.baselines import IncrementalMatcher, NearestSegmentMatcher, ViterbiMatcher
from repro.lines.map_matching import GlobalMapMatcher, matching_accuracy


def accuracy_of(matcher, drive) -> float:
    matched = matcher.match(drive.trajectory.points)
    return matching_accuracy([m.segment_id for m in matched], drive.truth_segment_ids)


def main() -> None:
    world = SyntheticWorld(WorldConfig(size=8000.0, poi_count=500, seed=7))
    network = world.road_network()
    generator = GroundTruthDriveGenerator(world, waypoint_count=8, sample_interval=2.0, seed=41)

    print("=== Matcher comparison across GPS noise levels ===")
    noise_levels = (5.0, 10.0, 20.0, 35.0)
    matchers = {
        "SeMiTri global matcher": GlobalMapMatcher(network, MapMatchingConfig(candidate_radius=50)),
        "nearest segment": NearestSegmentMatcher(network, candidate_radius=50),
        "incremental": IncrementalMatcher(network, candidate_radius=50),
        "HMM / Viterbi": ViterbiMatcher(network, candidate_radius=50),
    }
    header = "matcher".ljust(26) + "".join(f"noise {n:>4.0f}m " for n in noise_levels)
    print(header)
    for label, matcher in matchers.items():
        cells = []
        for noise in noise_levels:
            drive = generator.generate(noise_sigma=noise)
            cells.append(f"{accuracy_of(matcher, drive) * 100:9.1f}% ")
        print(label.ljust(26) + "".join(cells))

    print("\n=== Sensitivity to R and sigma (Figure 10) ===")
    drive = generator.generate(noise_sigma=10.0)
    print("R".ljust(4) + "".join(f"sigma={f:g}R".rjust(12) for f in (0.5, 1.0, 1.5, 2.0)))
    for radius in (1.0, 2.0, 3.0, 4.0, 5.0):
        row = [f"{radius:g}".ljust(4)]
        for factor in (0.5, 1.0, 1.5, 2.0):
            config = MapMatchingConfig(
                view_radius=radius, kernel_width_factor=factor, candidate_radius=50
            )
            accuracy = accuracy_of(GlobalMapMatcher(network, config), drive)
            row.append(f"{accuracy * 100:11.1f}%")
        print("".join(row))


if __name__ == "__main__":
    main()
