"""Pluggable telemetry exporters: JSONL dumps and Prometheus text format.

Exporters are deliberately tiny: they read a finished
:class:`~repro.obs.runtime.Telemetry` runtime and render it, nothing more.
The JSONL format is line-per-record so span dumps can be streamed, appended
and re-read incrementally; :func:`read_spans` is the matching loader that the
round-trip tests (and any offline analysis) use to rebuild span trees from a
dump with :func:`~repro.obs.trace.build_span_tree`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, List, Union

from repro.obs.trace import Span

if TYPE_CHECKING:  # pragma: no cover - runtime imports exporters, not vice versa
    from repro.obs.runtime import Telemetry


class JsonlExporter:
    """Writes spans and a metrics snapshot as one JSON object per line.

    Span lines are ``{"type": "span", ...Span.as_dict()}``; the registry
    snapshot becomes a single ``{"type": "metrics", ...}`` trailer line.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def export(self, telemetry: "Telemetry") -> Path:
        """Dump the runtime's spans and metrics; returns the written path."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("w", encoding="utf-8") as handle:
            if telemetry.tracer is not None:
                for span in telemetry.tracer.spans:
                    handle.write(json.dumps({"type": "span", **span.as_dict()}) + "\n")
            if telemetry.metrics is not None:
                handle.write(
                    json.dumps({"type": "metrics", **telemetry.metrics.snapshot()})
                    + "\n"
                )
        return self.path


def read_spans(path: Union[str, Path]) -> List[Span]:
    """Load every span line of a JSONL telemetry dump, in file order."""
    spans: List[Span] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            if payload.get("type") == "span":
                spans.append(Span.from_dict(payload))
    return spans


class PrometheusExporter:
    """Renders the metrics registry in Prometheus text exposition format."""

    def __init__(self, prefix: str = "semitri_"):
        self.prefix = prefix

    def render(self, telemetry: "Telemetry") -> str:
        """The scrape body; empty string when metrics are disabled."""
        if telemetry.metrics is None:
            return ""
        return telemetry.metrics.render_prometheus(prefix=self.prefix)
