"""Sharded parallel annotation runtime.

SeMiTri annotates each moving object's trajectories independently, which
makes per-object sharding the natural scale-out axis.  This package supplies
the three pieces that turn the single-core batch pipeline into a multi-core
runtime without changing a single output byte:

* :class:`~repro.parallel.context.GeoContext` — an immutable snapshot of the
  annotation sources, configuration and prebuilt layer annotators (frozen
  R-trees, POI grid, HMM), built once and shared with workers via ``fork`` or
  pickled once per worker;
* :class:`~repro.parallel.runner.ParallelAnnotationRunner` — partitions a
  trajectory batch by object id into balanced shards, annotates them on a
  process pool (or an in-process serial executor) and merges the results back
  into input order;
* :class:`~repro.parallel.store_writer.ShardedStoreWriter` — buffers
  per-shard store rows and commits the merged batch in one transaction with
  single-writer row ordering.

:mod:`repro.parallel.canonical` defines the byte-level equality the runner is
tested against.
"""

from repro.parallel.canonical import (
    canonical_annotation,
    canonical_bytes,
    canonical_episode,
    canonical_result,
    canonical_structured,
)
from repro.parallel.context import GeoContext
from repro.parallel.runner import ParallelAnnotationRunner
from repro.parallel.store_writer import ShardedStoreWriter

__all__ = [
    "GeoContext",
    "ParallelAnnotationRunner",
    "ShardedStoreWriter",
    "canonical_annotation",
    "canonical_bytes",
    "canonical_episode",
    "canonical_result",
    "canonical_structured",
]
