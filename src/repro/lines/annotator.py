"""Line annotation layer façade: map matching + transportation-mode inference.

Implements the full Algorithm 2 output: for each move episode, a structured
semantic trajectory ``T_line`` whose records are the matched road segments,
each carrying the time interval travelled on it and a transportation-mode
annotation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.annotations import line_annotation, transport_mode_annotation
from repro.core.config import MapMatchingConfig, TransportModeConfig
from repro.core.episodes import Episode
from repro.core.errors import DataQualityError
from repro.core.trajectory import SemanticEpisodeRecord, StructuredSemanticTrajectory
from repro.lines.map_matching import GlobalMapMatcher, MatchedPoint
from repro.lines.road_network import RoadNetwork
from repro.lines.transport_mode import ModeSegment, TransportModeClassifier


class LineAnnotator:
    """Annotates move episodes with road segments and transportation modes."""

    def __init__(
        self,
        network: RoadNetwork,
        matching_config: MapMatchingConfig = MapMatchingConfig(),
        transport_config: TransportModeConfig = TransportModeConfig(),
        backend: str = "numpy",
        index_backend: str = "tree",
    ):
        self._matcher = GlobalMapMatcher(
            network, matching_config, backend=backend, index_backend=index_backend
        )
        self._classifier = TransportModeClassifier(transport_config)

    @property
    def matcher(self) -> GlobalMapMatcher:
        """The underlying global map matcher."""
        return self._matcher

    @property
    def classifier(self) -> TransportModeClassifier:
        """The underlying transport-mode classifier."""
        return self._classifier

    # ---------------------------------------------------------------- episodes
    def annotate_episode(self, episode: Episode) -> StructuredSemanticTrajectory:
        """Annotate one move episode (Algorithm 2)."""
        if not episode.is_move:
            raise DataQualityError("the line annotation layer only processes move episodes")
        return self.annotate_matched(episode, self._matcher.match(episode.points))

    def annotate_matched(
        self, episode: Episode, matched: Sequence[MatchedPoint]
    ) -> StructuredSemanticTrajectory:
        """Assemble the line annotation from precomputed per-point match results.

        Used by the streaming engine, whose windowed matcher already produced
        the :class:`MatchedPoint` sequence for the sealed move episode.
        """
        if not episode.is_move:
            raise DataQualityError("the line annotation layer only processes move episodes")
        mode_segments = self._classifier.segment_modes(matched)
        return self._to_structured(episode, mode_segments)

    def annotate_episodes(self, episodes: Sequence[Episode]) -> List[StructuredSemanticTrajectory]:
        """Annotate every move episode in ``episodes`` (non-moves are skipped)."""
        return [self.annotate_episode(episode) for episode in episodes if episode.is_move]

    def match_episode(self, episode: Episode) -> List[MatchedPoint]:
        """Raw per-point matching result for a move episode (used by analytics)."""
        if not episode.is_move:
            raise DataQualityError("the line annotation layer only processes move episodes")
        return self._matcher.match(episode.points)

    # --------------------------------------------------------------- assembly
    def _to_structured(
        self, episode: Episode, mode_segments: Sequence[ModeSegment]
    ) -> StructuredSemanticTrajectory:
        trajectory = episode.trajectory
        result = StructuredSemanticTrajectory(
            trajectory_id=f"{trajectory.trajectory_id}:line",
            object_id=trajectory.object_id,
        )
        dominant_mode: Optional[str] = None
        if mode_segments:
            durations = {}
            for segment_info in mode_segments:
                weight = max(segment_info.duration, float(segment_info.point_count))
                durations[segment_info.mode] = durations.get(segment_info.mode, 0.0) + weight
            dominant_mode = max(durations.items(), key=lambda pair: (pair[1], pair[0]))[0]

        for segment_info in mode_segments:
            place = None
            annotations = [transport_mode_annotation(segment_info.mode)]
            if segment_info.segment_id is not None:
                place = self._matcher.network.segment(segment_info.segment_id)
                annotations.insert(0, line_annotation(place))
            record = SemanticEpisodeRecord(
                place=place,
                time_in=segment_info.time_in,
                time_out=segment_info.time_out,
                kind=episode.kind,
                annotations=annotations,
                source_episode=episode,
            )
            result.append(record)

        if dominant_mode is not None:
            episode.add_annotation(transport_mode_annotation(dominant_mode))
        return result.merged()
