"""Columnar trajectory data: contiguous coordinate arrays for batch kernels.

:class:`TrajectoryArrays` is the structure-of-arrays twin of
:class:`~repro.core.points.RawTrajectory`: one contiguous float64 array per
column (x/longitude, y/latitude, timestamp, and lazily the per-point speeds)
so the vectorized kernels of :mod:`repro.geometry.vectorized` can sweep whole
trajectories per call instead of iterating ``Point`` objects.  The round trip
``from_trajectory`` → ``to_trajectory`` is lossless: every float (including
NaN payloads and signed zeros, via bit-pattern-preserving float64 storage)
and both identifiers survive unchanged.

:class:`GrowableArray` is the streaming counterpart: an amortised-append
float64 buffer whose :meth:`view` exposes the filled prefix without copying,
so online consumers (the incremental stop detector, the windowed matcher) can
micro-batch into the same kernels the batch pipeline uses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.errors import DataQualityError
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.geometry.primitives import BoundingBox
from repro.geometry.vectorized import consecutive_speeds


class TrajectoryArrays:
    """Columnar (structure-of-arrays) view of one trajectory's GPS fixes."""

    __slots__ = ("xs", "ys", "ts", "object_id", "trajectory_id", "_speeds")

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        ts: np.ndarray,
        object_id: str = "unknown",
        trajectory_id: Optional[str] = None,
    ):
        self.xs = np.ascontiguousarray(xs, dtype=np.float64)
        self.ys = np.ascontiguousarray(ys, dtype=np.float64)
        self.ts = np.ascontiguousarray(ts, dtype=np.float64)
        if not (len(self.xs) == len(self.ys) == len(self.ts)):
            raise DataQualityError(
                "coordinate columns must have equal lengths "
                f"({len(self.xs)}, {len(self.ys)}, {len(self.ts)})"
            )
        self.object_id = object_id
        self.trajectory_id = trajectory_id
        self._speeds: Optional[np.ndarray] = None

    # ------------------------------------------------------------ construction
    @classmethod
    def from_points(
        cls,
        points: Sequence[SpatioTemporalPoint],
        object_id: str = "unknown",
        trajectory_id: Optional[str] = None,
    ) -> "TrajectoryArrays":
        """Columnarise a point sequence (empty sequences are allowed)."""
        n = len(points)
        xs = np.fromiter((point.x for point in points), dtype=np.float64, count=n)
        ys = np.fromiter((point.y for point in points), dtype=np.float64, count=n)
        ts = np.fromiter((point.t for point in points), dtype=np.float64, count=n)
        return cls(xs, ys, ts, object_id=object_id, trajectory_id=trajectory_id)

    @classmethod
    def from_trajectory(cls, trajectory: RawTrajectory) -> "TrajectoryArrays":
        """Columnarise a raw trajectory, carrying both identifiers along."""
        return cls.from_points(
            trajectory.points,
            object_id=trajectory.object_id,
            trajectory_id=trajectory.trajectory_id,
        )

    # -------------------------------------------------------------- round trip
    def to_points(self) -> List[SpatioTemporalPoint]:
        """Materialise the columns back into point objects."""
        return [
            SpatioTemporalPoint(float(x), float(y), float(t))
            for x, y, t in zip(self.xs, self.ys, self.ts)
        ]

    def to_trajectory(self) -> RawTrajectory:
        """Rebuild the row-oriented :class:`RawTrajectory`.

        Raises :class:`~repro.core.errors.DataQualityError` for empty columns,
        mirroring the ``RawTrajectory`` constructor's contract (a trajectory
        has at least one point).
        """
        if len(self) == 0:
            raise DataQualityError("cannot build a trajectory from empty coordinate arrays")
        return RawTrajectory(
            self.to_points(), object_id=self.object_id, trajectory_id=self.trajectory_id
        )

    # ---------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self.xs)

    @property
    def speeds(self) -> np.ndarray:
        """Per-point speeds (paper alignment: pairwise, last value repeated).

        Computed lazily with the vectorized kernel and cached; bit-for-bit
        equal to :func:`repro.preprocessing.features.compute_motion_features`
        speeds.
        """
        if self._speeds is None:
            self._speeds = consecutive_speeds(self.xs, self.ys, self.ts)
        return self._speeds

    @property
    def duration(self) -> float:
        """Tracking time in seconds (0 for fewer than two points)."""
        if len(self) < 2:
            return 0.0
        return float(self.ts[-1] - self.ts[0])

    def bounding_box(self, padding: float = 0.0) -> BoundingBox:
        """Spatial bounding rectangle of the trajectory (must be non-empty)."""
        if len(self) == 0:
            raise DataQualityError("cannot build a bounding box from empty coordinate arrays")
        return BoundingBox(
            float(self.xs.min()) - padding,
            float(self.ys.min()) - padding,
            float(self.xs.max()) + padding,
            float(self.ys.max()) + padding,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrajectoryArrays(id={self.trajectory_id!r}, object={self.object_id!r}, "
            f"points={len(self)})"
        )


class GrowableArray:
    """A float64 buffer with amortised append and a zero-copy filled view.

    The streaming subsystem appends each incoming fix once and hands
    :meth:`view` slices to the same vectorized kernels the batch pipeline
    uses; capacity doubles on overflow so ``n`` appends cost ``O(n)``.
    """

    __slots__ = ("_data", "_length")

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self._data = np.empty(capacity, dtype=np.float64)
        self._length = 0

    def __len__(self) -> int:
        return self._length

    def append(self, value: float) -> None:
        """Append one value, growing the backing storage geometrically."""
        if self._length == len(self._data):
            grown = np.empty(len(self._data) * 2, dtype=np.float64)
            grown[: self._length] = self._data
            self._data = grown
        self._data[self._length] = value
        self._length += 1

    def extend(self, values: Sequence[float]) -> None:
        """Append several values at once."""
        for value in values:
            self.append(value)

    def view(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """Zero-copy view of ``[start, stop)`` within the filled prefix."""
        if stop is None:
            stop = self._length
        if not (0 <= start <= stop <= self._length):
            raise IndexError(f"invalid view [{start}, {stop}) of length {self._length}")
        return self._data[start:stop]

    def clear(self) -> None:
        """Reset to empty without releasing the backing storage."""
        self._length = 0
