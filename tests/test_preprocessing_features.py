"""Unit tests for motion feature extraction."""

from __future__ import annotations

import math

import pytest

from repro.core.points import SpatioTemporalPoint, build_trajectory
from repro.preprocessing.features import (
    MotionFeatures,
    compute_motion_features,
    features_for_trajectory,
    heading_change_rate,
)


def _points(*triples):
    return [SpatioTemporalPoint(x, y, t) for x, y, t in triples]


class TestComputeMotionFeatures:
    def test_constant_speed(self):
        points = _points(*[(i * 10.0, 0, i) for i in range(5)])
        features = compute_motion_features(points)
        assert len(features) == 5
        assert all(speed == pytest.approx(10.0) for speed in features.speeds)
        assert features.mean_speed() == pytest.approx(10.0)
        assert features.mean_absolute_acceleration() == pytest.approx(0.0)

    def test_acceleration_detected(self):
        # Speeds 1, then 3: acceleration at the switch point.
        points = _points((0, 0, 0), (1, 0, 1), (4, 0, 2), (7, 0, 3))
        features = compute_motion_features(points)
        assert features.mean_absolute_acceleration() > 0.0

    def test_headings(self):
        points = _points((0, 0, 0), (1, 0, 1), (1, 1, 2))
        features = compute_motion_features(points)
        assert features.headings[0] == pytest.approx(0.0)
        assert features.headings[1] == pytest.approx(math.pi / 2)

    def test_empty_and_single_point(self):
        assert len(compute_motion_features([])) == 0
        single = compute_motion_features(_points((0, 0, 0)))
        assert single.speeds == [0.0]

    def test_zero_time_delta_gives_zero_speed(self):
        points = _points((0, 0, 0), (10, 0, 0))
        features = compute_motion_features(points)
        assert features.speeds[0] == 0.0

    def test_lengths_match_input(self):
        points = _points(*[(i, i, i) for i in range(7)])
        features = compute_motion_features(points)
        assert len(features.speeds) == len(features.accelerations) == len(features.headings) == 7

    def test_features_for_trajectory(self):
        trajectory = build_trajectory([(0, 0, 0), (1, 0, 1), (2, 0, 2)])
        features = features_for_trajectory(trajectory)
        assert features.mean_speed() == pytest.approx(1.0)


class TestFeatureStatistics:
    def test_max_speed(self):
        features = MotionFeatures(speeds=[1.0, 5.0, 3.0], accelerations=[0, 0, 0], headings=[0, 0, 0])
        assert features.max_speed() == 5.0

    def test_speed_percentile(self):
        features = MotionFeatures(
            speeds=[1.0, 2.0, 3.0, 4.0], accelerations=[0] * 4, headings=[0] * 4
        )
        assert features.speed_percentile(0) == 1.0
        assert features.speed_percentile(100) == 4.0
        assert features.speed_percentile(50) == pytest.approx(2.5)

    def test_speed_percentile_invalid(self):
        features = MotionFeatures(speeds=[1.0], accelerations=[0.0], headings=[0.0])
        with pytest.raises(ValueError):
            features.speed_percentile(120)

    def test_empty_statistics(self):
        features = MotionFeatures(speeds=[], accelerations=[], headings=[])
        assert features.mean_speed() == 0.0
        assert features.max_speed() == 0.0
        assert features.speed_percentile(50) == 0.0


class TestHeadingChangeRate:
    def test_straight_line_is_zero(self):
        assert heading_change_rate([0.0, 0.0, 0.0]) == 0.0

    def test_turns_increase_rate(self):
        straight = heading_change_rate([0.0, 0.0, 0.0, 0.0])
        wiggly = heading_change_rate([0.0, math.pi / 2, 0.0, math.pi / 2])
        assert wiggly > straight

    def test_wraps_around_pi(self):
        # A heading change from +179deg to -179deg is only 2deg, not 358deg.
        rate = heading_change_rate([math.pi - 0.01, -math.pi + 0.01])
        assert rate == pytest.approx(0.02, abs=1e-6)

    def test_short_input(self):
        assert heading_change_rate([1.0]) == 0.0
