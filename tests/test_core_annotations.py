"""Unit tests for annotations (Definition 3 annotation kinds)."""

from __future__ import annotations

import pytest

from repro.core.annotations import (
    Annotation,
    AnnotationKind,
    GeographicReferenceAnnotation,
    ValueAnnotation,
    activity_annotation,
    line_annotation,
    poi_annotation,
    region_annotation,
    transport_mode_annotation,
)
from repro.core.places import PointOfInterest, RegionOfInterest
from repro.geometry.primitives import BoundingBox, Point


@pytest.fixture()
def sample_region() -> RegionOfInterest:
    return RegionOfInterest(
        place_id="cell-1", name="cell", category="1.2", extent=BoundingBox(0, 0, 100, 100)
    )


@pytest.fixture()
def sample_poi() -> PointOfInterest:
    return PointOfInterest(place_id="poi-1", name="cafe", category="feedings", location=Point(1, 1))


class TestAnnotationBasics:
    def test_confidence_must_be_in_unit_interval(self):
        with pytest.raises(ValueError):
            Annotation(kind=AnnotationKind.VALUE, confidence=1.5)
        with pytest.raises(ValueError):
            Annotation(kind=AnnotationKind.VALUE, confidence=-0.1)

    def test_geographic_annotation_requires_place(self):
        with pytest.raises(ValueError):
            GeographicReferenceAnnotation(kind=AnnotationKind.REGION)

    def test_value_annotation_requires_label(self):
        with pytest.raises(ValueError):
            ValueAnnotation(kind=AnnotationKind.VALUE, label="")


class TestFactories:
    def test_region_annotation(self, sample_region):
        annotation = region_annotation(sample_region, confidence=0.9, source="landuse")
        assert annotation.kind is AnnotationKind.REGION
        assert annotation.place_id == "cell-1"
        assert annotation.category == "1.2"
        assert annotation.confidence == 0.9
        assert annotation.details["source"] == "landuse"

    def test_line_annotation(self, sample_region):
        annotation = line_annotation(sample_region)
        assert annotation.kind is AnnotationKind.LINE

    def test_poi_annotation(self, sample_poi):
        annotation = poi_annotation(sample_poi)
        assert annotation.kind is AnnotationKind.POINT
        assert annotation.category == "feedings"

    def test_transport_mode_annotation(self):
        annotation = transport_mode_annotation("metro", confidence=0.8)
        assert annotation.kind is AnnotationKind.TRANSPORT_MODE
        assert annotation.label == "transport_mode"
        assert annotation.value == "metro"

    def test_activity_annotation(self):
        annotation = activity_annotation("shopping")
        assert annotation.kind is AnnotationKind.ACTIVITY
        assert annotation.value == "shopping"

    def test_annotations_are_immutable(self, sample_poi):
        annotation = poi_annotation(sample_poi)
        with pytest.raises(AttributeError):
            annotation.confidence = 0.1  # type: ignore[misc]
