"""Unit tests for the POI observation model (Lemma 1 + grid discretisation)."""

from __future__ import annotations

import pytest

from repro.core.config import PointAnnotationConfig
from repro.core.episodes import Episode, EpisodeKind
from repro.core.places import PointOfInterest
from repro.core.points import build_trajectory
from repro.geometry.primitives import BoundingBox, Point
from repro.points.observation import PoiObservationModel
from repro.points.poi import PoiSource


def _poi(place_id: str, x: float, y: float, category: str) -> PointOfInterest:
    return PointOfInterest(place_id=place_id, name=place_id, category=category, location=Point(x, y))


@pytest.fixture()
def two_cluster_source() -> PoiSource:
    """Feedings cluster around (100, 100), item-sale cluster around (900, 900)."""
    pois = []
    for i in range(5):
        pois.append(_poi(f"f{i}", 100 + i * 5, 100, "feedings"))
        pois.append(_poi(f"s{i}", 900 + i * 5, 900, "item sale"))
    return PoiSource(pois, name="clusters")


@pytest.fixture()
def model(two_cluster_source) -> PoiObservationModel:
    config = PointAnnotationConfig(grid_cell_size=50, neighbor_radius=300, default_sigma=50)
    return PoiObservationModel(two_cluster_source, config)


class TestProbabilities:
    def test_probability_higher_near_category_cluster(self, model):
        near_feedings = model.probability("feedings", Point(100, 100))
        far_feedings = model.probability("feedings", Point(900, 900))
        assert near_feedings > far_feedings

    def test_category_scores_normalised(self, model):
        scores = model.category_scores(Point(100, 100))
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores["feedings"] > scores["item sale"]

    def test_most_likely_category(self, model):
        assert model.most_likely_category(Point(100, 100)) == "feedings"
        assert model.most_likely_category(Point(900, 900)) == "item sale"

    def test_far_from_everything_is_near_uniform(self, model):
        # Outside the neighbour radius of both clusters the scores fall back to
        # the probability floor, hence a uniform normalised distribution.
        scores = model.category_scores(Point(500, 500))
        assert scores["feedings"] == pytest.approx(scores["item sale"], rel=1e-6)

    def test_point_outside_grid_uses_exact_computation(self, model):
        outside = Point(-10_000, -10_000)
        assert model.grid.cell_of(outside) is None
        score = model.probability("feedings", outside)
        assert score == pytest.approx(model.config.min_probability)

    def test_probability_for_episode_uses_center(self, model):
        trajectory = build_trajectory([(100, 100, 0), (102, 100, 60), (98, 100, 120)])
        stop = Episode(EpisodeKind.STOP, trajectory, 0, 3)
        assert model.probability_for_episode("feedings", stop) == pytest.approx(
            model.probability("feedings", stop.center()), rel=1e-6
        )


class TestDiscretisation:
    def test_cell_probabilities_are_cached(self, model):
        assert model.cache_size() == 0
        model.probability("feedings", Point(100, 100))
        assert model.cache_size() == 1
        model.probability("item sale", Point(101, 101))
        assert model.cache_size() == 1  # same cell, no recomputation

    def test_precompute_box(self, model):
        count = model.precompute_box(BoundingBox(80, 80, 180, 180))
        assert count > 0
        # Second call recomputes nothing.
        assert model.precompute_box(BoundingBox(80, 80, 180, 180)) == 0

    def test_grid_covers_poi_bounds(self, two_cluster_source, model):
        bounds = two_cluster_source.bounds()
        assert model.grid.bounds.contains_box(bounds)

    def test_discretised_close_to_exact(self, two_cluster_source):
        config = PointAnnotationConfig(grid_cell_size=20, neighbor_radius=300, default_sigma=50)
        model = PoiObservationModel(two_cluster_source, config)
        stop = Point(110, 105)
        discretised = model.probability("feedings", stop)
        exact = model._exact_probability("feedings", stop)
        assert discretised == pytest.approx(exact, rel=0.5)

    def test_category_specific_sigma(self, two_cluster_source):
        config = PointAnnotationConfig(
            grid_cell_size=50,
            neighbor_radius=300,
            default_sigma=50,
            category_sigmas={"feedings": 10.0},
        )
        model = PoiObservationModel(two_cluster_source, config)
        assert model.sigma_for("feedings") == 10.0
        assert model.sigma_for("item sale") == 50.0

    def test_categories_exposed(self, model):
        assert set(model.categories) == {"feedings", "item sale"}
