"""Metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` per telemetry runtime collects every runtime
signal the engine emits — executor throughput counters (the
:class:`~repro.engine.executors.EngineStats` vocabulary, for *all three*
executors), streaming session-manager events (evictions, gap close-outs,
open-session and queue-depth gauges) and
:class:`~repro.store.store.SemanticTrajectoryStore` transaction counters
(commits, rollbacks, rows written, write-batch sizes).

Per-stage latency is special: the registry's histogram backend for it **is**
the existing :class:`~repro.analytics.latency.LatencyProfile` — executors
keep recording through :class:`~repro.analytics.latency.StageTimer` exactly
as before, finished profiles are folded in via :meth:`MetricsRegistry.\
observe_latency`, and means/percentiles are computed by the profile itself
over the raw samples.  Fixed buckets are derived views over those samples, so
the Figure 17 numbers stay **bitwise identical** to the pre-registry path.
"""

from __future__ import annotations

import bisect
import math
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analytics.latency import LatencyProfile
from repro.core.errors import ConfigurationError

#: Default fixed buckets (seconds) for stage-latency histograms: 100 us to 5 s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default fixed buckets for row-count histograms (store write batches).
DEFAULT_BATCH_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000)

#: A label set, normalised to a sorted tuple so lookups are order-insensitive.
Labels = Tuple[Tuple[str, str], ...]


def _labels(labels: Dict[str, str]) -> Labels:
    return tuple(sorted((key, str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ConfigurationError("counters only increase; use a gauge instead")
        self.value += amount


class Gauge:
    """A value that can go up and down (queue depth, open sessions)."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels, help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to an absolute value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge up by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative-friendly per-bucket counts.

    ``buckets`` are inclusive upper bounds; one implicit ``+Inf`` bucket
    catches everything above the last bound.  ``counts`` are per-bucket (not
    cumulative); the Prometheus renderer accumulates them on the way out.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(float(bound) for bound in buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self.max_value: float = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        if value > self.max_value:
            self.max_value = value

    def mean(self) -> float:
        """Mean of the observed values (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, percentile: float) -> float:
        """Bucket-resolution percentile estimate (0 when empty).

        Returns the upper bound of the first bucket whose cumulative count
        reaches the requested rank — an over-estimate by at most one bucket
        width, which is the usual fixed-bucket trade-off; observations above
        the last bound report the tracked maximum instead of ``+Inf``.
        """
        if not (0.0 <= percentile <= 100.0):
            raise ConfigurationError("percentile must lie between 0 and 100")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil((percentile / 100.0) * self.count))
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                return bound
        return self.max_value


def bucket_counts(samples: Sequence[float], buckets: Sequence[float]) -> List[int]:
    """Per-bucket counts of ``samples`` under the fixed ``buckets`` bounds.

    The derived-view helper behind the stage-latency histograms: the raw
    samples stay in the :class:`LatencyProfile` backend and bucket counts are
    computed on demand, so bucketing can never perturb the exact means.
    """
    counts = [0] * (len(buckets) + 1)
    bounds = [float(bound) for bound in buckets]
    for value in samples:
        counts[bisect.bisect_left(bounds, value)] += 1
    return counts


class MetricsRegistry:
    """Get-or-create registry of named metrics plus the stage-latency backend."""

    def __init__(self) -> None:
        self._metrics: "OrderedDict[Tuple[str, Labels], object]" = OrderedDict()
        #: The stage-latency histogram backend: the raw per-stage samples,
        #: absorbed from every finished trajectory's latency profile.  Means,
        #: totals and percentiles are the profile's own — bitwise identical
        #: to what the Figure 17 benchmark computed before the registry
        #: existed.
        self.stage_latency = LatencyProfile()

    # ------------------------------------------------------------- get-or-create
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        """The counter with this name and label set (created on first use)."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        """The gauge with this name and label set (created on first use)."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        """The histogram with this name and label set (created on first use)."""
        key = (name, _labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], buckets=buckets, help=help)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise ConfigurationError(
                f"metric {name!r} is already registered as a {metric.kind}"  # type: ignore[attr-defined]
            )
        return metric

    def _get_or_create(self, cls: type, name: str, help: str, labels: Dict[str, str]):
        key = (name, _labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1], help=help)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ConfigurationError(
                f"metric {name!r} is already registered as a {metric.kind}"  # type: ignore[attr-defined]
            )
        return metric

    # ----------------------------------------------------------- stage latency
    def observe_latency(self, profile: LatencyProfile) -> None:
        """Fold one finished trajectory's latency samples into the backend."""
        self.stage_latency.merge(profile)

    def latency_buckets(
        self, stage: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> List[int]:
        """Fixed-bucket view over one stage's raw latency samples."""
        return bucket_counts(self.stage_latency.samples.get(stage, ()), buckets)

    # -------------------------------------------------------------- inspection
    def metrics(self) -> List[object]:
        """Every registered metric, in registration order."""
        return list(self._metrics.values())

    def value(self, name: str, **labels: str) -> Optional[float]:
        """Current value of a counter/gauge, or ``None`` if never registered."""
        metric = self._metrics.get((name, _labels(labels)))
        if metric is None or isinstance(metric, Histogram):
            return None
        return metric.value  # type: ignore[attr-defined]

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable dump of every metric plus the latency backend."""
        rendered: List[Dict[str, object]] = []
        for metric in self._metrics.values():
            entry: Dict[str, object] = {
                "name": metric.name,  # type: ignore[attr-defined]
                "kind": metric.kind,  # type: ignore[attr-defined]
                "labels": dict(metric.labels),  # type: ignore[attr-defined]
            }
            if isinstance(metric, Histogram):
                entry.update(
                    buckets=list(metric.buckets),
                    counts=list(metric.counts),
                    sum=metric.sum,
                    count=metric.count,
                )
            else:
                entry["value"] = metric.value  # type: ignore[attr-defined]
            rendered.append(entry)
        stages = {
            stage: {
                "count": self.stage_latency.count(stage),
                "mean": self.stage_latency.mean(stage),
                "p95": self.stage_latency.p95(stage),
                "total": self.stage_latency.total(stage),
                "buckets": list(DEFAULT_LATENCY_BUCKETS),
                "counts": self.latency_buckets(stage),
            }
            for stage in self.stage_latency.stages()
        }
        return {"metrics": rendered, "stage_latency": stages}

    def render_prometheus(self, prefix: str = "semitri_") -> str:
        """Prometheus text exposition format for every metric.

        Stage latency renders as one ``<prefix>stage_latency_seconds``
        histogram per stage (cumulative ``_bucket`` series, ``_sum``,
        ``_count``) straight off the :class:`LatencyProfile` backend.
        """
        lines: List[str] = []
        seen_names: set = set()
        for metric in self._metrics.values():
            name = f"{prefix}{metric.name}"  # type: ignore[attr-defined]
            if name not in seen_names:
                seen_names.add(name)
                help_text = metric.help or metric.name  # type: ignore[attr-defined]
                lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {metric.kind}")  # type: ignore[attr-defined]
            labels = dict(metric.labels)  # type: ignore[attr-defined]
            if isinstance(metric, Histogram):
                lines.extend(_prometheus_histogram(name, labels, metric.buckets, metric.counts, metric.sum, metric.count))
            else:
                lines.append(f"{name}{_prometheus_labels(labels)} {_format_value(metric.value)}")  # type: ignore[attr-defined]
        if self.stage_latency.stages():
            name = f"{prefix}stage_latency_seconds"
            lines.append(f"# HELP {name} Per-stage pipeline latency (Figure 17 vocabulary)")
            lines.append(f"# TYPE {name} histogram")
            for stage in self.stage_latency.stages():
                lines.extend(
                    _prometheus_histogram(
                        name,
                        {"stage": stage},
                        DEFAULT_LATENCY_BUCKETS,
                        self.latency_buckets(stage),
                        self.stage_latency.total(stage),
                        self.stage_latency.count(stage),
                    )
                )
        return "\n".join(lines) + "\n"

    def summary(self) -> str:
        """Human-readable table of every metric plus the per-stage latencies."""
        from repro.analytics.reporting import render_table  # deferred: keep import light

        rows: List[List[object]] = []
        for metric in self._metrics.values():
            labels = ", ".join(f"{key}={value}" for key, value in metric.labels)  # type: ignore[attr-defined]
            if isinstance(metric, Histogram):
                value = f"count={metric.count} mean={metric.mean():.4g}"
            else:
                value = _format_value(metric.value)  # type: ignore[attr-defined]
            rows.append([metric.name, metric.kind, labels or "-", value])  # type: ignore[attr-defined]
        blocks = [render_table(["metric", "kind", "labels", "value"], rows, title="metrics")]
        latency_rows = [
            [
                stage,
                self.stage_latency.count(stage),
                f"{self.stage_latency.mean(stage):.6f}",
                f"{self.stage_latency.p95(stage):.6f}",
                f"{self.stage_latency.total(stage):.6f}",
            ]
            for stage in self.stage_latency.stages()
        ]
        if latency_rows:
            blocks.append(
                render_table(
                    ["stage", "count", "mean (s)", "p95 (s)", "total (s)"],
                    latency_rows,
                    title="stage latency (LatencyProfile backend)",
                )
            )
        return "\n\n".join(blocks)


def _prometheus_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isfinite(value) and float(value).is_integer():
        return str(int(value))
    return repr(value)


def _prometheus_histogram(
    name: str,
    labels: Dict[str, str],
    buckets: Sequence[float],
    counts: Sequence[int],
    total: float,
    count: int,
) -> List[str]:
    lines: List[str] = []
    cumulative = 0
    for bound, bucket_count in zip(buckets, counts):
        cumulative += bucket_count
        bucket_labels = dict(labels, le=f"{bound:g}")
        lines.append(f"{name}_bucket{_prometheus_labels(bucket_labels)} {cumulative}")
    cumulative += counts[len(buckets)]
    lines.append(f"{name}_bucket{_prometheus_labels(dict(labels, le='+Inf'))} {cumulative}")
    lines.append(f"{name}_sum{_prometheus_labels(labels)} {repr(total)}")
    lines.append(f"{name}_count{_prometheus_labels(labels)} {count}")
    return lines


# ------------------------------------------------------------- metric bundles
class EngineCounters:
    """The :class:`EngineStats` vocabulary as registry counters.

    One bundle per executor kind, so the sequential, process-pool and
    micro-batch runtimes report **comparable** throughput counters — the
    micro-batch-only ``EngineStats`` dataclass stays for API compatibility,
    but the registry is where all three executors meet.
    """

    def __init__(self, registry: MetricsRegistry, executor: str):
        self.events = registry.counter(
            "engine_events_total", help="GPS events processed", executor=executor
        )
        self.results = registry.counter(
            "engine_results_total", help="Trajectories annotated", executor=executor
        )
        self.episodes_sealed = registry.counter(
            "engine_episodes_sealed_total", help="Episodes produced", executor=executor
        )
        self.trajectories_discarded = registry.counter(
            "engine_trajectories_discarded_total",
            help="Trajectories discarded as too-short fragments",
            executor=executor,
        )
        self.processing_passes = registry.counter(
            "engine_processing_passes_total",
            help="Micro-batch processing passes",
            executor=executor,
        )


class StreamingMetrics:
    """Session-manager signals: evictions, gap close-outs, depth gauges."""

    def __init__(self, registry: MetricsRegistry):
        self.evictions = registry.counter(
            "streaming_evictions_total", help="Sessions closed by LRU eviction"
        )
        self.gap_closeouts = registry.counter(
            "streaming_gap_closeouts_total",
            help="Trajectories sealed online by a time/distance gap",
        )
        self.open_sessions = registry.gauge(
            "streaming_open_sessions", help="Currently open per-object sessions"
        )
        self.pending_events = registry.gauge(
            "streaming_pending_events", help="Events buffered in the current micro-batch"
        )


class ServiceMetrics:
    """Ingestion-service signals: per-shard queues, throughput, latency.

    One bundle per :class:`~repro.service.service.AnnotationService`; the
    per-shard series are labelled by shard index (:meth:`shard`), service-wide
    signals (backpressure waits, ingest latency) are unlabelled.  The ingest
    latency histogram measures enqueue-to-absorbed time per event — queueing
    plus the shard executor's processing share — which is the p50/p99 an
    online emitter actually experiences.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.backpressure_waits = registry.counter(
            "service_backpressure_waits_total",
            help="ingest calls that awaited a full shard queue",
        )
        self.sessions_evicted = registry.counter(
            "service_sessions_evicted_total",
            help="Sessions gracefully closed under the service memory budget",
        )
        self.ingest_latency = registry.histogram(
            "service_ingest_latency_seconds",
            help="Enqueue-to-absorbed latency per event",
        )
        self._shards: Dict[int, "ShardMetrics"] = {}

    def shard(self, index: int) -> "ShardMetrics":
        """The per-shard bundle for one shard index (created on first use)."""
        bundle = self._shards.get(index)
        if bundle is None:
            bundle = ShardMetrics(self.registry, index)
            self._shards[index] = bundle
        return bundle


class ShardMetrics:
    """One ingest shard's series: queue depth, events, results, sessions.

    The process-transport series (worker pid, restarts, IPC frame/byte
    counters) stay at their zero values under the thread transport — one
    bundle serves both so dashboards need no transport-specific wiring.
    """

    def __init__(self, registry: MetricsRegistry, index: int):
        shard = str(index)
        self.queue_depth = registry.gauge(
            "service_queue_depth", help="Events waiting in the shard queue", shard=shard
        )
        self.events = registry.counter(
            "service_events_total", help="Events absorbed by the shard", shard=shard
        )
        self.results = registry.counter(
            "service_results_total", help="Trajectories sealed by the shard", shard=shard
        )
        self.open_sessions = registry.gauge(
            "service_open_sessions", help="Open per-object sessions in the shard", shard=shard
        )
        self.errors = registry.counter(
            "service_shard_errors_total",
            help="Shard batches that failed while processing",
            shard=shard,
        )
        self.worker_pid = registry.gauge(
            "service_worker_pid",
            help="PID of the shard's worker process (process transport)",
            shard=shard,
        )
        self.worker_restarts = registry.counter(
            "service_worker_restarts_total",
            help="Shard worker processes lost and respawned",
            shard=shard,
        )
        self.ipc_frames = registry.counter(
            "service_ipc_frames_total",
            help="Batched event frames shipped to the shard worker",
            shard=shard,
        )
        self.ipc_bytes = registry.counter(
            "service_ipc_bytes_total",
            help="Encoded frame bytes shipped to the shard worker",
            shard=shard,
        )


class FaultMetrics:
    """Fault-tolerance signals: failures, retries, quarantine, WAL replay.

    The unlabelled counters mirror the plain-integer counters on
    :class:`~repro.faults.failures.FailureLog` one-to-one, so tests can
    reconcile both against an injected :class:`~repro.faults.inject.FaultPlan`
    exactly; ``failures_total`` additionally fans out by stage and failure
    kind for dashboards.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.retries = registry.counter(
            "retries_total", help="Per-trajectory retry attempts after a stage failure"
        )
        self.quarantined = registry.counter(
            "quarantined_total", help="Trajectories dead-lettered to the quarantine table"
        )
        self.wal_replayed = registry.counter(
            "wal_replayed_total", help="Ingest-journal records replayed during recovery"
        )
        self.worker_losses = registry.counter(
            "worker_losses_total", help="Pool worker processes lost and recovered from"
        )

    def failure(self, stage: str, kind: str) -> None:
        """Count one failure event, labelled by stage and exception kind."""
        self.registry.counter(
            "failures_total",
            help="Stage failures by stage and exception kind",
            stage=stage,
            kind=kind,
        ).inc()


class StoreMetrics:
    """Transaction-scope signals of the semantic trajectory store."""

    def __init__(self, registry: MetricsRegistry):
        self.commits = registry.counter(
            "store_commits_total", help="Store transactions committed"
        )
        self.rollbacks = registry.counter(
            "store_rollbacks_total", help="Store transactions rolled back"
        )
        self.rows_written = registry.counter(
            "store_rows_written_total",
            help="Rows inserted (trajectories + GPS records + episodes + annotations)",
        )
        self.batch_rows = registry.histogram(
            "store_batch_rows",
            buckets=DEFAULT_BATCH_BUCKETS,
            help="Rows per write batch",
        )

    def observe_write(self, rows: int) -> None:
        """Record one write batch: its row count and the batch-size histogram."""
        self.rows_written.inc(rows)
        self.batch_rows.observe(rows)
