"""Plain-text renderers for the benchmark harness.

The benchmark files print the rows and series of every reproduced table and
figure; these helpers format them consistently so EXPERIMENTS.md and the
bench output stay readable without any plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an ASCII table with aligned columns."""
    columns = len(headers)
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != columns:
            raise ValueError("every row must have as many cells as there are headers")
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(values: Sequence[str]) -> str:
        return " | ".join(value.ljust(widths[index]) for index, value in enumerate(values))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in cells:
        lines.append(format_row(row))
    return "\n".join(lines)


def render_distribution_table(
    distribution: Dict[str, float],
    title: str = "",
    value_label: str = "share",
    sort_by_value: bool = True,
) -> str:
    """Render a category -> share mapping as a two-column table."""
    items = list(distribution.items())
    if sort_by_value:
        items.sort(key=lambda pair: (-pair[1], pair[0]))
    else:
        items.sort(key=lambda pair: pair[0])
    rows = [(category, f"{value:.4f}") for category, value in items]
    return render_table(["category", value_label], rows, title=title)


def render_series(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series, one block per series (for figure benchmarks)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for name in sorted(series):
        lines.append(f"[{name}]")
        rows = [(f"{x:g}", f"{y:.4f}") for x, y in series[name]]
        lines.append(render_table([x_label, y_label], rows))
    return "\n".join(lines)
