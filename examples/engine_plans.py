"""Custom stage plans on the stage-graph execution engine.

Every runtime — batch, streaming, parallel — executes the same compiled
:class:`~repro.engine.plan.Plan`.  This example drives the engine directly:

* it compiles the full plan and prints its dataflow (stages with their
  declared inputs and outputs);
* it compiles a **region-only** plan over the same sources (the landuse join
  without map matching or POI decoding, the cheap first-pass the paper's
  partial-annotation scenarios call for);
* it then runs a **re-annotation pass**: the same trajectories again through
  a full plan that *reuses* the prebuilt :class:`LayerAnnotators` bundle —
  no index or HMM is rebuilt — persisting into the semantic store through
  the store's commit-on-success transaction scope;
* finally it runs the full plan on the sharded process-pool executor and
  checks all executors produced byte-identical annotations.

Run it with::

    python examples/engine_plans.py
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import AnnotationSources, PipelineConfig
from repro.datasets import PrivateCarSimulator, SyntheticWorld, WorldConfig
from repro.engine import Plan, ProcessPoolExecutor, SequentialExecutor
from repro.parallel import canonical_bytes
from repro.store.store import SemanticTrajectoryStore


def main() -> None:
    # 1. Geographic substrate and a small car fleet.
    world = SyntheticWorld(WorldConfig(size=6000.0, poi_count=800, seed=7))
    sources = AnnotationSources(
        regions=world.region_source(),
        road_network=world.road_network(),
        pois=world.poi_source(),
    )
    dataset = PrivateCarSimulator(world, car_count=6, trips_per_car=2, seed=23).generate()
    trajectories = dataset.trajectories
    config = PipelineConfig.for_vehicles()

    # 2. Compile the full plan once and show its dataflow.
    full_plan = Plan.compile(sources, config=config)
    print("full plan dataflow:")
    print(full_plan.describe())
    print()

    # 3. A cheap region-only first pass: same sources, one annotation layer.
    region_plan = Plan.compile(
        sources, config=config, annotators=full_plan.annotators, layers=("region",)
    )
    started = time.perf_counter()
    region_results = SequentialExecutor().run(region_plan, trajectories)
    region_s = time.perf_counter() - started
    annotated = sum(
        1
        for result in region_results
        for record in (result.region_trajectory or [])
        if record.place is not None
    )
    print(
        f"region-only pass: stages={region_plan.stage_names()}, "
        f"{annotated} episode-region links in {region_s * 1e3:.0f} ms"
    )

    # 4. Re-annotation pass: the full plan, reusing the prebuilt annotator
    #    bundle (indexes, observation model, HMM are NOT rebuilt), with
    #    persistence — each trajectory commits atomically via `with store:`.
    store = SemanticTrajectoryStore()
    replan = Plan.compile(
        sources, config=config, annotators=full_plan.annotators, store=store, persist=True
    )
    started = time.perf_counter()
    full_results = SequentialExecutor().run(replan, trajectories)
    full_s = time.perf_counter() - started
    print(
        f"re-annotation pass: stages={replan.stage_names()}, "
        f"store now holds {store.stop_move_summary()} in {full_s * 1e3:.0f} ms"
    )

    # 5. The same plan on the sharded process-pool executor: byte-identical.
    with ProcessPoolExecutor(workers=4) as pool:
        pooled = pool.run(full_plan, trajectories)
    sequential = SequentialExecutor().run(full_plan, trajectories)
    assert canonical_bytes(pooled) == canonical_bytes(sequential)
    print("process-pool executor output is byte-identical to sequential")

    # 6. The region-only pass agrees with the full plan's region layer.
    for region_only, full in zip(region_results, full_results):
        assert canonical_bytes([region_only])  # well-formed partial result
        region_a = region_only.region_trajectory
        region_b = full.region_trajectory
        assert region_a is not None and region_b is not None
        assert [r.place.place_id if r.place else None for r in region_a] == [
            r.place.place_id if r.place else None for r in region_b
        ]
    print("region-only plan reproduces the full plan's landuse join exactly")
    store.close()


if __name__ == "__main__":
    main()
