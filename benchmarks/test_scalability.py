"""Scalability checks backing the paper's complexity claims.

Section 4.1 states the region annotation runs in O(n log m) (n GPS records, m
regions, thanks to the R*-tree) and Section 4.2 states the global map matching
is linear in the number of GPS points because only neighbouring segments are
candidates.  These benchmarks measure how runtime grows with the input size
and assert the growth is compatible with those claims (sub-linear in the
number of regions, roughly linear in the number of points).
"""

from __future__ import annotations

import time

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.core.config import MapMatchingConfig
from repro.core.places import RegionOfInterest
from repro.core.points import SpatioTemporalPoint
from repro.geometry.primitives import BoundingBox
from repro.lines.map_matching import GlobalMapMatcher
from repro.regions.sources import RegionSource


def _landuse_like_source(cells_per_side: int, cell_size: float = 100.0) -> RegionSource:
    regions = []
    for col in range(cells_per_side):
        for row in range(cells_per_side):
            regions.append(
                RegionOfInterest(
                    place_id=f"c-{col}-{row}",
                    name=f"c-{col}-{row}",
                    category="1.2" if (col + row) % 2 == 0 else "1.3",
                    extent=BoundingBox(
                        col * cell_size,
                        row * cell_size,
                        (col + 1) * cell_size,
                        (row + 1) * cell_size,
                    ),
                )
            )
    return RegionSource(regions, name=f"grid-{cells_per_side}")


def test_scalability_region_lookup_vs_source_size(benchmark):
    """Per-point region lookup time should grow sub-linearly with the region count."""
    sizes = (10, 20, 40, 80)
    queries = [
        SpatioTemporalPoint(37.0 + i * 11.3 % 900, 53.0 + i * 7.7 % 900, float(i)) for i in range(400)
    ]

    def run():
        timings = []
        for cells_per_side in sizes:
            source = _landuse_like_source(cells_per_side)
            started = time.perf_counter()
            for query in queries:
                source.first_region_containing(query.position)
            elapsed = time.perf_counter() - started
            timings.append((cells_per_side ** 2, elapsed))
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [f"{regions:,}", f"{seconds * 1e3:.2f}", f"{seconds / len(queries) * 1e6:.1f}"]
        for regions, seconds in timings
    ]
    text = render_table(
        ["#regions", "total ms for 400 lookups", "us per lookup"],
        rows,
        title="Scalability - region lookup vs landuse source size (Algorithm 1, O(n log m))",
    )
    save_result(
        "scalability_region_lookup",
        text,
        data={
            "queries": len(queries),
            "series": [
                {"regions": regions, "total_seconds": seconds} for regions, seconds in timings
            ],
        },
    )

    smallest_regions, smallest_time = timings[0]
    largest_regions, largest_time = timings[-1]
    region_growth = largest_regions / smallest_regions
    time_growth = largest_time / max(smallest_time, 1e-9)
    # 64x more regions should cost far less than 64x more time.
    assert time_growth < region_growth / 2


def test_scalability_map_matching_vs_point_count(benchmark, world):
    """Map-matching time should grow roughly linearly with the number of points."""
    network = world.road_network()
    matcher = GlobalMapMatcher(network, MapMatchingConfig(candidate_radius=50.0))
    core_min = world.config.core_min

    def track_of(length: int):
        points = []
        for i in range(length):
            # Zig-zag along the street grid at 10 m per 1 s sample.
            x = core_min + (i * 10.0) % 3000.0
            y = core_min + ((i * 10.0) // 3000.0) * 400.0
            points.append(SpatioTemporalPoint(x, y, float(i)))
        return points

    lengths = (250, 500, 1000, 2000)

    def run():
        timings = []
        for length in lengths:
            points = track_of(length)
            started = time.perf_counter()
            matcher.match(points)
            timings.append((length, time.perf_counter() - started))
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [length, f"{seconds * 1e3:.1f}", f"{seconds / length * 1e6:.1f}"]
        for length, seconds in timings
    ]
    text = render_table(
        ["#GPS points", "total ms", "us per point"],
        rows,
        title="Scalability - global map matching vs trajectory length (Algorithm 2, O(n))",
    )
    save_result(
        "scalability_map_matching",
        text,
        data={
            "series": [
                {"points": length, "total_seconds": seconds} for length, seconds in timings
            ]
        },
    )

    shortest_length, shortest_time = timings[0]
    longest_length, longest_time = timings[-1]
    per_point_growth = (longest_time / longest_length) / max(shortest_time / shortest_length, 1e-9)
    # Per-point cost should stay roughly constant (allow 3x slack for noise).
    assert per_point_growth < 3.0
