"""Trajectory episodes: maximal sub-sequences satisfying a predicate.

The trajectory-computation layer segments every raw trajectory into *stop*
and *move* episodes (the two predicates of Section 3.1).  Each episode keeps a
reference to its parent trajectory, the index range of the GPS points it
covers, its time interval and the annotations the semantic layers attach to
it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.annotations import Annotation, AnnotationKind
from repro.core.errors import DataQualityError
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.geometry.primitives import BoundingBox, Point


class EpisodeKind(str, enum.Enum):
    """The two episode predicates used throughout the paper."""

    STOP = "stop"
    MOVE = "move"


@dataclass
class Episode:
    """A maximal trajectory sub-sequence of a single kind (stop or move).

    Attributes
    ----------
    kind:
        Stop or move.
    trajectory:
        The parent raw trajectory.
    start_index / end_index:
        Index range ``[start_index, end_index)`` of the covered GPS points.
    annotations:
        Annotations attached by the semantic layers (mutable list).
    """

    kind: EpisodeKind
    trajectory: RawTrajectory
    start_index: int
    end_index: int
    annotations: List[Annotation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.start_index < 0 or self.end_index > len(self.trajectory):
            raise DataQualityError(
                f"episode range [{self.start_index}, {self.end_index}) outside "
                f"trajectory of length {len(self.trajectory)}"
            )
        if self.start_index >= self.end_index:
            raise DataQualityError("an episode must cover at least one GPS point")

    # ----------------------------------------------------------- basic stats
    @property
    def points(self) -> Sequence[SpatioTemporalPoint]:
        """GPS points covered by the episode."""
        return self.trajectory.points[self.start_index : self.end_index]

    @property
    def positions(self) -> List[Point]:
        """Spatial components of the covered points."""
        return [point.position for point in self.points]

    def __len__(self) -> int:
        return self.end_index - self.start_index

    @property
    def time_in(self) -> float:
        """Entry time of the episode."""
        return self.points[0].t

    @property
    def time_out(self) -> float:
        """Exit time of the episode."""
        return self.points[-1].t

    @property
    def duration(self) -> float:
        """Episode duration in seconds."""
        return self.time_out - self.time_in

    @property
    def is_stop(self) -> bool:
        """True for stop episodes."""
        return self.kind is EpisodeKind.STOP

    @property
    def is_move(self) -> bool:
        """True for move episodes."""
        return self.kind is EpisodeKind.MOVE

    def center(self) -> Point:
        """Mean position of the covered points (used for stop spatial joins)."""
        points = self.positions
        return Point(
            sum(p.x for p in points) / len(points),
            sum(p.y for p in points) / len(points),
        )

    def bounding_box(self, padding: float = 0.0) -> BoundingBox:
        """Spatial bounding rectangle of the episode."""
        return BoundingBox.from_points(self.positions, padding=padding)

    def path_length(self) -> float:
        """Travelled distance within the episode."""
        total = 0.0
        points = self.points
        for previous, current in zip(points, points[1:]):
            total += previous.distance_to(current)
        return total

    def average_speed(self) -> float:
        """Mean speed over the episode (path length / duration)."""
        if self.duration <= 0:
            return 0.0
        return self.path_length() / self.duration

    # ----------------------------------------------------------- annotations
    def add_annotation(self, annotation: Annotation) -> None:
        """Attach an annotation to the episode."""
        self.annotations.append(annotation)

    def annotations_of_kind(self, kind: AnnotationKind) -> List[Annotation]:
        """All annotations of the given kind."""
        return [annotation for annotation in self.annotations if annotation.kind is kind]

    def first_annotation_of_kind(self, kind: AnnotationKind) -> Optional[Annotation]:
        """First annotation of the given kind, or None."""
        matching = self.annotations_of_kind(kind)
        return matching[0] if matching else None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Episode({self.kind.value}, traj={self.trajectory.trajectory_id!r}, "
            f"points={len(self)}, duration={self.duration:.0f}s)"
        )


def validate_episode_partition(trajectory: RawTrajectory, episodes: Sequence[Episode]) -> None:
    """Check that ``episodes`` form a partition of ``trajectory``.

    Raises :class:`DataQualityError` when the episodes are not contiguous, do
    not start at the first point or do not end at the last point.  Used by the
    test-suite and by the pipeline in strict mode.
    """
    if not episodes:
        raise DataQualityError("an episode partition must contain at least one episode")
    ordered = sorted(episodes, key=lambda episode: episode.start_index)
    if ordered[0].start_index != 0:
        raise DataQualityError("episode partition must start at the first GPS point")
    if ordered[-1].end_index != len(trajectory):
        raise DataQualityError("episode partition must end at the last GPS point")
    for previous, current in zip(ordered, ordered[1:]):
        if previous.end_index != current.start_index:
            raise DataQualityError(
                "episodes must be contiguous: "
                f"[{previous.start_index}, {previous.end_index}) then "
                f"[{current.start_index}, {current.end_index})"
            )


def episode_kind_counts(episodes: Sequence[Episode]) -> Tuple[int, int]:
    """Return ``(stop_count, move_count)`` for a collection of episodes."""
    stops = sum(1 for episode in episodes if episode.is_stop)
    moves = sum(1 for episode in episodes if episode.is_move)
    return stops, moves
