"""Unit tests for configuration objects and their validation."""

from __future__ import annotations

import pytest

from repro.core.config import (
    CleaningConfig,
    ParallelConfig,
    ServiceConfig,
    MapMatchingConfig,
    PipelineConfig,
    PointAnnotationConfig,
    RegionAnnotationConfig,
    StopMoveConfig,
    TrajectoryIdentificationConfig,
    TransportModeConfig,
)
from repro.core.errors import ConfigurationError


class TestCleaningConfig:
    def test_defaults_are_valid(self):
        config = CleaningConfig()
        assert config.max_speed > 0

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            CleaningConfig(max_speed=0)
        with pytest.raises(ConfigurationError):
            CleaningConfig(smoothing_window=0)
        with pytest.raises(ConfigurationError):
            CleaningConfig(smoothing_method="spline")


class TestIdentificationConfig:
    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            TrajectoryIdentificationConfig(max_time_gap=0)
        with pytest.raises(ConfigurationError):
            TrajectoryIdentificationConfig(min_points=0)


class TestStopMoveConfig:
    def test_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            StopMoveConfig(policy="magic")

    def test_invalid_thresholds(self):
        with pytest.raises(ConfigurationError):
            StopMoveConfig(speed_threshold=0)
        with pytest.raises(ConfigurationError):
            StopMoveConfig(min_stop_duration=-1)
        with pytest.raises(ConfigurationError):
            StopMoveConfig(density_radius=0)
        with pytest.raises(ConfigurationError):
            StopMoveConfig(min_move_points=0)


class TestRegionConfig:
    def test_unknown_predicate(self):
        with pytest.raises(ConfigurationError):
            RegionAnnotationConfig(join_predicate="touches")


class TestMapMatchingConfig:
    def test_derived_radii(self):
        config = MapMatchingConfig(view_radius=2.0, kernel_width_factor=0.5, candidate_radius=50.0)
        assert config.context_radius == pytest.approx(100.0)
        assert config.kernel_width == pytest.approx(50.0)

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            MapMatchingConfig(view_radius=0)
        with pytest.raises(ConfigurationError):
            MapMatchingConfig(kernel_width_factor=0)
        with pytest.raises(ConfigurationError):
            MapMatchingConfig(candidate_radius=0)
        with pytest.raises(ConfigurationError):
            MapMatchingConfig(max_candidates=0)
        with pytest.raises(ConfigurationError):
            MapMatchingConfig(distance_metric="manhattan")


class TestTransportConfig:
    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            TransportModeConfig(walk_speed_max=8.0, bicycle_speed_max=7.0)
        with pytest.raises(ConfigurationError):
            TransportModeConfig(bus_acceleration_min=-1)


class TestPointConfig:
    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            PointAnnotationConfig(grid_cell_size=0)
        with pytest.raises(ConfigurationError):
            PointAnnotationConfig(neighbor_radius=0)
        with pytest.raises(ConfigurationError):
            PointAnnotationConfig(default_sigma=0)
        with pytest.raises(ConfigurationError):
            PointAnnotationConfig(self_transition=1.0)
        with pytest.raises(ConfigurationError):
            PointAnnotationConfig(min_probability=0)


class TestPipelineConfig:
    def test_default_bundle(self):
        config = PipelineConfig()
        assert config.stop_move.policy == "velocity"

    def test_vehicle_profile(self):
        config = PipelineConfig.for_vehicles()
        assert config.stop_move.policy == "hybrid"
        assert config.map_matching.candidate_radius == pytest.approx(40.0)

    def test_people_profile(self):
        config = PipelineConfig.for_people()
        assert config.cleaning.max_speed < CleaningConfig().max_speed
        assert config.identification.max_time_gap == pytest.approx(3600.0)
        assert config.stop_move.policy == "hybrid"

    def test_configs_are_immutable(self):
        config = PipelineConfig()
        with pytest.raises(AttributeError):
            config.stop_move = StopMoveConfig()  # type: ignore[misc]


class TestParallelConfig:
    def test_defaults_are_valid(self):
        config = ParallelConfig()
        assert config.dispatch == "balanced"
        assert config.shared_memory == "auto"
        assert config.resolved_workers >= 1

    def test_zero_workers_resolve_to_effective_cores(self):
        from repro.core.cpu import effective_cpu_count

        config = ParallelConfig(workers=0)
        assert config.resolved_workers == effective_cpu_count()
        assert ParallelConfig(workers=3).resolved_workers == 3

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            ParallelConfig(workers=-1)
        with pytest.raises(ConfigurationError):
            ParallelConfig(shards_per_worker=0)
        with pytest.raises(ConfigurationError):
            ParallelConfig(executor="threads")
        with pytest.raises(ConfigurationError):
            ParallelConfig(dispatch="greedy")
        with pytest.raises(ConfigurationError):
            ParallelConfig(shared_memory="maybe")


class TestServiceConfig:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.queue_depth >= 1
        assert config.resolved_shards >= 1

    def test_zero_shards_resolve_to_effective_cores(self):
        from repro.core.cpu import effective_cpu_count

        assert ServiceConfig(shards=0).resolved_shards == effective_cpu_count()
        assert ServiceConfig(shards=5).resolved_shards == 5

    def test_invalid_values(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(shards=-1)
        with pytest.raises(ConfigurationError):
            ServiceConfig(queue_depth=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(max_batch=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(session_budget=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(ring_replicas=0)

    def test_unknown_transport_is_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(transport="fiber")

    def test_process_transport_rejects_gross_shard_oversubscription(self, monkeypatch):
        import repro.core.cpu as cpu

        monkeypatch.setattr(cpu, "effective_cpu_count", lambda: 2)
        # 4x the cores is the documented ceiling; one past it is rejected.
        assert ServiceConfig(transport="process", shards=8).shards == 8
        with pytest.raises(ConfigurationError):
            ServiceConfig(transport="process", shards=9)
        # shards=0 defers to the core count, which can never oversubscribe.
        assert ServiceConfig(transport="process", shards=0).resolved_shards == 2

    def test_explicit_transport_resolves_to_itself(self):
        assert ServiceConfig(transport="thread").resolved_transport == "thread"

    def test_auto_transport_follows_effective_cores(self, monkeypatch):
        import repro.core.cpu as cpu

        monkeypatch.setattr(cpu, "effective_cpu_count", lambda: 1)
        assert ServiceConfig(transport="auto").resolved_transport == "thread"
        monkeypatch.setattr(cpu, "effective_cpu_count", lambda: 8)
        assert ServiceConfig(transport="auto").resolved_transport == "process"
        assert ServiceConfig(transport="process").resolved_transport == "process"


class TestConfigDictConstruction:
    def test_to_dict_from_dict_round_trip(self):
        config = PipelineConfig.for_vehicles()
        rendered = config.to_dict()
        assert rendered["stop_move"]["policy"] == "hybrid"
        assert PipelineConfig.from_dict(rendered) == config

    def test_partial_data_keeps_base_defaults(self):
        config = PipelineConfig.from_dict({"stop_move": {"speed_threshold": 2.5}})
        assert config.stop_move.speed_threshold == 2.5
        assert config.stop_move.policy == PipelineConfig().stop_move.policy
        assert config.cleaning == PipelineConfig().cleaning

    def test_dotted_overrides(self):
        config = PipelineConfig.from_dict(
            overrides={"parallel.dispatch": "stealing", "service.shards": 3}
        )
        assert config.parallel.dispatch == "stealing"
        assert config.service.shards == 3

    def test_with_overrides_returns_a_new_validated_copy(self):
        base = PipelineConfig.for_people()
        derived = base.with_overrides({"streaming.micro_batch_size": 9})
        assert derived.streaming.micro_batch_size == 9
        assert base.streaming.micro_batch_size == PipelineConfig().streaming.micro_batch_size
        assert derived.cleaning == base.cleaning

    def test_string_values_are_coerced_to_field_types(self):
        config = PipelineConfig.from_dict(
            overrides={
                "service.queue_depth": "128",
                "streaming.apply_cleaning": "false",
                "stop_move.speed_threshold": "1.25",
            }
        )
        assert config.service.queue_depth == 128
        assert config.streaming.apply_cleaning is False
        assert config.stop_move.speed_threshold == pytest.approx(1.25)

    def test_unknown_section_field_and_path_raise(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict({"teleport": {}})
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict({"stop_move": {"warp_speed": 1}})
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict(overrides={"speed_threshold": 1.0})
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict(overrides={"stop_move.speed_threshold": "fast"})

    def test_transport_round_trips_through_dict_and_overrides(self, monkeypatch):
        import repro.core.cpu as cpu

        monkeypatch.setattr(cpu, "effective_cpu_count", lambda: 8)
        config = PipelineConfig.from_dict(overrides={"service.transport": "process"})
        assert config.service.transport == "process"
        assert PipelineConfig.from_dict(config.to_dict()) == config
        threaded = config.with_overrides({"service.transport": "thread"})
        assert threaded.service.transport == "thread"
        assert config.service.transport == "process"

    def test_values_still_pass_dataclass_validation(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict({"service": {"queue_depth": 0}})
        with pytest.raises(ConfigurationError):
            PipelineConfig.from_dict(overrides={"parallel.executor": "threads"})
