"""Raw trajectory identification: splitting a GPS stream into trajectories.

The GPS stream of a moving object is split into raw trajectories wherever a
large temporal or spatial separation occurs (signal loss, battery outage,
device switched off overnight).  These are exactly the "temporal separations"
and "spatial separations" computing policies of Figure 2.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.config import TrajectoryIdentificationConfig
from repro.core.points import RawTrajectory, SpatioTemporalPoint


class TrajectoryIdentifier:
    """Splits a cleaned GPS stream into raw trajectories (Definition 1)."""

    def __init__(self, config: TrajectoryIdentificationConfig = TrajectoryIdentificationConfig()):
        self._config = config

    @property
    def config(self) -> TrajectoryIdentificationConfig:
        """The active identification configuration."""
        return self._config

    def split(
        self,
        points: Sequence[SpatioTemporalPoint],
        object_id: str = "unknown",
        id_prefix: str = "",
    ) -> List[RawTrajectory]:
        """Split ``points`` into trajectories at temporal or spatial gaps.

        A new trajectory starts whenever the time gap to the previous fix
        exceeds ``max_time_gap`` or the spatial jump exceeds
        ``max_distance_gap``.  Resulting fragments with fewer than
        ``min_points`` fixes are discarded.
        """
        if not points:
            return []
        segments: List[List[SpatioTemporalPoint]] = [[points[0]]]
        for previous, current in zip(points, points[1:]):
            time_gap = current.t - previous.t
            distance_gap = previous.distance_to(current)
            if time_gap > self._config.max_time_gap or distance_gap > self._config.max_distance_gap:
                segments.append([current])
            else:
                segments[-1].append(current)

        trajectories: List[RawTrajectory] = []
        for index, segment in enumerate(segments):
            if len(segment) < self._config.min_points:
                continue
            prefix = id_prefix if id_prefix else object_id
            trajectories.append(
                RawTrajectory(
                    segment,
                    object_id=object_id,
                    trajectory_id=f"{prefix}-t{index}",
                )
            )
        return trajectories

    def split_daily(
        self,
        points: Sequence[SpatioTemporalPoint],
        object_id: str = "unknown",
        day_length: float = 86_400.0,
    ) -> List[RawTrajectory]:
        """Split a stream into daily trajectories, then at gaps within each day.

        The paper reports "daily trajectories" for both the taxi and the
        smartphone datasets: the stream is first cut at midnight boundaries,
        then each day is further split at large separations.
        """
        if not points:
            return []
        by_day: List[List[SpatioTemporalPoint]] = []
        current_day = int(points[0].t // day_length)
        bucket: List[SpatioTemporalPoint] = []
        for point in points:
            day = int(point.t // day_length)
            if day != current_day and bucket:
                by_day.append(bucket)
                bucket = []
                current_day = day
            bucket.append(point)
        if bucket:
            by_day.append(bucket)

        trajectories: List[RawTrajectory] = []
        for day_index, day_points in enumerate(by_day):
            daily = self.split(
                day_points,
                object_id=object_id,
                id_prefix=f"{object_id}-d{day_index}",
            )
            trajectories.extend(daily)
        return trajectories
