"""Export of raw and semantic trajectories to GeoJSON and KML.

The paper's companion Web Interface ([31]) serves trajectory visualisations as
KML files rendered by a Google Earth plugin.  This package provides the
equivalent serialisation: raw trajectories, episodes and structured semantic
trajectories can be exported as GeoJSON feature collections (the modern
exchange format) or as KML documents, ready to be dropped into any map viewer.
"""

from repro.export.geojson import (
    episodes_to_geojson,
    raw_trajectory_to_geojson,
    structured_trajectory_to_geojson,
)
from repro.export.kml import structured_trajectory_to_kml, trajectories_to_kml

__all__ = [
    "raw_trajectory_to_geojson",
    "episodes_to_geojson",
    "structured_trajectory_to_geojson",
    "structured_trajectory_to_kml",
    "trajectories_to_kml",
]
