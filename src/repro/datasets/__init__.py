"""Synthetic datasets standing in for the paper's proprietary data sources.

The paper evaluates SeMiTri on GPS datasets (Lausanne taxis, Milan private
cars, Nokia smartphone traces, Krumm's Seattle drive) and geographic sources
(Swisstopo landuse, Milan POIs, OpenStreetMap) that are not redistributable.
This package generates deterministic synthetic equivalents that preserve the
statistical shape each experiment depends on; see DESIGN.md for the
substitution rationale.
"""

from repro.datasets.world import SyntheticWorld, WorldConfig
from repro.datasets.vehicles import PrivateCarSimulator, TaxiFleetSimulator
from repro.datasets.people import PersonProfile, PersonSimulator
from repro.datasets.seattle import GroundTruthDrive, GroundTruthDriveGenerator

__all__ = [
    "SyntheticWorld",
    "WorldConfig",
    "TaxiFleetSimulator",
    "PrivateCarSimulator",
    "PersonProfile",
    "PersonSimulator",
    "GroundTruthDrive",
    "GroundTruthDriveGenerator",
]
