"""Read-only, array-backed batch spatial index compiled from a scalar index.

The pure-Python :class:`~repro.index.rtree.RTree` and
:class:`~repro.index.grid_index.GridIndex` answer one query at a time, paying
~10 µs of node-hopping and attribute-access overhead per point.  For the
static geographic sources (regions, road segments, POIs) every query after
``freeze()`` hits an immutable structure, so the index can be *compiled once*
into contiguous numpy arrays and queried for whole coordinate batches:

* :meth:`FlatSpatialIndex.from_rtree` flattens the (STR-bulk-loaded or
  insertion-built, but height-balanced either way) R-tree into an **implicit
  layout**: one contiguous bounding-box array per tree level plus
  ``child_start``/``child_end`` slices into the next level, ending in the leaf
  entry arrays.  Batch queries traverse the levels with vectorized
  ``(query, node)`` frontier expansion instead of per-query recursion.
* :meth:`FlatSpatialIndex.from_grid` flattens the hash grid into coordinate
  columns sorted by ``(cell_x, cell_y, insertion order)``; batch queries are
  chunked columnar scans (for the grid's point payloads a masked scan beats
  per-cell bucket walks once queries are batched).

All batch queries return CSR-style ``(offsets, indices[, distances])``
triples: query ``i``'s results are ``indices[offsets[i]:offsets[i + 1]]``,
indexing into :attr:`payloads`.

Parity contract
---------------
Results are **provably identical** — same sets, same order, bit-identical
distances — to the scalar index the flat index was compiled from:

* entries are laid out in the scalar index's structural row order (R-tree
  DFS leaf order / grid ``(cell, insertion)`` order), and every batch query
  emits matches in the scalar contract's ``(distance, row)`` (or plain row)
  order documented in :mod:`repro.index.rtree` and
  :mod:`repro.index.grid_index`;
* distances use only IEEE ``+ - * /``, ``sqrt``, ``min``/``max`` and
  comparisons — the same operation sequences as the scalar code
  (:meth:`Point.distance_to`, :meth:`BoundingBox.min_distance_to_point`,
  :func:`repro.geometry.distance.point_segment_distance`), which numpy's
  elementwise loops round identically.

``tests/test_index_flat_parity.py`` exercises the contract on random point
clouds and degenerate inputs; ``tests/test_index_ordering.py`` pins the
tie-break behaviour.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.primitives import Point, Segment
from repro.index.grid_index import GridIndex
from repro.index.rtree import RTree, _Node

__all__ = ["FlatSpatialIndex", "BatchQueryResult"]

#: ``(offsets, indices)`` — query ``i`` matched rows ``indices[offsets[i]:offsets[i+1]]``.
BatchQueryResult = Tuple[np.ndarray, np.ndarray]

#: Upper bound on the ``query x entry`` pairs materialised per brute-force
#: chunk; keeps the distance matrices cache-friendly for large batches.
_CHUNK_PAIR_BUDGET = 1 << 21


class _Level:
    """One tree level: node boxes plus child slices into the next level."""

    __slots__ = ("min_xs", "min_ys", "max_xs", "max_ys", "child_starts", "child_ends")

    def __init__(
        self,
        boxes: Sequence[Tuple[float, float, float, float]],
        counts: Sequence[int],
    ):
        box_array = np.asarray(boxes, dtype=np.float64).reshape(len(boxes), 4)
        self.min_xs = np.ascontiguousarray(box_array[:, 0])
        self.min_ys = np.ascontiguousarray(box_array[:, 1])
        self.max_xs = np.ascontiguousarray(box_array[:, 2])
        self.max_ys = np.ascontiguousarray(box_array[:, 3])
        ends = np.cumsum(np.asarray(counts, dtype=np.intp))
        self.child_ends = ends
        self.child_starts = ends - np.asarray(counts, dtype=np.intp)


def _empty_csr(query_count: int, with_distances: bool):
    offsets = np.zeros(query_count + 1, dtype=np.intp)
    indices = np.empty(0, dtype=np.intp)
    if with_distances:
        return offsets, indices, np.empty(0, dtype=np.float64)
    return offsets, indices


def _expand_pairs(
    q: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand surviving ``(query, node)`` pairs to their children.

    ``starts``/``ends`` are each pair's child slice in the next level.  The
    output keeps the ``(query, child)`` pairs lexicographically sorted
    because child ranges ascend with node index within each query.
    """
    counts = ends - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
    next_q = np.repeat(q, counts)
    out_starts = np.cumsum(counts) - counts
    children = np.arange(total, dtype=np.intp) - np.repeat(out_starts, counts) + np.repeat(
        starts, counts
    )
    return next_q, children


class FlatSpatialIndex:
    """Array-compiled read-only spatial index with CSR batch queries.

    Build one with :meth:`from_rtree` or :meth:`from_grid`; the source index
    is frozen as part of compilation, so the arrays can never go stale.  The
    ``geometry`` kind fixes how entry distances are refined:

    ``"bbox"``
        minimum distance to the entry's bounding box (the R-tree default);
    ``"point"``
        distance to the entry's point (grid payloads, degenerate boxes);
    ``"segment"``
        Equation 1 point-segment distance to the entry's segment (road
        networks; requires ``segment_of`` at compile time).
    """

    def __init__(
        self,
        levels: List[_Level],
        entry_boxes: np.ndarray,
        payloads: List[Any],
        geometry: str,
        segments: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None,
        nearest_max_radius: Optional[float] = None,
    ):
        if geometry not in ("bbox", "point", "segment"):
            raise ValueError(f"unknown flat-index geometry {geometry!r}")
        if geometry == "segment" and segments is None:
            raise ValueError("segment geometry requires endpoint arrays")
        self._levels = levels
        boxes = np.asarray(entry_boxes, dtype=np.float64).reshape(len(payloads), 4)
        self._min_xs = np.ascontiguousarray(boxes[:, 0])
        self._min_ys = np.ascontiguousarray(boxes[:, 1])
        self._max_xs = np.ascontiguousarray(boxes[:, 2])
        self._max_ys = np.ascontiguousarray(boxes[:, 3])
        self._payloads = payloads
        self._geometry = geometry
        self._segments = segments
        self._nearest_max_radius = nearest_max_radius

    # ------------------------------------------------------------ compilation
    @classmethod
    def from_rtree(
        cls,
        tree: RTree,
        segment_of: Optional[Callable[[Any], Segment]] = None,
    ) -> "FlatSpatialIndex":
        """Compile a (frozen) R-tree; freezes ``tree`` if it is not already.

        Entries land in the tree's structural row order (DFS leaf order), the
        order every scalar query's results follow.  When ``segment_of`` maps a
        payload to its :class:`Segment`, distance queries refine by exact
        point-segment distance exactly like the scalar tree's ``distance_fn``
        callbacks in :class:`~repro.lines.road_network.RoadNetwork`.
        """
        tree.freeze()
        root = tree._root  # package-internal: the compiler walks the node structure
        entries: List[Any] = []
        entry_boxes: List[Tuple[float, float, float, float]] = []
        levels: List[_Level] = []
        if len(tree) > 0:
            nodes: List[_Node] = [root]
            while True:
                is_leaf_level = nodes[0].is_leaf
                boxes: List[Tuple[float, float, float, float]] = []
                counts: List[int] = []
                for node in nodes:
                    assert node.is_leaf == is_leaf_level, "R-tree must be height-balanced"
                    assert node.box is not None
                    boxes.append((node.box.min_x, node.box.min_y, node.box.max_x, node.box.max_y))
                    counts.append(len(node.entries) if is_leaf_level else len(node.children))
                levels.append(_Level(boxes, counts))
                if is_leaf_level:
                    for node in nodes:
                        for entry in node.entries:
                            box = entry.box
                            entry_boxes.append((box.min_x, box.min_y, box.max_x, box.max_y))
                            entries.append(entry.item)
                    break
                nodes = [child for node in nodes for child in node.children]
        segments = None
        geometry = "bbox"
        if segment_of is not None:
            geometry = "segment"
            count = len(entries)
            segments = (
                np.fromiter((segment_of(item).start.x for item in entries), np.float64, count),
                np.fromiter((segment_of(item).start.y for item in entries), np.float64, count),
                np.fromiter((segment_of(item).end.x for item in entries), np.float64, count),
                np.fromiter((segment_of(item).end.y for item in entries), np.float64, count),
            )
        return cls(levels, np.asarray(entry_boxes, dtype=np.float64), entries, geometry, segments)

    @classmethod
    def from_grid(cls, grid: GridIndex) -> "FlatSpatialIndex":
        """Compile a (frozen) hash grid; freezes ``grid`` if it is not already.

        Rows follow the grid's structural order — occupied cells sorted
        lexicographically, buckets in insertion order — which is the order
        :meth:`GridIndex.query_box` visits them for any query rectangle.  The
        ``nearest`` radius cap of the scalar ring-doubling search is recorded
        so batch and scalar nearest queries agree even on its (pathological)
        boundary.
        """
        grid.freeze()
        payloads: List[Any] = []
        entry_boxes: List[Tuple[float, float, float, float]] = []
        # package-internal walk, cells in lexicographic (cell_x, cell_y) order
        for _cell, bucket in sorted(grid._cells.items(), key=lambda entry: entry[0]):
            for point, item in bucket:
                entry_boxes.append((point.x, point.y, point.x, point.y))
                payloads.append(item)
        # The scalar GridIndex.nearest doubles the scan radius starting at
        # cell_size and gives up after the doubled radius exceeds
        # cell_size * 1e6; the largest radius it actually queries is the cap
        # below (same float expressions, so the comparison is bit-identical).
        cap = grid.cell_size
        while cap * 2.0 <= grid.cell_size * 1e6:
            cap *= 2.0
        return cls(
            levels=[],
            entry_boxes=np.asarray(entry_boxes, dtype=np.float64),
            payloads=payloads,
            geometry="point",
            nearest_max_radius=cap,
        )

    # -------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self._payloads)

    @property
    def payloads(self) -> List[Any]:
        """Entry payloads, indexed by the rows the batch queries return."""
        return self._payloads

    @property
    def geometry(self) -> str:
        """Distance geometry: ``"bbox"``, ``"point"`` or ``"segment"``."""
        return self._geometry

    @property
    def level_count(self) -> int:
        """Number of compiled tree levels (0 for columnar grid layouts)."""
        return len(self._levels)

    def array_blocks(self) -> "OrderedDict[str, np.ndarray]":
        """Every contiguous numpy block of the compiled index, by stable name.

        The enumeration :mod:`repro.parallel.shared` exports into
        ``multiprocessing.shared_memory``: per-level bbox and child-slice
        columns, the entry-box columns and (for segment geometry) the endpoint
        columns.  Names are deterministic for a given compilation, so a
        worker-side attach maps blocks back by name; payload objects are *not*
        included — they ride the ordinary pickle.
        """
        blocks: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for depth, level in enumerate(self._levels):
            for attr in _Level.__slots__:
                blocks[f"levels[{depth}].{attr}"] = getattr(level, attr)
        blocks["entries.min_xs"] = self._min_xs
        blocks["entries.min_ys"] = self._min_ys
        blocks["entries.max_xs"] = self._max_xs
        blocks["entries.max_ys"] = self._max_ys
        if self._segments is not None:
            for name, column in zip(
                ("start_xs", "start_ys", "end_xs", "end_ys"), self._segments
            ):
                blocks[f"segments.{name}"] = column
        return blocks

    # ---------------------------------------------------------- batch queries
    def query_boxes_batch(
        self,
        min_xs: np.ndarray,
        min_ys: np.ndarray,
        max_xs: np.ndarray,
        max_ys: np.ndarray,
    ) -> BatchQueryResult:
        """Rows whose entry box intersects each query box, in row order.

        Mirrors :meth:`RTree.search` (closed-interval intersection) per query
        box; for grid layouts it mirrors :meth:`GridIndex.query_box` (a point
        intersects a degenerate box iff the box contains it).
        """
        qmin_x = np.asarray(min_xs, dtype=np.float64)
        qmin_y = np.asarray(min_ys, dtype=np.float64)
        qmax_x = np.asarray(max_xs, dtype=np.float64)
        qmax_y = np.asarray(max_ys, dtype=np.float64)
        q, rows = self._candidate_pairs(qmin_x, qmin_y, qmax_x, qmax_y)
        return self._to_csr(len(qmin_x), q, rows)

    def query_points_batch(self, xs: np.ndarray, ys: np.ndarray) -> BatchQueryResult:
        """Rows whose entry box contains each query point (degenerate boxes)."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        return self.query_boxes_batch(xs, ys, xs, ys)

    def within_distance_batch(
        self, xs: np.ndarray, ys: np.ndarray, radius: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Rows within ``radius`` of each query point, in ``(distance, row)`` order.

        Candidate selection and refinement mirror the scalar
        :meth:`RTree.within_distance` / :meth:`GridIndex.query_radius`: a
        box search expanded by ``radius`` followed by an exact distance filter
        (``<= radius``) and a stable sort by distance, so ties keep row order.
        Returns ``(offsets, indices, distances)``.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        query_count = len(xs)
        q, rows = self._candidate_pairs(xs - radius, ys - radius, xs + radius, ys + radius)
        if len(q) == 0:
            return _empty_csr(query_count, with_distances=True)
        distances = self._pair_distances(xs[q], ys[q], rows)
        keep = distances <= radius
        q, rows, distances = q[keep], rows[keep], distances[keep]
        # Stable per-query sort by distance: pairs arrive row-ascending per
        # query, so using the row as the final key reproduces the scalar
        # stable sort's tie order exactly.
        order = np.lexsort((rows, distances, q))
        q, rows, distances = q[order], rows[order], distances[order]
        offsets = self._offsets_of(query_count, q)
        return offsets, rows, distances

    def nearest_batch(
        self, xs: np.ndarray, ys: np.ndarray, count: int = 1
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``count`` nearest rows per query point, in ``(distance, row)`` order.

        Matches the scalar contracts: :meth:`RTree.nearest` on a frozen tree
        (best-first with the row tie-break) and :meth:`GridIndex.nearest`
        (ring-doubling, whose radius cap is honoured so even its truncation
        behaviour is reproduced).  Returns ``(offsets, indices, distances)``.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        query_count = len(xs)
        size = len(self._payloads)
        if count <= 0 or size == 0 or query_count == 0:
            return _empty_csr(query_count, with_distances=True)
        keep = min(count, size)
        out_q: List[np.ndarray] = []
        out_rows: List[np.ndarray] = []
        out_distances: List[np.ndarray] = []
        chunk = max(1, _CHUNK_PAIR_BUDGET // size)
        for start in range(0, query_count, chunk):
            stop = min(query_count, start + chunk)
            matrix = self._distance_matrix(xs[start:stop], ys[start:stop])
            if self._nearest_max_radius is not None:
                matrix = np.where(matrix <= self._nearest_max_radius, matrix, np.inf)
            # Select everything up to the per-query kth distance (partition is
            # O(n) versus a full sort), *including* boundary ties, then order
            # the small survivor set by (distance, row) and truncate — the
            # lexsort guarantees boundary ties are cut in row order, which is
            # the scalar (distance, row) contract.
            if keep < size:
                kth = np.partition(matrix, keep - 1, axis=1)[:, keep - 1]
                mask = matrix <= kth[:, None]
            else:
                mask = np.ones_like(matrix, dtype=bool)
            np.logical_and(mask, np.isfinite(matrix), out=mask)
            q_local, rows = np.nonzero(mask)
            picked = matrix[q_local, rows]
            order = np.lexsort((rows, picked, q_local))
            q_local, rows, picked = q_local[order], rows[order], picked[order]
            counts = np.bincount(q_local, minlength=stop - start)
            group_starts = np.cumsum(counts) - counts
            within_group = np.arange(len(q_local)) - np.repeat(group_starts, counts)
            trim = within_group < keep
            out_q.append(q_local[trim].astype(np.intp, copy=False) + start)
            out_rows.append(rows[trim].astype(np.intp, copy=False))
            out_distances.append(picked[trim])
        q = np.concatenate(out_q)
        rows = np.concatenate(out_rows)
        distances = np.concatenate(out_distances)
        offsets = self._offsets_of(query_count, q)
        return offsets, rows, distances

    # -------------------------------------------------------------- internals
    def _to_csr(self, query_count: int, q: np.ndarray, rows: np.ndarray) -> BatchQueryResult:
        if len(q) == 0:
            return _empty_csr(query_count, with_distances=False)
        return self._offsets_of(query_count, q), rows

    @staticmethod
    def _offsets_of(query_count: int, q: np.ndarray) -> np.ndarray:
        counts = np.bincount(q, minlength=query_count)
        offsets = np.zeros(query_count + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        return offsets

    def _candidate_pairs(
        self,
        qmin_x: np.ndarray,
        qmin_y: np.ndarray,
        qmax_x: np.ndarray,
        qmax_y: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Lexicographically sorted ``(query, row)`` pairs with intersecting boxes."""
        query_count = len(qmin_x)
        size = len(self._payloads)
        if query_count == 0 or size == 0:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        if not self._levels:
            return self._scan_pairs(qmin_x, qmin_y, qmax_x, qmax_y)
        q = np.arange(query_count, dtype=np.intp)
        nodes = np.zeros(query_count, dtype=np.intp)
        for level in self._levels:
            hit = (
                (qmin_x[q] <= level.max_xs[nodes])
                & (qmax_x[q] >= level.min_xs[nodes])
                & (qmin_y[q] <= level.max_ys[nodes])
                & (qmax_y[q] >= level.min_ys[nodes])
            )
            q, nodes = q[hit], nodes[hit]
            if len(q) == 0:
                return q, nodes
            q, nodes = _expand_pairs(q, level.child_starts[nodes], level.child_ends[nodes])
        rows = nodes  # after the leaf level, children indices are entry rows
        hit = (
            (qmin_x[q] <= self._max_xs[rows])
            & (qmax_x[q] >= self._min_xs[rows])
            & (qmin_y[q] <= self._max_ys[rows])
            & (qmax_y[q] >= self._min_ys[rows])
        )
        return q[hit], rows[hit]

    def _scan_pairs(
        self,
        qmin_x: np.ndarray,
        qmin_y: np.ndarray,
        qmax_x: np.ndarray,
        qmax_y: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Chunked columnar scan for layouts without tree levels (grids)."""
        query_count = len(qmin_x)
        size = len(self._payloads)
        chunk = max(1, _CHUNK_PAIR_BUDGET // size)
        out_q: List[np.ndarray] = []
        out_rows: List[np.ndarray] = []
        for start in range(0, query_count, chunk):
            stop = min(query_count, start + chunk)
            mask = (
                (qmin_x[start:stop, None] <= self._max_xs[None, :])
                & (qmax_x[start:stop, None] >= self._min_xs[None, :])
                & (qmin_y[start:stop, None] <= self._max_ys[None, :])
                & (qmax_y[start:stop, None] >= self._min_ys[None, :])
            )
            q_local, rows = np.nonzero(mask)  # row-major: sorted by (query, row)
            out_q.append(q_local.astype(np.intp, copy=False) + start)
            out_rows.append(rows.astype(np.intp, copy=False))
        return np.concatenate(out_q), np.concatenate(out_rows)

    def _pair_distances(self, pxs: np.ndarray, pys: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Refined distance of each ``(query point, entry row)`` pair.

        Replicates the scalar operation sequences exactly (see the module
        docstring), so the values are bit-identical to the per-point code.
        """
        if self._geometry == "segment":
            assert self._segments is not None
            axs, ays, bxs, bys = self._segments
            from repro.geometry.vectorized import point_segment_distances

            return point_segment_distances(
                pxs, pys, axs[rows], ays[rows], bxs[rows], bys[rows]
            )
        if self._geometry == "point":
            dx = self._min_xs[rows] - pxs
            dy = self._min_ys[rows] - pys
            return np.sqrt(dx * dx + dy * dy)
        dx = np.maximum(np.maximum(self._min_xs[rows] - pxs, 0.0), pxs - self._max_xs[rows])
        dy = np.maximum(np.maximum(self._min_ys[rows] - pys, 0.0), pys - self._max_ys[rows])
        return np.sqrt(dx * dx + dy * dy)

    def _distance_matrix(self, pxs: np.ndarray, pys: np.ndarray) -> np.ndarray:
        """Dense ``(query, entry)`` distance matrix for one chunk of queries."""
        px = pxs[:, None]
        py = pys[:, None]
        if self._geometry == "segment":
            assert self._segments is not None
            axs, ays, bxs, bys = self._segments
            from repro.geometry.vectorized import point_segment_distances

            return point_segment_distances(
                px, py, axs[None, :], ays[None, :], bxs[None, :], bys[None, :]
            )
        if self._geometry == "point":
            dx = self._min_xs[None, :] - px
            dy = self._min_ys[None, :] - py
            return np.sqrt(dx * dx + dy * dy)
        dx = np.maximum(np.maximum(self._min_xs[None, :] - px, 0.0), px - self._max_xs[None, :])
        dy = np.maximum(np.maximum(self._min_ys[None, :] - py, 0.0), py - self._max_ys[None, :])
        return np.sqrt(dx * dx + dy * dy)

    # ------------------------------------------- payload-level conveniences
    @staticmethod
    def _point_columns(points: Sequence[Point]) -> Tuple[np.ndarray, np.ndarray]:
        count = len(points)
        xs = np.fromiter((p.x for p in points), dtype=np.float64, count=count)
        ys = np.fromiter((p.y for p in points), dtype=np.float64, count=count)
        return xs, ys

    def within_distance_pairs(
        self,
        points: Sequence[Point],
        radius: float,
        max_results: Optional[int] = None,
    ) -> List[List[Tuple[float, Any]]]:
        """Batch within-distance as per-point ``(distance, payload)`` lists.

        The materialised form every consumer wants: query ``i``'s matches in
        ``(distance, row)`` order, truncated to ``max_results`` (after the
        sort, like the scalar candidate selection).
        """
        if not points:
            return []
        xs, ys = self._point_columns(points)
        offsets, rows, distances = self.within_distance_batch(xs, ys, radius)
        payloads = self._payloads
        bounds = offsets.tolist()
        row_list = rows.tolist()
        distance_list = distances.tolist()
        results: List[List[Tuple[float, Any]]] = []
        for i in range(len(points)):
            lo = bounds[i]
            hi = bounds[i + 1]
            if max_results is not None:
                hi = min(hi, lo + max_results)
            results.append([(distance_list[k], payloads[row_list[k]]) for k in range(lo, hi)])
        return results

    def query_point_payloads(self, points: Sequence[Point]) -> List[List[Any]]:
        """Batch point containment as per-point candidate payload lists.

        Index-filter candidates only (entry boxes containing each point), in
        row order; exact geometry filters stay with the caller.
        """
        if not points:
            return []
        xs, ys = self._point_columns(points)
        offsets, rows = self.query_points_batch(xs, ys)
        payloads = self._payloads
        bounds = offsets.tolist()
        row_list = rows.tolist()
        return [
            [payloads[row_list[k]] for k in range(bounds[i], bounds[i + 1])]
            for i in range(len(points))
        ]

    def within_distance_point(self, point: Point, radius: float) -> List[Tuple[float, Any]]:
        """Single-point ``within_distance`` returning ``(distance, payload)`` pairs."""
        return self.within_distance_pairs([point], radius)[0]
