"""Tests for the single public API surface (:mod:`repro.api`) and the
deprecation story of the legacy top-level entry points."""

from __future__ import annotations

import asyncio
import warnings

import pytest

import repro
import repro.api
from repro.core import PipelineConfig
from repro.core.errors import ConfigurationError
from repro.parallel.canonical import canonical_bytes
from repro.parallel.context import GeoContext


DOCUMENTED_ENTRY_POINTS = (
    "open_pipeline",
    "annotate",
    "annotate_many",
    "stream",
    "serve",
    "compile_plan",
)


class TestSurface:
    def test_api_module_exports_every_documented_entry_point(self):
        assert sorted(repro.api.__all__) == sorted(DOCUMENTED_ENTRY_POINTS)
        for name in DOCUMENTED_ENTRY_POINTS:
            assert callable(getattr(repro.api, name))

    def test_package_root_reexports_the_api(self):
        for name in DOCUMENTED_ENTRY_POINTS:
            assert getattr(repro, name) is getattr(repro.api, name)
            assert name in repro.__all__

    def test_legacy_entry_points_warn_with_migration_hint(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pipeline_cls = repro.SeMiTriPipeline
            engine_cls = repro.StreamingAnnotationEngine
        messages = [str(w.message) for w in caught if w.category is DeprecationWarning]
        assert len(messages) == 2
        assert "repro.open_pipeline()" in messages[0]
        assert "repro.stream()" in messages[1]
        # The aliases delegate to the real classes — old code keeps working.
        from repro.core.pipeline import SeMiTriPipeline
        from repro.streaming.engine import StreamingAnnotationEngine

        assert pipeline_cls is SeMiTriPipeline
        assert engine_cls is StreamingAnnotationEngine

    def test_deep_imports_stay_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core import SeMiTriPipeline  # noqa: F401
            from repro.streaming import StreamingAnnotationEngine  # noqa: F401

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.NoSuchThing
        assert "SeMiTriPipeline" in dir(repro)
        assert "serve" in dir(repro)


class TestEntryPoints:
    def test_open_pipeline_accepts_config_dicts_and_overrides(self):
        pipeline = repro.open_pipeline(
            {"stop_move": {"speed_threshold": 1.5}},
            overrides={"compute.backend": "python"},
        )
        assert pipeline.config.stop_move.speed_threshold == 1.5
        assert pipeline.config.compute.backend == "python"
        configured = repro.open_pipeline(PipelineConfig.for_people())
        assert configured.config == PipelineConfig.for_people()

    def test_annotate_one_matches_pipeline(self, car_dataset, annotation_sources):
        trajectory = car_dataset.trajectories[0]
        config = PipelineConfig.for_vehicles()
        via_api = repro.annotate(trajectory, annotation_sources, config=config)
        via_pipeline = repro.open_pipeline(config).annotate(trajectory, annotation_sources)
        assert canonical_bytes([via_api]) == canonical_bytes([via_pipeline])

    def test_annotate_many_parallel_routing_is_byte_identical(
        self, car_dataset, annotation_sources
    ):
        config = PipelineConfig.for_vehicles()
        trajectories = car_dataset.trajectories[:6]
        sequential = repro.annotate_many(trajectories, annotation_sources, config=config)
        # workers=4 with the serial executor exercises the parallel runner
        # (sharding + merge) without paying process spawn in a unit test.
        sharded = repro.annotate_many(
            trajectories,
            annotation_sources,
            config=config,
            workers=4,
            overrides={"parallel.executor": "serial"},
        )
        assert canonical_bytes(sequential) == canonical_bytes(sharded)

    def test_annotate_many_accepts_a_context_snapshot(self, car_dataset, annotation_sources):
        config = PipelineConfig.for_vehicles()
        context = GeoContext.build(annotation_sources, config)
        trajectories = car_dataset.trajectories[:3]
        from_context = repro.annotate_many(trajectories, context=context)
        from_sources = repro.annotate_many(trajectories, annotation_sources, config=config)
        assert canonical_bytes(from_context) == canonical_bytes(from_sources)

    def test_annotate_many_without_geodata_raises(self, car_dataset):
        with pytest.raises(ConfigurationError):
            repro.annotate_many(car_dataset.trajectories[:1])

    def test_stream_returns_a_live_engine(self, car_dataset, annotation_sources):
        config = PipelineConfig.for_vehicles()
        engine = repro.stream(annotation_sources, config=config)
        trajectory = car_dataset.trajectories[0]
        results = []
        for point in trajectory.points:
            results.extend(engine.ingest(trajectory.object_id, point))
        results.extend(engine.close_all())
        assert results and results[0].trajectory.object_id == trajectory.object_id

    def test_serve_returns_an_unstarted_service(self, car_dataset, annotation_sources):
        config = PipelineConfig.for_vehicles().with_overrides({"service.shards": 2})
        service = repro.serve(annotation_sources, config=config)
        assert service.shard_count == 2
        trajectory = car_dataset.trajectories[0]

        async def run():
            async with service:
                for point in trajectory.points[:30]:
                    await service.ingest(trajectory.object_id, point)
                return await service.drain()

        results = asyncio.run(run())
        assert results and service.dropped_events == 0

    def test_compile_plan_layer_restriction(self, annotation_sources):
        plan = repro.compile_plan(
            annotation_sources, config=PipelineConfig.for_vehicles(), layers=["region"]
        )
        names = [type(stage).__name__ for stage in plan.stages]
        assert any("Region" in name for name in names)
        assert not any("Line" in name or "Point" in name for name in names)

    def test_compile_plan_from_context_reuses_annotators(self, annotation_sources):
        config = PipelineConfig.for_vehicles()
        context = GeoContext.build(annotation_sources, config)
        plan = repro.compile_plan(context=context)
        assert plan.geo_context() is context
