"""Distance functions, including the point-segment distance of Equation 1.

The paper's map-matching layer replaces the usual perpendicular (point-to-
curve) distance with a *point-segment* distance: the perpendicular distance
when the projection of the GPS point falls on the segment, and otherwise the
distance to the closest segment endpoint.  That definition is implemented by
:func:`point_segment_distance`; :func:`perpendicular_distance` is kept as the
baseline used in the ablation benchmarks.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.geometry.primitives import Point, Segment

EARTH_RADIUS_METERS = 6_371_000.0


def euclidean_distance(a: Point, b: Point) -> float:
    """Planar Euclidean distance between two points.

    Uses the explicit ``sqrt(dx*dx + dy*dy)`` form (not ``math.hypot``) so the
    vectorized kernels of :mod:`repro.geometry.vectorized`, which are built
    from the same correctly rounded elementwise operations, reproduce it
    bit-for-bit.
    """
    dx = a.x - b.x
    dy = a.y - b.y
    return math.sqrt(dx * dx + dy * dy)


def squared_euclidean_distance(a: Point, b: Point) -> float:
    """Squared planar distance (avoids the square root in hot loops)."""
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def haversine_distance(a: Point, b: Point) -> float:
    """Great-circle distance in metres between two WGS84 lon/lat points."""
    lon1, lat1 = math.radians(a.x), math.radians(a.y)
    lon2, lat2 = math.radians(b.x), math.radians(b.y)
    dlon = lon2 - lon1
    dlat = lat2 - lat1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_METERS * math.asin(min(1.0, math.sqrt(h)))


def project_point_on_segment(point: Point, segment: Segment) -> Tuple[Point, float]:
    """Project ``point`` onto the line carrying ``segment``.

    Returns ``(projection, t)`` where ``t`` is the (unclamped) parametric
    position of the projection along the segment: ``t`` in ``[0, 1]`` means the
    projection falls on the segment itself.
    """
    ax, ay = segment.start.x, segment.start.y
    bx, by = segment.end.x, segment.end.y
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    if length_sq <= 0.0:
        return segment.start, 0.0
    t = ((point.x - ax) * dx + (point.y - ay) * dy) / length_sq
    projection = Point(ax + t * dx, ay + t * dy)
    return projection, t


def perpendicular_distance(point: Point, segment: Segment) -> float:
    """Distance from ``point`` to the infinite line carrying ``segment``.

    This is the classical point-to-curve metric used by geometric map-matching
    baselines; it can under-estimate the distance when the projection falls
    outside the segment.
    """
    projection, _ = project_point_on_segment(point, segment)
    return euclidean_distance(point, projection)


def point_segment_distance(point: Point, segment: Segment) -> float:
    """Point-segment distance d(Q, AiAj) from Equation 1 of the paper.

    Perpendicular distance when the projection of ``point`` falls on the
    segment; otherwise the Euclidean distance to the nearest endpoint.
    """
    projection, t = project_point_on_segment(point, segment)
    if 0.0 <= t <= 1.0:
        return euclidean_distance(point, projection)
    return min(
        euclidean_distance(point, segment.start),
        euclidean_distance(point, segment.end),
    )


def closest_point_on_segment(point: Point, segment: Segment) -> Point:
    """The point of ``segment`` closest to ``point`` (used to snap positions)."""
    projection, t = project_point_on_segment(point, segment)
    if t <= 0.0:
        return segment.start
    if t >= 1.0:
        return segment.end
    return projection


def path_length(points: Sequence[Point]) -> float:
    """Total planar length of the polyline through ``points``."""
    total = 0.0
    for previous, current in zip(points, points[1:]):
        total += euclidean_distance(previous, current)
    return total


def frechet_distance(path_a: Sequence[Point], path_b: Sequence[Point]) -> float:
    """Discrete Fréchet distance between two polylines.

    Used only by the curve-to-curve map-matching baseline and by tests; the
    dynamic-programming formulation is O(len(a) * len(b)).
    """
    if not path_a or not path_b:
        raise ValueError("Frechet distance requires two non-empty paths")
    n, m = len(path_a), len(path_b)
    table = [[0.0] * m for _ in range(n)]
    for i in range(n):
        for j in range(m):
            d = euclidean_distance(path_a[i], path_b[j])
            if i == 0 and j == 0:
                table[i][j] = d
            elif i == 0:
                table[i][j] = max(table[0][j - 1], d)
            elif j == 0:
                table[i][j] = max(table[i - 1][0], d)
            else:
                table[i][j] = max(
                    min(table[i - 1][j], table[i - 1][j - 1], table[i][j - 1]), d
                )
    return table[n - 1][m - 1]
