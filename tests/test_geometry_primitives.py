"""Unit tests for the geometric primitives."""

from __future__ import annotations

import math

import pytest

from repro.geometry.primitives import BoundingBox, Point, Polygon, Segment


class TestPoint:
    def test_as_tuple_round_trip(self):
        point = Point(1.5, -2.5)
        assert point.as_tuple() == (1.5, -2.5)

    def test_translated_does_not_mutate_original(self):
        point = Point(1.0, 2.0)
        moved = point.translated(3.0, -1.0)
        assert moved == Point(4.0, 1.0)
        assert point == Point(1.0, 2.0)

    def test_distance_to_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1.2, 3.4), Point(-5.6, 7.8)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_points_are_hashable_value_objects(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2


class TestSegment:
    def test_length(self):
        segment = Segment(Point(0, 0), Point(0, 10))
        assert segment.length == pytest.approx(10.0)

    def test_midpoint(self):
        segment = Segment(Point(0, 0), Point(4, 8))
        assert segment.midpoint == Point(2, 4)

    def test_interpolate_endpoints_and_middle(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.interpolate(0.0) == Point(0, 0)
        assert segment.interpolate(1.0) == Point(10, 0)
        assert segment.interpolate(0.5) == Point(5, 0)

    def test_interpolate_clamps_fraction(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.interpolate(-1.0) == Point(0, 0)
        assert segment.interpolate(2.0) == Point(10, 0)

    def test_bounding_box_with_padding(self):
        segment = Segment(Point(1, 5), Point(3, 2))
        box = segment.bounding_box(padding=1.0)
        assert box == BoundingBox(0, 1, 4, 6)

    def test_heading_east_is_zero(self):
        assert Segment(Point(0, 0), Point(5, 0)).heading() == pytest.approx(0.0)

    def test_heading_north_is_half_pi(self):
        assert Segment(Point(0, 0), Point(0, 5)).heading() == pytest.approx(math.pi / 2)


class TestBoundingBox:
    def test_invalid_box_raises(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)

    def test_from_points(self):
        box = BoundingBox.from_points([Point(1, 2), Point(-1, 5), Point(3, 0)])
        assert box == BoundingBox(-1, 0, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_area_and_perimeter(self):
        box = BoundingBox(0, 0, 4, 3)
        assert box.area == pytest.approx(12.0)
        assert box.perimeter == pytest.approx(14.0)

    def test_contains_point_includes_boundary(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.contains_point(Point(0, 0))
        assert box.contains_point(Point(1, 1))
        assert not box.contains_point(Point(2.01, 1))

    def test_contains_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(2, 2, 5, 5)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)

    def test_intersects_and_intersection(self):
        a = BoundingBox(0, 0, 5, 5)
        b = BoundingBox(3, 3, 8, 8)
        assert a.intersects(b)
        assert a.intersection(b) == BoundingBox(3, 3, 5, 5)

    def test_disjoint_boxes_do_not_intersect(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        assert not a.intersects(b)
        with pytest.raises(ValueError):
            a.intersection(b)

    def test_union_covers_both(self):
        a = BoundingBox(0, 0, 1, 1)
        b = BoundingBox(2, 2, 3, 3)
        union = a.union(b)
        assert union.contains_box(a) and union.contains_box(b)

    def test_enlargement_zero_for_contained_box(self):
        outer = BoundingBox(0, 0, 10, 10)
        inner = BoundingBox(1, 1, 2, 2)
        assert outer.enlargement(inner) == pytest.approx(0.0)

    def test_overlap_area(self):
        a = BoundingBox(0, 0, 4, 4)
        b = BoundingBox(2, 2, 6, 6)
        assert a.overlap_area(b) == pytest.approx(4.0)
        assert a.overlap_area(BoundingBox(5, 5, 6, 6)) == 0.0

    def test_min_distance_to_point(self):
        box = BoundingBox(0, 0, 2, 2)
        assert box.min_distance_to_point(Point(1, 1)) == 0.0
        assert box.min_distance_to_point(Point(5, 2)) == pytest.approx(3.0)
        assert box.min_distance_to_point(Point(5, 6)) == pytest.approx(5.0)

    def test_expanded(self):
        assert BoundingBox(0, 0, 1, 1).expanded(1) == BoundingBox(-1, -1, 2, 2)

    def test_center(self):
        assert BoundingBox(0, 0, 4, 2).center == Point(2, 1)


class TestPolygon:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([Point(0, 0), Point(1, 1)])

    def test_closing_vertex_is_dropped(self):
        square = Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1), Point(0, 0)])
        assert len(square) == 4

    def test_area_of_unit_square(self):
        square = Polygon([Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1)])
        assert square.area == pytest.approx(1.0)

    def test_area_independent_of_orientation(self):
        ccw = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        cw = Polygon([Point(0, 0), Point(0, 2), Point(2, 2), Point(2, 0)])
        assert ccw.area == pytest.approx(cw.area)

    def test_centroid_of_square(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert square.centroid.x == pytest.approx(1.0)
        assert square.centroid.y == pytest.approx(1.0)

    def test_contains_interior_and_exterior(self):
        triangle = Polygon([Point(0, 0), Point(4, 0), Point(0, 4)])
        assert triangle.contains(Point(1, 1))
        assert not triangle.contains(Point(3, 3))

    def test_contains_boundary_point(self):
        square = Polygon([Point(0, 0), Point(2, 0), Point(2, 2), Point(0, 2)])
        assert square.contains(Point(1, 0))
        assert square.contains(Point(0, 0))

    def test_from_bounding_box(self):
        polygon = Polygon.from_bounding_box(BoundingBox(0, 0, 3, 2))
        assert polygon.area == pytest.approx(6.0)
        assert polygon.bounding_box == BoundingBox(0, 0, 3, 2)

    def test_concave_polygon_containment(self):
        concave = Polygon(
            [Point(0, 0), Point(4, 0), Point(4, 4), Point(2, 2), Point(0, 4)]
        )
        assert concave.contains(Point(1, 1))
        assert not concave.contains(Point(2, 3.5))
