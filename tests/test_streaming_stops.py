"""Incremental stop/move detector: sealed episodes match the batch segmentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import StopMoveConfig
from repro.core.errors import DataQualityError
from repro.core.points import SpatioTemporalPoint
from repro.preprocessing.stops import StopMoveDetector
from repro.streaming import IncrementalStopMoveDetector, OpenTrajectory


def _walk_with_stops(seed: int, n: int):
    """A random walk alternating dwell phases (stops) and travel phases."""
    rng = np.random.default_rng(seed)
    points = []
    t = 0.0
    x, y = 0.0, 0.0
    moving = True
    phase_left = int(rng.integers(10, 40))
    for _ in range(n):
        t += float(rng.uniform(5.0, 20.0))
        if moving:
            x += float(rng.normal(25.0, 10.0))
            y += float(rng.normal(5.0, 10.0))
        else:
            x += float(rng.normal(0.0, 2.0))
            y += float(rng.normal(0.0, 2.0))
        points.append(SpatioTemporalPoint(x, y, t))
        phase_left -= 1
        if phase_left <= 0:
            moving = not moving
            phase_left = int(rng.integers(10, 40))
    return points


def _stream_detect(points, config, chunk: int):
    """Feed ``points`` in chunks; return (all emitted episodes, early count)."""
    trajectory = OpenTrajectory(points[0], object_id="o", trajectory_id="o-t0")
    detector = IncrementalStopMoveDetector(trajectory, config)
    emitted = []
    since_advance = 0
    for point in points[1:]:
        trajectory.append(point)
        since_advance += 1
        if since_advance >= chunk:
            emitted.extend(detector.advance())
            since_advance = 0
    early = len(emitted)
    emitted.extend(detector.finalize())
    return emitted, early


@pytest.mark.parametrize("policy", ["velocity", "density", "hybrid"])
@pytest.mark.parametrize("chunk", [1, 7])
def test_incremental_matches_batch(policy, chunk):
    config = StopMoveConfig(policy=policy, min_stop_duration=90.0, density_radius=40.0)
    points = _walk_with_stops(seed=11, n=400)
    trajectory = OpenTrajectory(points[0], object_id="o", trajectory_id="o-t0")
    for point in points[1:]:
        trajectory.append(point)
    batch = StopMoveDetector(config).segment(trajectory)

    emitted, early = _stream_detect(points, config, chunk)
    assert [(e.kind, e.start_index, e.end_index) for e in emitted] == [
        (e.kind, e.start_index, e.end_index) for e in batch
    ]
    # A long alternating trajectory must seal episodes before the end arrives.
    assert early > 0


@pytest.mark.parametrize("policy", ["velocity", "density", "hybrid"])
def test_incremental_property_random_walks(policy):
    """Property-style sweep over many random walks and chunk sizes."""
    for seed in range(12):
        config = StopMoveConfig(
            policy=policy,
            speed_threshold=1.2,
            min_stop_duration=60.0,
            density_radius=30.0,
        )
        points = _walk_with_stops(seed=seed, n=120)
        trajectory = OpenTrajectory(points[0], object_id="o", trajectory_id="o-t0")
        for point in points[1:]:
            trajectory.append(point)
        batch = StopMoveDetector(config).segment(trajectory)
        emitted, _ = _stream_detect(points, config, chunk=1 + seed % 5)
        assert [(e.kind, e.start_index, e.end_index) for e in emitted] == [
            (e.kind, e.start_index, e.end_index) for e in batch
        ]


def test_single_point_trajectory_matches_batch_special_case():
    config = StopMoveConfig()
    trajectory = OpenTrajectory(SpatioTemporalPoint(0, 0, 0), object_id="o")
    detector = IncrementalStopMoveDetector(trajectory, config)
    assert detector.advance() == []
    tail = detector.finalize()
    assert len(tail) == 1 and tail[0].is_stop and len(tail[0]) == 1


def test_finalize_twice_raises():
    trajectory = OpenTrajectory(SpatioTemporalPoint(0, 0, 0), object_id="o")
    detector = IncrementalStopMoveDetector(trajectory)
    detector.finalize()
    with pytest.raises(DataQualityError):
        detector.finalize()
    with pytest.raises(DataQualityError):
        detector.advance()


def test_sealed_episodes_reference_growing_trajectory():
    """Sealed episodes stay valid while the buffer keeps growing."""
    config = StopMoveConfig(policy="velocity", min_stop_duration=60.0)
    points = _walk_with_stops(seed=3, n=300)
    trajectory = OpenTrajectory(points[0], object_id="o", trajectory_id="o-t0")
    detector = IncrementalStopMoveDetector(trajectory, config)
    snapshots = []
    for point in points[1:]:
        trajectory.append(point)
        for episode in detector.advance():
            snapshots.append((episode, [p.as_tuple() for p in episode.points]))
    detector.finalize()
    for episode, snapshot in snapshots:
        assert [p.as_tuple() for p in episode.points] == snapshot
