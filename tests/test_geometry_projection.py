"""Unit tests for the local planar projection."""

from __future__ import annotations

import pytest

from repro.geometry.distance import euclidean_distance, haversine_distance
from repro.geometry.primitives import Point
from repro.geometry.projection import LocalProjector


class TestLocalProjector:
    def test_reference_maps_to_origin(self):
        projector = LocalProjector(Point(6.63, 46.52))
        planar = projector.to_planar(Point(6.63, 46.52))
        assert planar.x == pytest.approx(0.0)
        assert planar.y == pytest.approx(0.0)

    def test_round_trip(self):
        projector = LocalProjector(Point(6.63, 46.52))
        original = Point(6.67, 46.55)
        recovered = projector.to_lonlat(projector.to_planar(original))
        assert recovered.x == pytest.approx(original.x, abs=1e-9)
        assert recovered.y == pytest.approx(original.y, abs=1e-9)

    def test_planar_distance_close_to_haversine(self):
        projector = LocalProjector(Point(6.63, 46.52))
        a, b = Point(6.63, 46.52), Point(6.66, 46.54)
        planar = euclidean_distance(projector.to_planar(a), projector.to_planar(b))
        geodesic = haversine_distance(a, b)
        assert planar == pytest.approx(geodesic, rel=0.01)

    def test_from_points_uses_centroid(self):
        points = [Point(6.0, 46.0), Point(8.0, 48.0)]
        projector = LocalProjector.from_points(points)
        assert projector.reference.x == pytest.approx(7.0)
        assert projector.reference.y == pytest.approx(47.0)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            LocalProjector.from_points([])

    def test_polar_reference_rejected(self):
        with pytest.raises(ValueError):
            LocalProjector(Point(0.0, 90.0))

    def test_project_many_and_back(self):
        projector = LocalProjector(Point(6.63, 46.52))
        originals = [Point(6.64, 46.53), Point(6.60, 46.50)]
        recovered = projector.unproject_many(projector.project_many(originals))
        for original, back in zip(originals, recovered):
            assert back.x == pytest.approx(original.x, abs=1e-9)
            assert back.y == pytest.approx(original.y, abs=1e-9)
