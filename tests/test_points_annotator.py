"""Unit tests for Algorithm 3: stop annotation with POI categories."""

from __future__ import annotations

import pytest

from repro.core.annotations import AnnotationKind
from repro.core.config import PointAnnotationConfig
from repro.core.episodes import Episode, EpisodeKind
from repro.core.errors import DataQualityError
from repro.core.places import PointOfInterest
from repro.core.points import build_trajectory
from repro.geometry.primitives import Point
from repro.points.annotator import PointAnnotator
from repro.points.poi import PoiSource


def _poi(place_id: str, x: float, y: float, category: str) -> PointOfInterest:
    return PointOfInterest(place_id=place_id, name=place_id, category=category, location=Point(x, y))


@pytest.fixture()
def clustered_source() -> PoiSource:
    """Three spatially separated category clusters."""
    pois = []
    for i in range(6):
        pois.append(_poi(f"feed{i}", 100 + i * 8, 100, "feedings"))
        pois.append(_poi(f"sale{i}", 1000 + i * 8, 1000, "item sale"))
        pois.append(_poi(f"serv{i}", 2000 + i * 8, 100, "services"))
    return PoiSource(pois, name="clusters")


@pytest.fixture()
def annotator(clustered_source) -> PointAnnotator:
    config = PointAnnotationConfig(grid_cell_size=50, neighbor_radius=250, default_sigma=60)
    return PointAnnotator(clustered_source, config)


def _stop_trajectory():
    """A trajectory with three dwells: near feedings, item sale, services."""
    triples = []
    t = 0.0
    for center in ((110, 100), (1010, 1000), (2010, 100)):
        for _ in range(5):
            triples.append((center[0], center[1], t))
            t += 120.0
    return build_trajectory(triples, object_id="o", trajectory_id="stops")


def _stops(trajectory):
    return [
        Episode(EpisodeKind.STOP, trajectory, 0, 5),
        Episode(EpisodeKind.STOP, trajectory, 5, 10),
        Episode(EpisodeKind.STOP, trajectory, 10, 15),
    ]


class TestInference:
    def test_hmm_built_from_source(self, annotator, clustered_source):
        assert set(annotator.hmm.states) == set(clustered_source.categories())
        assert sum(annotator.hmm.initial.values()) == pytest.approx(1.0)

    def test_stop_categories_follow_clusters(self, annotator):
        trajectory = _stop_trajectory()
        categories = annotator.infer_stop_categories(_stops(trajectory))
        assert categories == ["feedings", "item sale", "services"]

    def test_empty_stop_list(self, annotator):
        assert annotator.infer_stop_categories([]) == []

    def test_move_episode_rejected(self, annotator):
        trajectory = _stop_trajectory()
        move = Episode(EpisodeKind.MOVE, trajectory, 0, 5)
        with pytest.raises(DataQualityError):
            annotator.infer_stop_categories([move])


class TestAnnotation:
    def test_annotate_stops_builds_structured_trajectory(self, annotator):
        trajectory = _stop_trajectory()
        stops = _stops(trajectory)
        structured = annotator.annotate_stops(stops)
        assert len(structured) == 3
        assert structured[0].place is not None
        assert structured[0].place.category == "feedings"
        assert structured[0].activity == "eating"
        assert structured[1].activity == "shopping"

    def test_annotations_attached_to_episodes(self, annotator):
        trajectory = _stop_trajectory()
        stops = _stops(trajectory)
        annotator.annotate_stops(stops)
        assert stops[0].annotations_of_kind(AnnotationKind.ACTIVITY)
        assert stops[0].annotations_of_kind(AnnotationKind.POINT)

    def test_annotate_stops_requires_stops(self, annotator):
        with pytest.raises(DataQualityError):
            annotator.annotate_stops([])

    def test_stop_far_from_all_pois_gets_no_place_link(self, annotator):
        triples = [(5000.0, 5000.0, float(i * 120)) for i in range(5)]
        trajectory = build_trajectory(triples)
        stop = Episode(EpisodeKind.STOP, trajectory, 0, 5)
        structured = annotator.annotate_stops([stop])
        assert structured[0].place is None
        # The activity annotation is still present (partial annotation).
        assert structured[0].activity is not None

    def test_records_sorted_by_time(self, annotator):
        trajectory = _stop_trajectory()
        stops = list(reversed(_stops(trajectory)))
        structured = annotator.annotate_stops(stops)
        times = [record.time_in for record in structured]
        assert times == sorted(times)


class TestTrajectoryClassification:
    def test_classify_trajectory_uses_longest_stop_category(self, annotator, clustered_source):
        # One short stop near feedings, one long stop near item sale.
        triples = []
        t = 0.0
        for _ in range(3):
            triples.append((110.0, 100.0, t))
            t += 60.0
        for _ in range(10):
            triples.append((1010.0, 1000.0, t))
            t += 600.0
        trajectory = build_trajectory(triples)
        stops = [
            Episode(EpisodeKind.STOP, trajectory, 0, 3),
            Episode(EpisodeKind.STOP, trajectory, 3, 13),
        ]
        assert annotator.classify_trajectory(stops) == "item sale"

    def test_classify_empty(self, annotator):
        assert annotator.classify_trajectory([]) is None

    def test_custom_transition_matrix(self, clustered_source):
        categories = clustered_source.categories()
        sticky = {
            source: {target: (0.98 if source == target else 0.01) for target in categories}
            for source in categories
        }
        annotator = PointAnnotator(
            clustered_source,
            PointAnnotationConfig(grid_cell_size=50, neighbor_radius=250),
            transitions=sticky,
        )
        assert annotator.hmm.transitions[categories[0]][categories[0]] > 0.9
