"""Round-trip and edge-case coverage for the columnar trajectory structures.

The ``from_trajectory`` → ``to_trajectory`` round trip must be lossless for
every float the pipeline can encounter: ordinary fixes, duplicate timestamps,
NaN timestamps (which :class:`RawTrajectory` accepts, since its monotonicity
check only rejects *decreasing* pairs), and antimeridian-adjacent longitudes
that naive wrapping logic would mangle.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.arrays import GrowableArray, TrajectoryArrays
from repro.core.errors import DataQualityError
from repro.core.points import RawTrajectory, SpatioTemporalPoint, build_trajectory


class TestRoundTrip:
    def test_ordinary_trajectory_round_trips_losslessly(self):
        trajectory = build_trajectory(
            [(1.25, -2.5, 0.0), (1.375, -2.125, 10.0), (2.0, -1.0, 25.5)],
            object_id="u1",
            trajectory_id="u1-7",
        )
        arrays = TrajectoryArrays.from_trajectory(trajectory)
        rebuilt = arrays.to_trajectory()
        assert rebuilt.object_id == "u1"
        assert rebuilt.trajectory_id == "u1-7"
        assert [p.as_tuple() for p in rebuilt.points] == [
            p.as_tuple() for p in trajectory.points
        ]

    def test_columns_are_contiguous_float64(self):
        arrays = TrajectoryArrays.from_points(
            [SpatioTemporalPoint(0.0, 1.0, 2.0), SpatioTemporalPoint(3.0, 4.0, 5.0)]
        )
        for column in (arrays.xs, arrays.ys, arrays.ts):
            assert column.dtype == np.float64
            assert column.flags["C_CONTIGUOUS"]

    def test_empty_point_sequence(self):
        arrays = TrajectoryArrays.from_points([])
        assert len(arrays) == 0
        assert arrays.to_points() == []
        assert arrays.duration == 0.0
        with pytest.raises(DataQualityError):
            arrays.to_trajectory()
        with pytest.raises(DataQualityError):
            arrays.bounding_box()

    def test_single_point(self):
        arrays = TrajectoryArrays.from_points([SpatioTemporalPoint(5.0, 6.0, 7.0)])
        assert len(arrays) == 1
        assert arrays.speeds.tolist() == [0.0]
        assert arrays.duration == 0.0
        rebuilt = arrays.to_trajectory()
        assert len(rebuilt) == 1
        assert rebuilt[0].as_tuple() == (5.0, 6.0, 7.0)
        box = arrays.bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (5.0, 6.0, 5.0, 6.0)

    def test_duplicate_timestamps_survive_and_speeds_are_zero(self):
        points = [
            SpatioTemporalPoint(0.0, 0.0, 100.0),
            SpatioTemporalPoint(3.0, 4.0, 100.0),  # duplicate timestamp
            SpatioTemporalPoint(6.0, 8.0, 200.0),
        ]
        arrays = TrajectoryArrays.from_points(points)
        assert arrays.ts.tolist() == [100.0, 100.0, 200.0]
        # Zero-duration step gets speed 0 (paper convention), not inf/NaN.
        assert arrays.speeds[0] == 0.0
        assert arrays.to_trajectory()[1].as_tuple() == (3.0, 4.0, 100.0)

    def test_nan_timestamp_round_trips_as_nan(self):
        # RawTrajectory's monotonicity check only rejects decreasing pairs, so
        # NaN timestamps are representable and must survive columnarisation.
        trajectory = RawTrajectory(
            [
                SpatioTemporalPoint(0.0, 0.0, 0.0),
                SpatioTemporalPoint(1.0, 1.0, float("nan")),
            ],
            object_id="nan-user",
        )
        arrays = TrajectoryArrays.from_trajectory(trajectory)
        assert math.isnan(float(arrays.ts[1]))
        rebuilt = arrays.to_trajectory()
        assert math.isnan(rebuilt[1].t)
        assert rebuilt[1].x == 1.0

    def test_antimeridian_adjacent_longitudes_unchanged(self):
        # Fixes straddling the +/-180 meridian must come back exactly as
        # given — no wrapping, no sign normalisation.
        east = 179.99999999
        west = -179.99999999
        points = [
            SpatioTemporalPoint(east, 10.0, 0.0),
            SpatioTemporalPoint(west, 10.1, 60.0),
            SpatioTemporalPoint(-180.0, 10.2, 120.0),
            SpatioTemporalPoint(180.0, 10.3, 180.0),
        ]
        arrays = TrajectoryArrays.from_points(points)
        rebuilt = arrays.to_points()
        assert [p.x for p in rebuilt] == [east, west, -180.0, 180.0]
        box = arrays.bounding_box()
        assert box.min_x == -180.0 and box.max_x == 180.0

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(DataQualityError):
            TrajectoryArrays(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_speeds_cached_and_match_scalar_convention(self):
        points = [SpatioTemporalPoint(float(i) * 3.0, 0.0, float(i) * 2.0) for i in range(6)]
        arrays = TrajectoryArrays.from_points(points)
        speeds = arrays.speeds
        assert speeds is arrays.speeds  # cached
        assert speeds.tolist() == [1.5] * 6  # last value repeated


class TestGrowableArray:
    def test_append_grows_past_initial_capacity(self):
        buffer = GrowableArray(capacity=2)
        for i in range(100):
            buffer.append(float(i))
        assert len(buffer) == 100
        assert buffer.view().tolist() == [float(i) for i in range(100)]

    def test_view_windows_and_clear(self):
        buffer = GrowableArray()
        buffer.extend([1.0, 2.0, 3.0, 4.0])
        assert buffer.view(1, 3).tolist() == [2.0, 3.0]
        with pytest.raises(IndexError):
            buffer.view(2, 9)
        buffer.clear()
        assert len(buffer) == 0
        assert buffer.view().tolist() == []

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            GrowableArray(capacity=0)
