"""Streaming GPS cleaning with bounded lookahead.

Reproduces :meth:`repro.preprocessing.cleaning.GpsCleaner.clean` over a live
stream: outlier removal is causal (the greedy anchor filter only looks
backwards), while the centred smoothing window needs ``window // 2`` future
fixes before a point's smoothed position is final — so the cleaner emits
points with that bounded lag and flushes the tail on :meth:`finish`.

The batch cleaner keeps the first and last fixes of the stream unsmoothed and
leaves streams of fewer than three fixes untouched; both rules depend on
knowing where the stream ends, which is exactly what :meth:`finish` signals.
The emitted sequence is bit-for-bit identical to the batch
``smooth(remove_outliers(points))`` on the same input (parity tested).
"""

from __future__ import annotations

import statistics
from typing import List, Sequence

from repro.core.config import CleaningConfig
from repro.core.errors import DataQualityError
from repro.core.points import SpatioTemporalPoint


class StreamingGpsCleaner:
    """Online outlier removal + smoothing for one GPS stream.

    Feed raw fixes with :meth:`push`, which returns the cleaned fixes that
    became final; call :meth:`finish` at end of stream to flush the pending
    tail.  One instance cleans exactly one stream.
    """

    def __init__(self, config: CleaningConfig = CleaningConfig()):
        self._config = config
        self._half = config.smoothing_window // 2
        self._passthrough = (
            config.smoothing_window <= 1 or config.smoothing_method == "none"
        )
        self._aggregate = (
            statistics.median if config.smoothing_method == "median" else statistics.fmean
        )
        # Accepted (outlier-filtered) fixes not yet pruned; _base is the
        # stream index of _accepted[0].  The outlier anchor is kept separately
        # because pruning may drop the last accepted fix from the buffer.
        self._accepted: List[SpatioTemporalPoint] = []
        self._anchor: SpatioTemporalPoint = None  # type: ignore[assignment]
        self._base = 0
        self._count = 0
        self._emitted = 0
        self._finished = False

    @property
    def config(self) -> CleaningConfig:
        """The active cleaning configuration."""
        return self._config

    @property
    def pending_count(self) -> int:
        """Accepted fixes whose smoothed position is not yet final."""
        return self._count - self._emitted

    # ------------------------------------------------------------------ feed
    def push(self, point: SpatioTemporalPoint) -> List[SpatioTemporalPoint]:
        """Feed one raw fix; returns the cleaned fixes finalized by it."""
        if self._finished:
            raise DataQualityError("cannot push into a finished cleaning stream")
        if not self._accept(point):
            return []
        return self._drain(closed=False)

    def finish(self) -> List[SpatioTemporalPoint]:
        """Signal end of stream and flush the remaining cleaned fixes."""
        if self._finished:
            return []
        self._finished = True
        return self._drain(closed=True)

    # ------------------------------------------------------------- internals
    def _accept(self, point: SpatioTemporalPoint) -> bool:
        """The greedy outlier filter of :meth:`GpsCleaner.remove_outliers`."""
        if self._count > 0:
            dt = point.t - self._anchor.t
            if dt < 0:
                raise DataQualityError("GPS stream timestamps must be non-decreasing")
            if dt == 0:
                return False
            if self._anchor.distance_to(point) / dt > self._config.max_speed:
                return False
        self._anchor = point
        self._accepted.append(point)
        self._count += 1
        return True

    def _drain(self, closed: bool) -> List[SpatioTemporalPoint]:
        emitted: List[SpatioTemporalPoint] = []
        n = self._count
        while self._emitted < n:
            index = self._emitted
            if self._passthrough or (closed and n < 3):
                emitted.append(self._point_at(index))
            elif index == 0 or (closed and index == n - 1):
                # Stream endpoints keep their original position.
                emitted.append(self._point_at(index))
            elif index + self._half < n or closed:
                emitted.append(self._smoothed(index, n))
            else:
                break  # needs more lookahead
            self._emitted += 1
        self._prune()
        return emitted

    def _smoothed(self, index: int, n: int) -> SpatioTemporalPoint:
        lo = max(0, index - self._half)
        hi = min(n, index + self._half + 1)
        xs = [self._point_at(i).x for i in range(lo, hi)]
        ys = [self._point_at(i).y for i in range(lo, hi)]
        original = self._point_at(index)
        return SpatioTemporalPoint(self._aggregate(xs), self._aggregate(ys), original.t)

    def _point_at(self, index: int) -> SpatioTemporalPoint:
        return self._accepted[index - self._base]

    def _prune(self) -> None:
        """Drop accepted fixes no future smoothing window can reference."""
        keep_from = max(0, self._emitted - self._half)
        if keep_from > self._base:
            del self._accepted[: keep_from - self._base]
            self._base = keep_from


def clean_stream(
    points: Sequence[SpatioTemporalPoint], config: CleaningConfig = CleaningConfig()
) -> List[SpatioTemporalPoint]:
    """Convenience helper: stream every point through a fresh cleaner."""
    cleaner = StreamingGpsCleaner(config)
    cleaned: List[SpatioTemporalPoint] = []
    for point in points:
        cleaned.extend(cleaner.push(point))
    cleaned.extend(cleaner.finish())
    return cleaned
