"""People-trajectory scenario: reconstructing the semantic day of a commuter.

Reproduces the motivating example of the paper's introduction: instead of raw
GPS points, the application sees the day as a sequence of triples

    (home, -9am, -) -> (road, 9am-10am, on-bus) -> (office, 10am-5pm, work) -> ...

This example simulates several smartphone users with different commute styles
(walk + metro, bicycle, bus, walking only), runs the full pipeline and prints,
for each user, the semantically encoded day built from the region, line and
point annotation layers (Figures 15/16 flavour).

Run it with::

    python examples/people_daily_life.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro
from repro import AnnotationSources, PipelineConfig
from repro.datasets import PersonSimulator, SyntheticWorld, WorldConfig
from repro.regions.landuse import label_of


def _hour(timestamp: float) -> str:
    hours = (timestamp % 86_400) / 3600
    return f"{int(hours):02d}:{int((hours % 1) * 60):02d}"


def describe_day(result, profile) -> None:
    """Print the (place, period, annotation) triple sequence for one result."""
    print(f"\n=== {result.trajectory.object_id} ({profile.commute_style} commuter) ===")
    print(
        f"{len(result.trajectory)} GPS records -> {len(result.stops)} stops, "
        f"{len(result.moves)} moves"
    )

    stop_activities = {}
    if result.point_trajectory is not None:
        for record in result.point_trajectory:
            stop_activities[(record.time_in, record.time_out)] = record.activity

    line_by_episode = {}
    for structured in result.line_trajectories:
        for record in structured:
            if record.source_episode is not None:
                key = id(record.source_episode)
                line_by_episode.setdefault(key, []).append(record)

    assert result.region_trajectory is not None
    for record in result.region_trajectory:
        landuse = record.place.category if record.place is not None else "?"
        place_label = label_of(landuse) if record.place is not None else "unknown area"
        if record.kind.value == "stop":
            annotation = stop_activities.get((record.time_in, record.time_out), "-")
        else:
            modes = []
            if record.source_episode is not None:
                for line_record in line_by_episode.get(id(record.source_episode), []):
                    mode = line_record.transport_mode
                    if mode and (not modes or modes[-1] != mode):
                        modes.append(mode)
            annotation = "+".join(modes) if modes else "-"
        print(
            f"  ({place_label:28s} {_hour(record.time_in)}-{_hour(record.time_out)}, "
            f"{annotation})"
        )
    print(f"  dominant trajectory category (Eq. 8): {result.trajectory_category}")


def main() -> None:
    world = SyntheticWorld(WorldConfig(size=8000.0, poi_count=2000, seed=7))
    simulator = PersonSimulator(world, user_count=4, days_per_user=1, seed=31)
    dataset = simulator.generate()

    pipeline = repro.open_pipeline(PipelineConfig.for_people())
    sources = AnnotationSources(
        regions=world.region_source(),
        road_network=world.road_network(),
        pois=world.poi_source(),
    )

    for user in dataset.user_ids:
        trajectory = dataset.trajectories_by_user[user][0]
        result = pipeline.annotate(trajectory, sources)
        describe_day(result, dataset.profiles[user])


if __name__ == "__main__":
    main()
