"""Annotation-as-a-service: an asyncio ingest tier over the stage-graph engine.

:class:`AnnotationService` multiplexes many concurrent GPS object streams into
sharded :class:`~repro.engine.executors.MicroBatchExecutor` instances — the
same streaming session loop :class:`StreamingAnnotationEngine` drives, but
fanned out across shards so heavy traffic from many emitters does not
serialise behind one session registry:

* **routing** — events are routed to a shard by consistent-hashing the object
  id (:mod:`repro.service.routing`), so all trajectories of one object share
  one stateful session and routing is stable across processes;
* **backpressure** — each shard owns a bounded ``asyncio.Queue``; when it
  fills, ``await service.ingest(...)`` suspends the producer until the shard
  catches up.  Events are *never* dropped: slow producers wait;
* **memory budget** — ``config.service.session_budget`` is divided across
  shards as each shard's LRU session capacity; the least recently active
  sessions are gracefully closed through the same gap close-out path an
  explicit close takes (sealing and annotating their open trajectories), and
  :meth:`evict_sessions` forces the same path on demand;
* **drain/shutdown** — :meth:`drain` stops intake, flushes every queue, closes
  every open session in every shard and (when persistence is on) commits all
  sealed results in one deterministic-order transaction, so the drained
  output is canonically byte-identical to a sequential
  :meth:`~repro.core.pipeline.SeMiTriPipeline.annotate_many` over the
  delivered events;
* **telemetry** — per-shard queue-depth gauges, events/results counters and a
  service-wide enqueue-to-absorbed latency histogram live in a PR 6
  :class:`~repro.obs.metrics.MetricsRegistry`, Prometheus rendering included.

Shard executors run on a thread pool (one hand-off per micro-batch, one
in-flight batch per shard), which keeps the event loop free for I/O and lets
the numpy kernels overlap across shards; per-shard absorption order equals
enqueue order, which is what the parity tests pin down.
"""

from __future__ import annotations

import asyncio
import sqlite3
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Callable, Iterable, List, Optional, Tuple, Union

from repro.core.config import PipelineConfig
from repro.core.errors import ConfigurationError, SemitriError, ServiceError
from repro.core.pipeline import AnnotationSources, PipelineResult
from repro.core.points import SpatioTemporalPoint
from repro.engine.executors import MicroBatchExecutor
from repro.engine.plan import Plan
from repro.faults.failures import FailureLog
from repro.faults.inject import FaultInjector
from repro.faults.journal import IngestJournal
from repro.obs.metrics import MetricsRegistry, ServiceMetrics, ShardMetrics
from repro.parallel.context import GeoContext
from repro.service.routing import ConsistentHashRing
from repro.store.store import SemanticTrajectoryStore

__all__ = ["AnnotationService", "ServiceStats"]

#: Queue sentinel that tells a shard consumer the stream is over.
_STOP = object()

#: Queue item kinds (events and per-object control messages share the queue
#: so control respects the same ordering and backpressure as data).
_EVENT, _CLOSE, _EVICT = "event", "close", "evict"

#: One queued item: (kind, object id or eviction target, point, enqueue time).
_Item = Tuple[str, object, Optional[SpatioTemporalPoint], float]

#: Exception types a shard batch may fail with that the service *handles*
#: (counts, annotates with shard + object ids, routes through the failure
#: policy).  Deliberately narrow — anything outside this tuple (MemoryError,
#: KeyboardInterrupt, arbitrary C-extension crashes) propagates untouched.
_BATCH_ERRORS = (
    SemitriError,
    sqlite3.Error,
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    ArithmeticError,
    RuntimeError,
    OSError,
)


@dataclass
class ServiceStats:
    """Counters the service maintains across its lifetime."""

    events: int = 0
    """Events accepted into a shard queue."""

    results: int = 0
    """Sealed trajectories collected from the shards."""

    closed_objects: int = 0
    """Explicit per-object close requests."""

    backpressure_waits: int = 0
    """Ingest calls that found their shard queue full and had to await."""

    batches: int = 0
    """Micro-batches handed to shard executors."""

    errors: int = 0
    """Shard batches that failed while processing.

    Each failure is annotated with its shard and object ids, counted in the
    shard's metrics and routed through the failure policy (``fail_fast``
    re-raises at drain; isolating policies keep the shard alive) — see
    :attr:`AnnotationService.batch_failures` for the captured errors.
    """

    wal_appended: int = 0
    """Operations journaled to the crash-safe ingest WAL."""

    wal_replayed: int = 0
    """Journal records replayed through the normal path during recovery."""

    dedup_skipped: int = 0
    """Replayed trajectories skipped at commit because the store already
    holds them (the idempotency half of WAL recovery)."""


class _ShardWorker:
    """One shard's synchronous half: a micro-batch executor plus bookkeeping.

    ``process`` runs on the service's thread pool; the consumer coroutine
    awaits each batch before submitting the next, so a worker is only ever
    touched by one thread at a time.
    """

    def __init__(self, index: int, plan: Plan, metrics: ShardMetrics):
        self.index = index
        self.executor = MicroBatchExecutor(plan)
        self.metrics = metrics
        self.events_absorbed = 0

    def process(self, batch: List[_Item]) -> List[PipelineResult]:
        """Absorb one micro-batch of events and control messages, in order."""
        executor = self.executor
        results: List[PipelineResult] = []
        for kind, object_id, point, _ in batch:
            if kind == _EVENT:
                assert point is not None
                results.extend(executor.ingest(str(object_id), point))
                self.events_absorbed += 1
            elif kind == _CLOSE:
                results.extend(executor.close_object(str(object_id)))
            else:  # _EVICT: object_id carries the target open-session count
                results.extend(executor.evict_sessions(int(object_id)))  # type: ignore[arg-type]
        self.metrics.events.inc(sum(1 for item in batch if item[0] == _EVENT))
        self.metrics.results.inc(len(results))
        self.metrics.open_sessions.set(executor.open_session_count)
        return results

    def drain(self) -> List[PipelineResult]:
        """Close every open session (flushing the pending micro-batch first)."""
        results = self.executor.close_all()
        self.metrics.results.inc(len(results))
        self.metrics.open_sessions.set(0)
        return results


class AnnotationService:
    """Long-running ingest front end over sharded streaming executors.

    Typical usage::

        service = AnnotationService(sources, config=config)
        async with service:
            await service.ingest("car-7", point)       # awaits when shard is full
            ...
            results = await service.drain()            # flush + close everything

    Parameters
    ----------
    sources:
        The annotation sources, or a prebuilt immutable
        :class:`~repro.parallel.context.GeoContext` snapshot whose frozen
        indexes every shard then shares (one index build for the whole
        service).
    config:
        Pipeline configuration; ``config.service`` sizes the shard fan-out,
        queues and session budget.  Must be ``None`` or equal to the
        snapshot's config when a :class:`GeoContext` is passed.
    store / persist:
        When both are given, :meth:`drain` commits every sealed trajectory in
        one deterministic-order transaction.  Shards never touch the store.
    on_result:
        Callback invoked on the event-loop thread for every sealed trajectory
        as it is collected.
    fault_injector:
        An explicit :class:`~repro.faults.inject.FaultInjector` for
        deterministic chaos runs; defaults to whatever ``SEMITRI_FAULTS``
        describes (disabled when unset).
    """

    def __init__(
        self,
        sources: Union[AnnotationSources, GeoContext],
        config: Optional[PipelineConfig] = None,
        store: Optional[SemanticTrajectoryStore] = None,
        persist: bool = False,
        on_result: Optional[Callable[[PipelineResult], None]] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if isinstance(sources, GeoContext):
            context = sources
            if config is not None and config != context.config:
                raise ConfigurationError(
                    "config conflicts with the GeoContext snapshot's config; "
                    "bake the desired config into the snapshot via GeoContext.build"
                )
        else:
            context = GeoContext(sources, config if config is not None else PipelineConfig())
        self._context = context
        self._config = context.config
        service_config = self._config.service
        self._shard_count = service_config.resolved_shards
        self._queue_depth = service_config.queue_depth
        self._max_batch = service_config.max_batch
        self._ring = ConsistentHashRing(self._shard_count, replicas=service_config.ring_replicas)
        self._store = store
        self._persist = persist and store is not None
        self._on_result = on_result

        self.registry = MetricsRegistry()
        self.metrics = ServiceMetrics(self.registry)
        self.stats = ServiceStats()
        self._faults = fault_injector if fault_injector is not None else FaultInjector.from_env()
        if store is not None and self._faults.enabled:
            store.bind_faults(self._faults)
        # One failure log for the whole service: shard threads record into it
        # (it is thread-safe), but it is *not* bound to the store — shard
        # threads must never touch the SQLite connection, so quarantines
        # buffer until the drain flushes them on the event-loop thread.
        self._failure_log = FailureLog(self._config.failure, registry=self.registry)
        self._journal: Optional[IngestJournal] = None
        self._batch_failures: List[ServiceError] = []

        # Each shard gets its share of the session budget; everything else
        # (annotators, indexes, config) is the shared snapshot's.  Shard plans
        # never persist — the service commits at drain time, in one place.
        per_shard_sessions = max(1, service_config.session_budget // self._shard_count)
        shard_config = replace(
            self._config,
            streaming=replace(self._config.streaming, max_sessions=per_shard_sessions),
        )
        self._workers = [
            _ShardWorker(
                index,
                Plan.compile(
                    sources=context.sources,
                    config=shard_config,
                    annotators=context.annotators,
                    faults=self._faults,
                    failure_log=self._failure_log,
                ),
                self.metrics.shard(index),
            )
            for index in range(self._shard_count)
        ]

        self._queues: List["asyncio.Queue[object]"] = []
        self._consumers: List["asyncio.Task[None]"] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._results: List[PipelineResult] = []
        # (object id, collection sequence) per result: the deterministic sort
        # key of the drain-time store commit.  Within one object the sequence
        # follows absorption order (one shard, serialized), so sorting by it
        # reproduces per-object sealing order no matter how shards interleave.
        self._order: List[Tuple[str, int]] = []
        self._state = "new"

    # ---------------------------------------------------------------- identity
    @property
    def shard_count(self) -> int:
        """Number of executor shards the service fans out to."""
        return self._shard_count

    @property
    def config(self) -> PipelineConfig:
        """The pipeline configuration every shard runs."""
        return self._config

    @property
    def context(self) -> GeoContext:
        """The immutable geographic snapshot shared by every shard."""
        return self._context

    @property
    def results(self) -> List[PipelineResult]:
        """Every sealed trajectory collected so far (collection order)."""
        return list(self._results)

    @property
    def delivered_events(self) -> int:
        """Events absorbed by shard executors (equals ``stats.events`` after drain)."""
        return sum(worker.events_absorbed for worker in self._workers)

    @property
    def dropped_events(self) -> int:
        """Accepted-but-never-absorbed events.

        Positive only while events are still queued or after a shard batch
        raised; a clean :meth:`drain` leaves it at zero — the service's
        no-drop contract.
        """
        return self.stats.events - self.delivered_events

    @property
    def open_session_count(self) -> int:
        """Open per-object sessions across every shard."""
        return sum(worker.executor.open_session_count for worker in self._workers)

    @property
    def sessions_evicted(self) -> int:
        """Sessions closed by LRU budget pressure or explicit eviction."""
        return sum(worker.executor.sessions_evicted for worker in self._workers)

    def queue_depths(self) -> List[int]:
        """Current per-shard queue depths (diagnostics)."""
        return [queue.qsize() for queue in self._queues]

    def shard_for(self, object_id: str) -> int:
        """The shard index the router assigns to ``object_id``."""
        return self._ring.shard_for(object_id)

    @property
    def failure_log(self) -> FailureLog:
        """The run-scoped failure log (counters, quarantine buffer)."""
        return self._failure_log

    @property
    def quarantined_count(self) -> int:
        """Trajectories the failure policy dead-lettered so far."""
        return self._failure_log.quarantined

    @property
    def batch_failures(self) -> List[ServiceError]:
        """Shard-batch failures captured so far (annotated with shard + objects)."""
        return list(self._batch_failures)

    @property
    def journal(self) -> Optional[IngestJournal]:
        """The crash-safe ingest journal, when ``service.journal_dir`` is set."""
        return self._journal

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the service registry."""
        return self.registry.render_prometheus()

    # --------------------------------------------------------------- lifecycle
    async def start(self) -> "AnnotationService":
        """Create the shard queues, consumers and worker thread pool.

        With ``config.service.journal_dir`` set, the crash-safe ingest
        journal opens here — and if a previous service died with un-drained
        events in that directory, they are **replayed through the normal
        ingest path** before new traffic, re-journaled under their original
        origin ids (so a crash mid-replay dedups instead of duplicating).
        """
        if self._state != "new":
            raise ServiceError(f"cannot start a service in state {self._state!r}")
        service_config = self._config.service
        if service_config.journal_dir:
            self._journal = IngestJournal(
                service_config.journal_dir,
                self._shard_count,
                fsync_batch=service_config.journal_fsync_batch,
            )
        self._queues = [
            asyncio.Queue(maxsize=self._queue_depth) for _ in range(self._shard_count)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=self._shard_count, thread_name_prefix="semitri-shard"
        )
        self._consumers = [
            asyncio.create_task(self._consume(index), name=f"semitri-shard-{index}")
            for index in range(self._shard_count)
        ]
        self._state = "running"
        if self._journal is not None and self._journal.pending_records:
            await self._replay_journal()
        return self

    async def _replay_journal(self) -> None:
        """Feed a crashed predecessor's surviving WAL records back in."""
        assert self._journal is not None
        records = self._journal.pending_records
        for record in records:
            shard = self._ring.shard_for(record.object_id)
            self._journal.append_replayed(shard, record)
            now = time.perf_counter()
            if record.kind == "event":
                await self._enqueue(
                    self._queues[shard], (_EVENT, record.object_id, record.point(), now)
                )
                self.stats.events += 1
            else:
                await self._enqueue(
                    self._queues[shard], (_CLOSE, record.object_id, None, now)
                )
                self.stats.closed_objects += 1
        # Only after every record is safely re-journaled may the recovered
        # files go; a crash in between replays from the re-journaled copies.
        self._journal.sync()
        self._journal.discard_recovered()
        self.stats.wal_replayed += len(records)
        self._failure_log.record_wal_replayed(len(records))

    async def __aenter__(self) -> "AnnotationService":
        return await self.start()

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.shutdown()

    async def drain(self) -> List[PipelineResult]:
        """Stop intake, flush every queue, close every session, commit.

        Returns **all** results collected since :meth:`start` — queued events
        are fully absorbed (FIFO per shard) before the remaining sessions are
        closed through the gap close-out path, so nothing is lost.  With
        persistence enabled the sealed trajectories are committed here, in
        one transaction, ordered by (object id, per-object sealing order) —
        a deterministic order independent of shard interleaving.
        """
        if self._state == "drained":
            return self.results
        if self._state != "running":
            raise ServiceError(f"cannot drain a service in state {self._state!r}")
        self._state = "draining"
        for queue in self._queues:
            await queue.put(_STOP)
        await asyncio.gather(*self._consumers)
        loop = asyncio.get_running_loop()
        assert self._pool is not None
        closes = [
            loop.run_in_executor(self._pool, worker.drain) for worker in self._workers
        ]
        for sealed in await asyncio.gather(*closes):
            self._collect(sealed)
        if self._journal is not None:
            self._journal.sync()
        if self._persist:
            self._commit_with_policy()
        if self._store is not None:
            self._failure_log.flush_to_store(self._store)
        if self._journal is not None:
            # The store now durably holds everything the journal covered; a
            # failed commit raises above and keeps the journal for recovery.
            self._journal.rotate()
        self._state = "drained"
        return self.results

    async def shutdown(self) -> List[PipelineResult]:
        """Drain (if still running) and release the worker thread pool.

        A service stuck in ``"draining"`` means a previous :meth:`drain`
        raised part-way (fail-fast batch or commit failure); shutdown then
        just releases resources so the original exception propagates instead
        of being masked by a "cannot drain" error.  The journal is *not*
        rotated on that path — the WAL stays on disk for recovery.
        """
        results = await self.drain() if self._state == "running" else self.results
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        self._state = "closed"
        return results

    # -------------------------------------------------------------------- feed
    async def ingest(self, object_id: str, point: SpatioTemporalPoint) -> None:
        """Feed one event; awaits (never drops) when the shard queue is full.

        With the ingest journal enabled the event is journaled *before* it is
        enqueued — once this call returns, a crashed service replays it.
        """
        shard = self._intake_shard(object_id)
        if self._journal is not None:
            self._journal.append_event(shard, object_id, point)
            self.stats.wal_appended += 1
        await self._enqueue(self._queues[shard], (_EVENT, object_id, point, time.perf_counter()))
        self.stats.events += 1

    async def ingest_many(
        self, events: Iterable[Tuple[str, SpatioTemporalPoint]]
    ) -> int:
        """Feed several events in order; returns the number accepted."""
        accepted = 0
        for object_id, point in events:
            await self.ingest(object_id, point)
            accepted += 1
        return accepted

    async def close_object(self, object_id: str) -> None:
        """End of stream for one object: its open trajectory is sealed.

        The close rides the shard queue behind the object's queued events, so
        it takes effect exactly where the emitter hung up.
        """
        shard = self._intake_shard(object_id)
        if self._journal is not None:
            self._journal.append_close(shard, object_id)
            self.stats.wal_appended += 1
        await self._enqueue(self._queues[shard], (_CLOSE, object_id, None, time.perf_counter()))
        self.stats.closed_objects += 1

    async def evict_sessions(self, target_per_shard: int) -> None:
        """Ask every shard to shrink to ``target_per_shard`` open sessions.

        The eviction request is queued like any event, so it is applied after
        everything already accepted; evicted sessions seal (and annotate)
        their open trajectories exactly like a gap close-out.
        """
        if self._state != "running":
            raise ServiceError(f"cannot evict on a service in state {self._state!r}")
        if target_per_shard < 0:
            raise ConfigurationError("target_per_shard must be non-negative")
        before = self.sessions_evicted
        for queue in self._queues:
            await self._enqueue(queue, (_EVICT, target_per_shard, None, time.perf_counter()))
        # Eviction is fire-and-forget by design; the counter below reflects
        # evictions already performed, not the ones just requested.
        self.metrics.sessions_evicted.inc(max(0, self.sessions_evicted - before))

    # --------------------------------------------------------------- internals
    def _intake_shard(self, object_id: str) -> int:
        if self._state != "running":
            raise ServiceError(
                f"cannot ingest on a service in state {self._state!r}; "
                "start() it first (or stop feeding after drain())"
            )
        return self._ring.shard_for(object_id)

    async def _enqueue(self, queue: "asyncio.Queue[object]", item: _Item) -> None:
        if queue.full():
            # Explicit backpressure: the producer suspends until the shard
            # frees a slot.  Counted so operators can see producers waiting.
            self.stats.backpressure_waits += 1
            self.metrics.backpressure_waits.inc()
        await queue.put(item)

    async def _consume(self, index: int) -> None:
        queue = self._queues[index]
        worker = self._workers[index]
        metrics = worker.metrics
        loop = asyncio.get_running_loop()
        assert self._pool is not None
        stopping = False
        while not stopping:
            head = await queue.get()
            if head is _STOP:
                break
            batch: List[_Item] = [head]  # type: ignore[list-item]
            while len(batch) < self._max_batch:
                try:
                    item = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if item is _STOP:
                    stopping = True
                    break
                batch.append(item)  # type: ignore[arg-type]
            metrics.queue_depth.set(queue.qsize())
            self.stats.batches += 1
            try:
                sealed = await loop.run_in_executor(self._pool, worker.process, batch)
            except _BATCH_ERRORS as error:
                # Per-trajectory failures are already isolated inside the
                # executor (retry/quarantine per the failure policy); an
                # error escaping a whole batch is infrastructure-level.
                # Count it, attach shard + object ids, and route it through
                # the policy: fail_fast surfaces it at drain, isolating
                # policies keep the shard alive for the other objects (a
                # batch replay would be unsafe — the session pass already
                # consumed some events; the WAL still holds them).
                self.stats.errors += 1
                metrics.errors.inc()
                object_ids = sorted(
                    {str(item[1]) for item in batch if item[0] in (_EVENT, _CLOSE)}
                )
                self._failure_log.record_failure("shard_batch", type(error).__name__)
                failure = ServiceError(
                    f"shard {index} failed a batch of {len(batch)} items "
                    f"(objects {object_ids}): {error!r}"
                )
                self._batch_failures.append(failure)
                if not self._config.failure.isolates:
                    raise failure from error
                continue
            finished = time.perf_counter()
            for _, _, _, enqueued in batch:
                self.metrics.ingest_latency.observe(finished - enqueued)
            self._collect(sealed)
            metrics.queue_depth.set(queue.qsize())

    def _collect(self, sealed: List[PipelineResult]) -> None:
        for result in sealed:
            self._order.append((result.trajectory.object_id, len(self._order)))
            self._results.append(result)
            self.stats.results += 1
            if self._on_result is not None:
                self._on_result(result)

    def _commit_with_policy(self) -> None:
        """Commit results, retrying per the failure policy.

        A failed commit rolls back inside the store (see
        ``SemanticTrajectoryStore._commit``), so a retry re-sends the exact
        same batch; under ``fail_fast``/``skip`` the first failure raises and
        the journal (kept by :meth:`drain`) covers recovery.
        """
        policy = self._config.failure
        attempt = 0
        while True:
            attempt += 1
            try:
                self._commit_results()
                return
            except Exception as error:
                retryable = policy.mode == "retry" and attempt <= policy.max_retries
                self._failure_log.record_failure(
                    "service_commit", type(error).__name__, retried=retryable
                )
                if not retryable:
                    raise
                time.sleep(policy.backoff(attempt))

    def _commit_results(self) -> None:
        assert self._store is not None
        ordered = sorted(
            range(len(self._results)), key=lambda position: self._order[position]
        )
        # WAL-replay idempotency: a crash after commit but before the journal
        # rotated replays already-committed trajectories; skip anything the
        # store has, so recovery never duplicates rows.
        fresh = []
        skipped = 0
        for position in ordered:
            result = self._results[position]
            if self._store.has_trajectory(result.trajectory.trajectory_id):
                skipped += 1
                continue
            fresh.append((result.trajectory, result.episodes))
        self._store.save_annotated_trajectories(fresh)
        # Counted only after a successful save, so commit retries do not
        # double-count the same skips.
        self.stats.dedup_skipped += skipped
