"""Unit coverage for the parallel runtime: sharding, snapshot reuse, freezing."""

from __future__ import annotations

import pytest

from repro.core import PipelineConfig, SeMiTriPipeline
from repro.core.config import ParallelConfig
from repro.core.errors import ConfigurationError
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.parallel import GeoContext, ParallelAnnotationRunner, canonical_bytes


def _trajectories(objects: int = 5, per_object: int = 3, length: int = 6):
    trajectories = []
    for obj in range(objects):
        for segment in range(per_object):
            points = [
                SpatioTemporalPoint(100.0 * obj + 5.0 * i, 40.0 * segment, 30.0 * i)
                for i in range(length + obj)  # skewed: later objects are heavier
            ]
            trajectories.append(
                RawTrajectory(points, object_id=f"o{obj}", trajectory_id=f"o{obj}-t{segment}")
            )
    return trajectories


def test_sharding_groups_by_object_and_is_deterministic():
    runner = ParallelAnnotationRunner(workers=2)
    trajectories = _trajectories()
    shards = runner._shard(trajectories)
    again = runner._shard(trajectories)
    assert [(i, [t.trajectory_id for _, t in items]) for i, items in shards] == [
        (i, [t.trajectory_id for _, t in items]) for i, items in again
    ]
    # All trajectories of one object land in the same shard.
    placement = {}
    seen_orders = set()
    for shard_index, items in shards:
        for order, trajectory in items:
            assert order not in seen_orders
            seen_orders.add(order)
            placement.setdefault(trajectory.object_id, set()).add(shard_index)
    assert seen_orders == set(range(len(trajectories)))
    assert all(len(shard_set) == 1 for shard_set in placement.values())
    # Requested parallelism is actually used.
    assert len(shards) > 1


def test_shard_count_never_exceeds_object_count():
    runner = ParallelAnnotationRunner(workers=8)
    trajectories = _trajectories(objects=2)
    shards = runner._shard(trajectories)
    assert len(shards) <= 2


def test_annotate_many_requires_sources_or_context():
    runner = ParallelAnnotationRunner(workers=1)
    with pytest.raises(ConfigurationError):
        runner.annotate_many(_trajectories(objects=1))


def test_runner_defaults_come_from_pipeline_config():
    config = PipelineConfig(parallel=ParallelConfig(workers=3, executor="serial"))
    runner = ParallelAnnotationRunner(config=config)
    assert runner.workers == 3
    assert runner.executor_kind == "serial"
    auto = ParallelAnnotationRunner(workers=2)
    assert auto.executor_kind == "process"
    single = ParallelAnnotationRunner(workers=1)
    assert single.executor_kind == "serial"


def test_empty_batch_returns_empty(annotation_sources):
    runner = ParallelAnnotationRunner(workers=2, executor="serial")
    context = GeoContext.build(annotation_sources, PipelineConfig())
    assert runner.annotate_many([], context=context) == []


def test_context_is_cached_per_sources_and_freezes_indexes(annotation_sources):
    config = PipelineConfig.for_vehicles()
    runner = ParallelAnnotationRunner(config=config, workers=1)
    context = runner.context_for(annotation_sources)
    assert runner.context_for(annotation_sources) is context
    assert annotation_sources.road_network._index.frozen
    assert annotation_sources.regions._index.frozen
    assert annotation_sources.pois._index.frozen
    assert context.available_layers() == ["region", "line", "point"]
    assert context.windowed_matcher() is not None


def test_runner_rejects_context_with_conflicting_config(annotation_sources):
    """Serial and process executors must segment identically: configs must match."""
    context = GeoContext.build(annotation_sources, PipelineConfig.for_vehicles())
    runner = ParallelAnnotationRunner(config=PipelineConfig.for_people(), workers=1)
    with pytest.raises(ConfigurationError):
        runner.annotate_many(_trajectories(objects=1), context=context)


def test_dropped_runner_releases_pool_and_registry(annotation_sources):
    """GC of a never-closed runner stops its workers and clears the fork registry."""
    import gc

    import repro.parallel.runner as runner_mod

    config = PipelineConfig.for_vehicles()
    context = GeoContext.build(annotation_sources, config)
    runner = ParallelAnnotationRunner(config=config, workers=2, executor="process")
    runner.annotate_many(_trajectories(objects=4, per_object=1), context=context)
    pool = runner._pool
    assert pool is not None and len(runner_mod._FORK_CONTEXTS) >= 1
    before = len(runner_mod._FORK_CONTEXTS)
    del runner
    gc.collect()
    assert len(runner_mod._FORK_CONTEXTS) == before - 1
    with pytest.raises(RuntimeError):  # executor was shut down by the finalizer
        pool.submit(int)


def test_engine_rejects_config_conflicting_with_snapshot(annotation_sources):
    """A GeoContext carries its own config; a different explicit one is an error."""
    from repro.streaming import StreamingAnnotationEngine

    context = GeoContext.build(annotation_sources, PipelineConfig.for_vehicles())
    engine = StreamingAnnotationEngine(context)  # snapshot config adopted
    assert engine.config == PipelineConfig.for_vehicles()
    assert StreamingAnnotationEngine(context, config=PipelineConfig.for_vehicles()) is not None
    with pytest.raises(ConfigurationError):
        StreamingAnnotationEngine(context, config=PipelineConfig.for_people())
    with pytest.raises(ConfigurationError):
        # An explicitly requested default config is also a conflict here.
        StreamingAnnotationEngine(context, config=PipelineConfig())


def test_serial_runner_matches_sequential_pipeline(annotation_sources, car_dataset):
    config = PipelineConfig.for_vehicles()
    sequential = SeMiTriPipeline(config).annotate_many(
        car_dataset.trajectories, annotation_sources
    )
    runner = ParallelAnnotationRunner(config=config, workers=4, executor="serial")
    parallel = runner.annotate_many(car_dataset.trajectories, annotation_sources)
    assert canonical_bytes(parallel) == canonical_bytes(sequential)
