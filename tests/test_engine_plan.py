"""Stage-graph engine: plan compilation and executor parity.

The engine's promise is that one compiled :class:`Plan` means one behaviour:
the sequential, process-pool and micro-batch executors must produce
canonically byte-identical results for the same plan — including plans with
skipped layers (missing sources) and custom layer selections — and the
store contents must not depend on whether write-back ran inline or was
deferred to a merged transaction.
"""

from __future__ import annotations

import dataclasses
from typing import List

import pytest

from repro.core import AnnotationSources, PipelineConfig
from repro.core.config import StreamingConfig
from repro.core.errors import ConfigurationError
from repro.core.points import RawTrajectory
from repro.engine import (
    MicroBatchExecutor,
    Plan,
    ProcessPoolExecutor,
    SequentialExecutor,
)
from repro.parallel import GeoContext, canonical_bytes
from repro.store.store import SemanticTrajectoryStore

from test_parallel_parity import _random_multi_user_stream


def _stream_config(apply_cleaning: bool = False, micro_batch_size: int = 5) -> PipelineConfig:
    return dataclasses.replace(
        PipelineConfig.for_people(),
        streaming=StreamingConfig(
            micro_batch_size=micro_batch_size, apply_cleaning=apply_cleaning
        ),
    )


def _ingested(plan: Plan, seed: int, users: int = 2, points: int = 110) -> List[RawTrajectory]:
    streams = _random_multi_user_stream(seed, users=users, points_per_user=points)
    trajectories: List[RawTrajectory] = []
    for object_id, stream in streams.items():
        trajectories.extend(plan.ingest(stream, object_id=object_id))
    return trajectories


# ------------------------------------------------------------------ compiling
def test_plan_compiles_every_available_layer(annotation_sources):
    plan = Plan.compile(annotation_sources, config=PipelineConfig())
    assert plan.stage_names() == [
        "compute_episode",
        "landuse_join",
        "map_match",
        "poi_annotation",
    ]
    assert [stage.name for stage in plan.preprocessing] == ["clean", "identify"]
    assert plan.annotation_layers() == ["region", "line", "point"]
    assert not plan.persist


def test_plan_with_persistence_compiles_store_stages(annotation_sources):
    store = SemanticTrajectoryStore()
    plan = Plan.compile(annotation_sources, config=PipelineConfig(), store=store, persist=True)
    assert plan.stage_names() == [
        "compute_episode",
        "store_episode",
        "landuse_join",
        "map_match",
        "poi_annotation",
        "store_match_result",
    ]
    assert plan.persist
    assert [stage.name for stage in plan.stages if stage.writes_back] == [
        "store_episode",
        "store_match_result",
    ]
    # persist without a store compiles no write-back at all
    bare = Plan.compile(annotation_sources, config=PipelineConfig(), persist=True)
    assert not bare.persist and "store_episode" not in bare.stage_names()
    store.close()


def test_plan_skips_layers_with_missing_sources(region_source):
    sources = AnnotationSources(regions=region_source)
    plan = Plan.compile(sources, config=PipelineConfig())
    assert plan.stage_names() == ["compute_episode", "landuse_join"]
    assert plan.annotation_layers() == ["region"]


def test_plan_layer_selection(annotation_sources):
    plan = Plan.compile(annotation_sources, config=PipelineConfig(), layers=("region",))
    assert plan.stage_names() == ["compute_episode", "landuse_join"]
    with pytest.raises(ConfigurationError):
        Plan.compile(annotation_sources, config=PipelineConfig(), layers=("region", "lines"))


def test_plan_requires_sources_or_annotators():
    with pytest.raises(ConfigurationError):
        Plan.compile()


def test_plan_validate_rejects_unproduced_inputs(annotation_sources):
    plan = Plan.compile(annotation_sources, config=PipelineConfig())
    # Move the episode producer behind its consumers: wiring check must fail.
    broken = dataclasses.replace(plan, stages=tuple(reversed(plan.stages)))
    with pytest.raises(ConfigurationError):
        broken.validate()


def test_plan_describe_renders_dataflow(annotation_sources):
    store = SemanticTrajectoryStore()
    plan = Plan.compile(annotation_sources, config=PipelineConfig(), store=store, persist=True)
    text = plan.describe()
    for name in plan.stage_names() + ["clean", "identify", "episodes", "[write-back]"]:
        assert name in text
    store.close()


def test_plan_from_context_reuses_snapshot(annotation_sources):
    context = GeoContext.build(annotation_sources, PipelineConfig.for_vehicles())
    plan = Plan.from_context(context)
    assert plan.annotators is context.annotators
    assert plan.geo_context() is context
    assert plan.config == PipelineConfig.for_vehicles()


# ----------------------------------------------------------- executor parity
def _sorted_canonical(results) -> bytes:
    return canonical_bytes(sorted(results, key=lambda r: r.trajectory.trajectory_id))


def _run_all_three(plan: Plan, seed: int):
    """One random raw stream through all three executors of the same plan.

    The micro-batch executor consumes the *raw* interleaved event stream
    (its production contract) while the batch executors consume the
    ingested trajectories, so trajectory numbering — including fragments the
    identification step discards — lines up across all three.
    """
    streams = _random_multi_user_stream(seed, users=2, points_per_user=110)
    trajectories: List[RawTrajectory] = []
    for object_id, stream in streams.items():
        trajectories.extend(plan.ingest(stream, object_id=object_id))
    assert trajectories

    sequential = SequentialExecutor().run(plan, trajectories)
    with ProcessPoolExecutor(workers=2) as pool:
        parallel = pool.run(plan, trajectories)
    assert canonical_bytes(parallel) == canonical_bytes(sequential)

    events = sorted(
        ((point.t, object_id, point) for object_id, points in streams.items() for point in points),
        key=lambda event: (event[0], event[1]),
    )
    micro = MicroBatchExecutor(plan)
    streamed = micro.ingest_many((object_id, point) for _, object_id, point in events)
    streamed.extend(micro.close_all())
    assert _sorted_canonical(streamed) == _sorted_canonical(sequential)
    return sequential, parallel, streamed


@pytest.mark.parametrize("seed", [17, 29])
def test_three_executors_byte_identical(seed, annotation_sources):
    """Sequential, process-pool and micro-batch agree byte-for-byte."""
    plan = Plan.compile(annotation_sources, config=_stream_config(apply_cleaning=True))
    _run_all_three(plan, seed)


@pytest.mark.parametrize("missing", ["regions", "road_network", "pois"])
def test_executors_agree_with_skipped_layers(missing, annotation_sources):
    """Parity holds for partial plans: each layer missing in turn."""
    sources = AnnotationSources(
        regions=None if missing == "regions" else annotation_sources.regions,
        road_network=None if missing == "road_network" else annotation_sources.road_network,
        pois=None if missing == "pois" else annotation_sources.pois,
    )
    plan = Plan.compile(sources, config=_stream_config(apply_cleaning=True))
    assert len(plan.annotation_layers()) == 2
    _run_all_three(plan, seed=41)


def test_micro_batch_executor_is_bound_to_its_plan(annotation_sources):
    plan = Plan.compile(annotation_sources, config=_stream_config())
    other = Plan.compile(annotation_sources, config=_stream_config())
    executor = MicroBatchExecutor(plan)
    with pytest.raises(ConfigurationError):
        executor.run(other, [])


def test_every_executor_emits_the_same_latency_vocabulary(annotation_sources):
    """Per-stage timing is emitted by the engine once, for every runtime."""
    from repro.core import SeMiTriPipeline

    store = SemanticTrajectoryStore()
    plan = Plan.compile(
        annotation_sources, config=_stream_config(), store=store, persist=True
    )
    trajectories = _ingested(plan, seed=53, users=1, points=90)
    expected_stages = {
        "compute_episode",
        "store_episode",
        "landuse_join",
        "map_match",
        "store_match_result",
    }

    sequential = SequentialExecutor().run(plan, trajectories)
    merged = SeMiTriPipeline.merge_latencies(sequential)
    assert expected_stages <= set(merged.stages())
    store_rows = store.trajectory_count()
    assert store_rows == len(trajectories)

    micro_store = SemanticTrajectoryStore()
    micro_plan = Plan.compile(
        annotation_sources, config=_stream_config(), store=micro_store, persist=True
    )
    micro = MicroBatchExecutor(micro_plan).run(micro_plan, trajectories)
    micro_merged = SeMiTriPipeline.merge_latencies(micro)
    assert expected_stages <= set(micro_merged.stages())
    assert micro_store.trajectory_count() == store_rows
    store.close()
    micro_store.close()


# ------------------------------------------------------------- store parity
def test_deferred_writeback_matches_inline_rows(annotation_sources):
    """Inline per-trajectory commits and the merged deferred transaction
    leave the store byte-for-byte identical (ids included)."""
    config = _stream_config()
    inline_store = SemanticTrajectoryStore()
    inline_plan = Plan.compile(
        annotation_sources, config=config, store=inline_store, persist=True
    )
    trajectories = _ingested(inline_plan, seed=67)
    SequentialExecutor().run(inline_plan, trajectories)

    deferred_store = SemanticTrajectoryStore()
    deferred_plan = Plan.compile(
        annotation_sources, config=config, store=deferred_store, persist=True
    )
    SequentialExecutor(deferred_writeback=True).run(deferred_plan, trajectories)

    assert deferred_store.trajectory_ids() == inline_store.trajectory_ids()
    assert deferred_store.stop_move_summary() == inline_store.stop_move_summary()
    assert deferred_store.annotation_count() == inline_store.annotation_count()
    for trajectory_id in inline_store.trajectory_ids():
        assert deferred_store.episodes_for(trajectory_id) == inline_store.episodes_for(
            trajectory_id
        )
    inline_store.close()
    deferred_store.close()


def test_inline_writeback_rolls_back_a_failed_trajectory(annotation_sources):
    """A mid-trajectory store failure persists nothing for that trajectory."""
    config = _stream_config()
    store = SemanticTrajectoryStore()
    plan = Plan.compile(annotation_sources, config=config, store=store, persist=True)
    trajectories = _ingested(plan, seed=79, users=1, points=80)
    executor = SequentialExecutor()
    executor.run(plan, trajectories[:1])
    count_after_first = store.trajectory_count()
    episodes_after_first = store.episode_count()
    assert count_after_first == 1
    # Re-persisting the same trajectory fails on the duplicate id; the whole
    # per-trajectory transaction must roll back, leaving the store unchanged.
    from repro.core.errors import StoreError

    with pytest.raises(StoreError):
        executor.run(plan, trajectories[:1])
    assert store.trajectory_count() == count_after_first
    assert store.episode_count() == episodes_after_first
    store.close()


def test_swallowed_per_trajectory_failure_poisons_outer_scope(annotation_sources):
    """A failed inner write-back scope must not commit via an outer scope.

    The engine wraps each trajectory in its own store scope; when a caller
    additionally wraps the batch in ``with store:`` and swallows a
    per-trajectory error, the half-written trajectory cannot be rolled back
    independently — so the outer scope must refuse to commit.
    """
    from repro.core.errors import StoreError

    config = _stream_config()
    store = SemanticTrajectoryStore()
    plan = Plan.compile(annotation_sources, config=config, store=store, persist=True)
    trajectories = _ingested(plan, seed=79, users=1, points=80)
    executor = SequentialExecutor()
    executor.run(plan, trajectories[:1])
    with pytest.raises(StoreError, match="rolled back"):
        with store:
            with pytest.raises(StoreError):
                executor.run(plan, trajectories[:1])  # duplicate: inner scope fails
    assert store.trajectory_count() == 1  # only the first, committed run survives
    store.close()


def test_plan_cache_distinguishes_sources(annotation_sources):
    """A plan cached without sources must not shadow one compiled with them."""
    from repro.core import SeMiTriPipeline

    pipeline = SeMiTriPipeline(PipelineConfig.for_vehicles())
    bundle = pipeline.build_annotators(annotation_sources)
    bare = pipeline.compile_plan(annotators=bundle)
    assert bare.sources is None
    sourced = pipeline.compile_plan(annotation_sources, annotators=bundle)
    assert sourced.sources is annotation_sources
    assert sourced.geo_context() is not None  # would raise on the bare plan
    assert pipeline.compile_plan(annotation_sources, annotators=bundle) is sourced
    assert pipeline.compile_plan(annotators=bundle) is bare
