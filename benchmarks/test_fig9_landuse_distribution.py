"""Figure 9: landuse category distribution for taxi trajectories, moves and stops.

The paper reports that taxi GPS records concentrate in building areas (1.2)
and transportation areas (1.3) - together about 83 % of the points - and that
the region-based representation achieves ~99.7 % storage compression.  This
benchmark reproduces the three distribution columns (per-GPS-point, per-move,
per-stop), checks the building+transport dominance, and reports the
compression achieved by the merged region annotation.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analytics.compression import compression_report
from repro.analytics.distributions import cumulative_share, normalize_counts
from repro.analytics.reporting import render_table
from repro.preprocessing.stops import segment_many
from repro.regions.annotator import RegionAnnotator


def test_fig9_landuse_distribution(benchmark, world, taxi_dataset, vehicle_pipeline):
    annotator = RegionAnnotator(world.region_source(), vehicle_pipeline.config.region)
    episodes = segment_many(taxi_dataset.trajectories, vehicle_pipeline.config.stop_move)
    moves = [episode for episode in episodes if episode.is_move]
    stops = [episode for episode in episodes if episode.is_stop]

    def compute_distributions():
        return {
            "trajectory": annotator.point_category_distribution(taxi_dataset.trajectories),
            "move": annotator.episode_category_distribution(moves),
            "stop": annotator.episode_category_distribution(stops),
        }

    distributions = benchmark(compute_distributions)

    categories = sorted(
        set().union(*[set(counts) for counts in distributions.values()])
    )
    rows = []
    for category in categories:
        row = [category]
        for column in ("trajectory", "move", "stop"):
            share = normalize_counts(distributions[column]).get(category, 0.0)
            row.append(f"{share:.4f}")
        rows.append(row)
    header = (
        f"Figure 9 - Landuse category distribution for taxi data\n"
        f"trajectories (#{len(taxi_dataset.trajectories)}) "
        f"moves (#{len(moves)}) stops (#{len(stops)})"
    )
    text = render_table(["category", "trajectory", "move", "stop"], rows, title=header)

    # Storage compression of the region-annotated representation (Section 5.2).
    structured = [
        annotator.annotate_trajectory(trajectory) for trajectory in taxi_dataset.trajectories
    ]
    report = compression_report(taxi_dataset.gps_record_count, structured)
    text += (
        f"\n\nStorage compression: {taxi_dataset.gps_record_count:,} GPS records -> "
        f"{report.semantic_tuples:,} region tuples "
        f"({report.as_percentage():.1f}% compression)"
    )
    save_result("fig9_landuse_distribution", text)

    point_share = cumulative_share(distributions["trajectory"], ["1.2", "1.3"])
    assert point_share > 0.6, "building + transport areas should dominate taxi GPS points"
    assert report.as_percentage() > 90.0
