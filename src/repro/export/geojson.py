"""GeoJSON serialisation of trajectories, episodes and semantic trajectories.

The functions return plain Python dictionaries following the GeoJSON
specification (FeatureCollection / Feature / LineString / Point), so they can
be passed to ``json.dumps`` directly or consumed by any mapping library.
Coordinates are emitted exactly as stored (the synthetic world is planar
metres; real data would be lon/lat).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.episodes import Episode
from repro.core.points import RawTrajectory
from repro.core.trajectory import StructuredSemanticTrajectory


def _feature(geometry: Dict[str, Any], properties: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": "Feature", "geometry": geometry, "properties": properties}


def _line_string(coordinates: Sequence[Sequence[float]]) -> Dict[str, Any]:
    return {"type": "LineString", "coordinates": [list(pair) for pair in coordinates]}


def _point(x: float, y: float) -> Dict[str, Any]:
    return {"type": "Point", "coordinates": [x, y]}


def raw_trajectory_to_geojson(trajectory: RawTrajectory) -> Dict[str, Any]:
    """One LineString feature for the whole raw trajectory."""
    coordinates = [(point.x, point.y) for point in trajectory]
    properties = {
        "trajectory_id": trajectory.trajectory_id,
        "object_id": trajectory.object_id,
        "start_time": trajectory.start_time,
        "end_time": trajectory.end_time,
        "point_count": len(trajectory),
    }
    return {"type": "FeatureCollection", "features": [_feature(_line_string(coordinates), properties)]}


def episodes_to_geojson(episodes: Sequence[Episode]) -> Dict[str, Any]:
    """Stops as Point features (their centre), moves as LineString features."""
    features: List[Dict[str, Any]] = []
    for episode in episodes:
        properties: Dict[str, Any] = {
            "kind": episode.kind.value,
            "trajectory_id": episode.trajectory.trajectory_id,
            "time_in": episode.time_in,
            "time_out": episode.time_out,
            "point_count": len(episode),
        }
        for annotation in episode.annotations:
            label = getattr(annotation, "label", None)
            value = getattr(annotation, "value", None)
            if label and value is not None:
                properties[label] = value
            category = getattr(annotation, "category", None)
            if category is not None:
                properties.setdefault("category", category)
        if episode.is_stop:
            center = episode.center()
            geometry = _point(center.x, center.y)
        else:
            geometry = _line_string([(point.x, point.y) for point in episode.points])
        features.append(_feature(geometry, properties))
    return {"type": "FeatureCollection", "features": features}


def structured_trajectory_to_geojson(
    structured: StructuredSemanticTrajectory,
    include_unplaced: bool = True,
) -> Dict[str, Any]:
    """One feature per semantic episode record.

    Records linked to a point-like place become Point features at the place
    location; records linked to a region or road segment use the place's
    bounding-box centre; records without a place (partial annotation) become
    property-only features with a null geometry unless ``include_unplaced`` is
    false.
    """
    features: List[Dict[str, Any]] = []
    for index, record in enumerate(structured):
        properties: Dict[str, Any] = {
            "sequence": index,
            "kind": record.kind.value,
            "time_in": record.time_in,
            "time_out": record.time_out,
            "duration": record.duration,
        }
        if record.place is not None:
            properties["place_id"] = record.place.place_id
            properties["place_name"] = record.place.name
            properties["category"] = record.place.category
        if record.transport_mode is not None:
            properties["transport_mode"] = record.transport_mode
        if record.activity is not None:
            properties["activity"] = record.activity

        geometry: Optional[Dict[str, Any]]
        if record.place is not None:
            center = record.place.bounding_box().center
            geometry = _point(center.x, center.y)
        elif record.source_episode is not None:
            center = record.source_episode.center()
            geometry = _point(center.x, center.y)
        else:
            geometry = None
        if geometry is None and not include_unplaced:
            continue
        features.append(_feature(geometry if geometry is not None else _point(0.0, 0.0), properties))
    return {
        "type": "FeatureCollection",
        "features": features,
        "properties": {
            "trajectory_id": structured.trajectory_id,
            "object_id": structured.object_id,
            "record_count": len(structured),
        },
    }
