"""Sharded parallel annotation runtime.

SeMiTri annotates each moving object's trajectories independently, which
makes per-object sharding the natural scale-out axis.  This package supplies
the pieces that turn the single-core batch pipeline into a multi-core
runtime without changing a single output byte:

* :class:`~repro.parallel.context.GeoContext` — an immutable snapshot of the
  annotation sources, configuration and prebuilt layer annotators (frozen
  R-trees, POI grid, HMM), built once and shared with workers via ``fork``
  copy-on-write, attached zero-copy through ``multiprocessing.shared_memory``
  or pickled once per worker;
* :mod:`~repro.parallel.shared` — :class:`SharedArrayBundle` and the
  :func:`share_context`/:func:`attach_context` pair that move the snapshot's
  contiguous numpy blocks (flat-index levels, CSR columns, coordinate
  arrays) into one shared segment workers map read-only;
* :class:`~repro.parallel.runner.ParallelAnnotationRunner` — partitions a
  trajectory batch by object id (size-aware bin-packing or work-stealing
  dispatch), annotates the shards on a process pool (or an in-process serial
  executor) and merges the results back into input order;
* :class:`~repro.parallel.store_writer.ShardedStoreWriter` — buffers
  per-shard store rows and commits the merged batch in one transaction with
  single-writer row ordering.

:mod:`repro.parallel.canonical` defines the byte-level equality the runner is
tested against.
"""

from repro.parallel.canonical import (
    canonical_annotation,
    canonical_bytes,
    canonical_digest,
    canonical_episode,
    canonical_result,
    canonical_structured,
)
from repro.parallel.context import GeoContext
from repro.parallel.runner import ParallelAnnotationRunner
from repro.parallel.shared import (
    SharedArrayBundle,
    SharedContextSpec,
    SharedGeoContext,
    SharedManifest,
    attach_context,
    share_context,
)
from repro.parallel.store_writer import ShardedStoreWriter

__all__ = [
    "GeoContext",
    "ParallelAnnotationRunner",
    "SharedArrayBundle",
    "SharedContextSpec",
    "SharedGeoContext",
    "SharedManifest",
    "ShardedStoreWriter",
    "attach_context",
    "canonical_annotation",
    "canonical_bytes",
    "canonical_digest",
    "canonical_episode",
    "canonical_result",
    "canonical_structured",
    "share_context",
]
