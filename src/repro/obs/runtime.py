"""The per-plan telemetry runtime: tracer + metrics registry + exporters.

A :class:`Telemetry` instance is what a compiled
:class:`~repro.engine.plan.Plan` carries: executors ask it for trajectory
traces and counter bundles, and hand every finished
:class:`~repro.core.pipeline.PipelineResult` to :meth:`Telemetry.collect`,
which folds the result's latency samples into the registry's stage-latency
backend and *adopts* its spans into the parent-process tracer — including
spans that were emitted inside pool workers and rode back attached to the
result.

The disabled path is a single module-level :data:`DISABLED` singleton whose
every hook returns ``None`` immediately — no tracer, no registry, no
allocation — so plans compiled with the default configuration behave exactly
like the pre-telemetry engine.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.config import ObservabilityConfig
from repro.obs.metrics import EngineCounters, MetricsRegistry, StreamingMetrics
from repro.obs.trace import Tracer, TrajectoryTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.pipeline import PipelineResult


class Telemetry:
    """Observability runtime selected by ``PipelineConfig.observability``."""

    def __init__(self, config: ObservabilityConfig):
        self.config = config
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if config.enabled and config.metrics else None
        )
        self.tracer: Optional[Tracer] = (
            Tracer() if config.enabled and config.tracing else None
        )

    @classmethod
    def from_config(cls, config: ObservabilityConfig) -> "Telemetry":
        """The runtime for a configuration — the shared no-op when disabled."""
        if not config.enabled:
            return DISABLED
        return cls(config)

    # -------------------------------------------------------------- selection
    @property
    def enabled(self) -> bool:
        """Whether any telemetry is collected at all."""
        return self.metrics is not None or self.tracer is not None

    @property
    def tracing_enabled(self) -> bool:
        """Whether per-trajectory spans are emitted."""
        return self.tracer is not None

    @property
    def metrics_enabled(self) -> bool:
        """Whether the metrics registry is maintained."""
        return self.metrics is not None

    # ------------------------------------------------------------------ hooks
    def start_trace(self, trace_id: str) -> Optional[TrajectoryTrace]:
        """Open a trajectory trace, or ``None`` when tracing is off."""
        if self.tracer is None:
            return None
        return self.tracer.start_trace(trace_id)

    def collect(self, result: "PipelineResult") -> None:
        """Absorb one finished trajectory: latency samples and spans.

        Called exactly once per result, always in the parent process — the
        sequential executor per trajectory, the shard merge per merged
        result, the micro-batch executor per sealed trajectory.  Spans
        produced by a worker-side tracer are re-parented here: ids are
        remapped into this tracer's id space with the root/stage links
        preserved, and ``result.spans`` is replaced with the adopted copies
        so exports and results tell one consistent story.
        """
        if self.metrics is not None:
            self.metrics.observe_latency(result.latency)
        if self.tracer is not None and result.spans:
            result.spans = self.tracer.adopt(result.spans)

    def engine_counters(self, executor: str) -> Optional[EngineCounters]:
        """Throughput counters for one executor kind, or ``None`` when off."""
        if self.metrics is None:
            return None
        return EngineCounters(self.metrics, executor)

    def streaming_metrics(self) -> Optional[StreamingMetrics]:
        """Session-manager metric bundle, or ``None`` when metrics are off."""
        if self.metrics is None:
            return None
        return StreamingMetrics(self.metrics)

    # -------------------------------------------------------------- exporting
    def summary(self) -> str:
        """Human-readable metrics + span summary (empty string when disabled)."""
        parts = []
        if self.metrics is not None:
            parts.append(self.metrics.summary())
        if self.tracer is not None:
            parts.append(
                f"tracing: {len(self.tracer.spans)} spans across "
                f"{len(self.tracer.traces())} traces"
            )
        return "\n\n".join(parts)

    def export(self, directory: Optional[str] = None) -> Dict[str, str]:
        """Run the configured exporters; returns exporter name -> artefact.

        ``"jsonl"`` and ``"prometheus"`` write files under ``directory`` (or
        ``config.export_path``, or the CWD) and map to the written path;
        ``"summary"`` maps to the rendered table itself.
        """
        from repro.obs.exporters import JsonlExporter, PrometheusExporter

        artefacts: Dict[str, str] = {}
        if not self.enabled:
            return artefacts
        base = Path(directory or self.config.export_path or ".")
        for name in self.config.exporters:
            if name == "jsonl":
                path = base / "telemetry.jsonl"
                JsonlExporter(path).export(self)
                artefacts[name] = str(path)
            elif name == "prometheus":
                path = base / "telemetry.prom"
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(PrometheusExporter().render(self), encoding="utf-8")
                artefacts[name] = str(path)
            elif name == "summary":
                artefacts[name] = self.summary()
        return artefacts


#: The shared zero-overhead runtime plans carry when observability is off.
DISABLED = Telemetry(ObservabilityConfig())
