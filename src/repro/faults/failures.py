"""Failure bookkeeping: per-trajectory failure records and the failure log.

The executors turn stage exceptions into data here.  A retried-then-successful
trajectory carries its :class:`FailureEvent` history on the result
(``PipelineResult.fault_events``); an exhausted or poison trajectory becomes a
:class:`TrajectoryFailure` that the dead-letter quarantine absorbs.  One
:class:`FailureLog` per run reconciles everything — counters for tests, the
metrics registry for dashboards, and the store for the quarantine table.

Counting rule: failure events are counted exactly once, at the parent-side
collection points (sequential collect, ``merge_shard_results``, micro-batch
finish, service drain).  Worker processes only *accumulate* events onto the
objects they return; their own logs are never read.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.config import FailurePolicy
    from repro.core.points import RawTrajectory
    from repro.obs.metrics import FaultMetrics, MetricsRegistry
    from repro.store.store import SemanticTrajectoryStore

__all__ = [
    "FailureEvent",
    "TrajectoryFailure",
    "FailureLog",
    "tag_failure_stage",
    "failure_stage",
]

#: Attribute used to remember which stage an in-flight exception came from.
_STAGE_ATTR = "_semitri_failed_stage"


def tag_failure_stage(error: BaseException, stage: str) -> None:
    """Remember ``stage`` on ``error`` (first tag wins; never raises)."""
    try:
        if getattr(error, _STAGE_ATTR, None) is None:
            setattr(error, _STAGE_ATTR, stage)
    except Exception:  # noqa: BLE001 - exotic exception types without __dict__
        pass


def failure_stage(error: BaseException, default: str = "unknown") -> str:
    """The stage ``error`` was tagged with, or ``default``."""
    stage = getattr(error, _STAGE_ATTR, None)
    return stage if isinstance(stage, str) and stage else default


@dataclass(frozen=True)
class FailureEvent:
    """One failed attempt at one trajectory: where, what, and which try."""

    stage: str
    kind: str
    attempt: int
    error: str = ""


@dataclass
class TrajectoryFailure:
    """A trajectory the policy gave up on — the quarantine's input record.

    Crosses process boundaries, so ``exception`` (kept for in-process
    re-raising by single-item paths) is stripped to ``None`` before a worker
    pickles the record back to the parent.
    """

    trajectory: "RawTrajectory"
    stage: str
    error: str
    attempts: int
    events: List[FailureEvent] = field(default_factory=list)
    exception: Optional[BaseException] = None

    @property
    def object_id(self) -> str:
        return self.trajectory.object_id


class FailureLog:
    """Run-scoped reconciliation point for every failure event.

    Thread-safe (the service's shard threads share one instance).  Counters
    are plain integers so tests reconcile exactly; when a metrics registry is
    attached the same increments flow into ``failures_total{stage,kind}``,
    ``retries_total``, ``quarantined_total`` and ``wal_replayed_total``.
    Quarantined trajectories write through to the store when one is bound,
    or buffer until :meth:`flush_to_store` (the service drains shard-thread
    quarantines into its store on the event loop thread).
    """

    def __init__(
        self,
        policy: "FailurePolicy",
        store: Optional["SemanticTrajectoryStore"] = None,
        registry: Optional["MetricsRegistry"] = None,
    ):
        self.policy = policy
        self._store = store
        self._lock = threading.Lock()
        self._pending_store: List[TrajectoryFailure] = []
        self.failures = 0
        self.retries = 0
        self.quarantined = 0
        self.wal_replayed = 0
        self.worker_losses = 0
        self.quarantine_rows: List[int] = []
        self._metrics: Optional["FaultMetrics"] = None
        if registry is not None:
            from repro.obs.metrics import FaultMetrics

            self._metrics = FaultMetrics(registry)

    # -------------------------------------------------------------- recording
    def record_failure(self, stage: str, kind: str, retried: bool = False) -> None:
        """Count one failure event (and optionally the retry that followed)."""
        with self._lock:
            self.failures += 1
            if retried:
                self.retries += 1
        if self._metrics is not None:
            self._metrics.failure(stage, kind)
            if retried:
                self._metrics.retries.inc()

    def record_worker_loss(self) -> None:
        """Count one lost pool worker (``BrokenExecutor`` recovery)."""
        with self._lock:
            self.worker_losses += 1
        if self._metrics is not None:
            self._metrics.worker_losses.inc()

    def record_wal_replayed(self, count: int) -> None:
        """Count journal records replayed during service recovery."""
        if count <= 0:
            return
        with self._lock:
            self.wal_replayed += count
        if self._metrics is not None:
            self._metrics.wal_replayed.inc(count)

    def absorb_result(self, result: object) -> None:
        """Count the failure history a retried-then-successful result carries."""
        events = getattr(result, "fault_events", None)
        if not events:
            return
        for event in events:
            # Every event on a *successful* result was followed by a retry.
            self.record_failure(event.stage, event.kind, retried=True)

    # ------------------------------------------------------------- quarantine
    def quarantine(self, failure: TrajectoryFailure) -> None:
        """Count and persist (or buffer) one exhausted/poison trajectory."""
        for index, event in enumerate(failure.events):
            # The last attempt was terminal — no retry followed it.
            self.record_failure(
                event.stage, event.kind, retried=index < len(failure.events) - 1
            )
        if not failure.events:
            self.record_failure(failure.stage, "unknown")
        with self._lock:
            self.quarantined += 1
        if self._metrics is not None:
            self._metrics.quarantined.inc()
        if self._store is not None:
            rows = self._store.save_quarantined([failure])
            with self._lock:
                self.quarantine_rows.extend(rows)
        else:
            with self._lock:
                self._pending_store.append(failure)

    def flush_to_store(self, store: "SemanticTrajectoryStore") -> List[int]:
        """Persist buffered quarantines (used by stores bound after the fact)."""
        with self._lock:
            pending, self._pending_store = self._pending_store, []
        if not pending:
            return []
        rows = store.save_quarantined(pending)
        with self._lock:
            self.quarantine_rows.extend(rows)
        return rows

    @property
    def pending_quarantines(self) -> List[TrajectoryFailure]:
        """Quarantines not yet persisted (no store bound)."""
        with self._lock:
            return list(self._pending_store)

    def drain_pending(self) -> List[TrajectoryFailure]:
        """Pop the buffered quarantines (shard workers ship them to the parent).

        Unlike :attr:`pending_quarantines` this *clears* the buffer: the
        process transport's workers call it after every frame so dead letters
        stream to the parent incrementally, which then quarantines them on its
        own log (the single counting point per the module counting rule).
        """
        with self._lock:
            pending, self._pending_store = self._pending_store, []
        return pending

    def snapshot(self) -> dict:
        """Counter snapshot for health endpoints and test assertions."""
        with self._lock:
            return {
                "failures": self.failures,
                "retries": self.retries,
                "quarantined": self.quarantined,
                "wal_replayed": self.wal_replayed,
                "worker_losses": self.worker_losses,
            }
