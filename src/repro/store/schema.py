"""Relational schema of the semantic trajectory store.

Four tables mirror the paper's dedicated PostGIS tables:

* ``gps_records``      — raw fixes, keyed by trajectory and sequence index;
* ``trajectories``     — one row per raw trajectory with summary statistics;
* ``episodes``         — stop/move episodes with their point range and times;
* ``annotations``      — annotations attached to episodes (place links and
  value annotations), one row per annotation.

A fifth, operational table backs the fault-tolerance layer:

* ``quarantine``       — dead-lettered trajectories the failure policy gave
  up on, carrying the failing stage, the exception repr, the attempt count
  and the raw GPS events (JSON) so a fixed pipeline can replay them.
"""

from __future__ import annotations

from typing import Tuple

SCHEMA_STATEMENTS: Tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS trajectories (
        trajectory_id TEXT PRIMARY KEY,
        object_id     TEXT NOT NULL,
        start_time    REAL NOT NULL,
        end_time      REAL NOT NULL,
        point_count   INTEGER NOT NULL,
        path_length   REAL NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS gps_records (
        trajectory_id TEXT NOT NULL,
        seq           INTEGER NOT NULL,
        x             REAL NOT NULL,
        y             REAL NOT NULL,
        t             REAL NOT NULL,
        PRIMARY KEY (trajectory_id, seq),
        FOREIGN KEY (trajectory_id) REFERENCES trajectories(trajectory_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS episodes (
        episode_id    INTEGER PRIMARY KEY AUTOINCREMENT,
        trajectory_id TEXT NOT NULL,
        kind          TEXT NOT NULL CHECK (kind IN ('stop', 'move')),
        start_index   INTEGER NOT NULL,
        end_index     INTEGER NOT NULL,
        time_in       REAL NOT NULL,
        time_out      REAL NOT NULL,
        center_x      REAL,
        center_y      REAL,
        FOREIGN KEY (trajectory_id) REFERENCES trajectories(trajectory_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS annotations (
        annotation_id INTEGER PRIMARY KEY AUTOINCREMENT,
        episode_id    INTEGER NOT NULL,
        kind          TEXT NOT NULL,
        place_id      TEXT,
        category      TEXT,
        label         TEXT,
        value         TEXT,
        confidence    REAL NOT NULL DEFAULT 1.0,
        FOREIGN KEY (episode_id) REFERENCES episodes(episode_id)
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS quarantine (
        quarantine_id  INTEGER PRIMARY KEY AUTOINCREMENT,
        object_id      TEXT NOT NULL,
        trajectory_id  TEXT NOT NULL,
        stage          TEXT NOT NULL,
        error          TEXT NOT NULL,
        attempts       INTEGER NOT NULL,
        quarantined_at REAL NOT NULL,
        events         TEXT NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_gps_trajectory ON gps_records(trajectory_id)",
    "CREATE INDEX IF NOT EXISTS idx_episodes_trajectory ON episodes(trajectory_id)",
    "CREATE INDEX IF NOT EXISTS idx_episodes_kind ON episodes(kind)",
    "CREATE INDEX IF NOT EXISTS idx_annotations_episode ON annotations(episode_id)",
    "CREATE INDEX IF NOT EXISTS idx_annotations_category ON annotations(category)",
    "CREATE INDEX IF NOT EXISTS idx_quarantine_object ON quarantine(object_id)",
)
