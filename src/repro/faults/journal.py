"""Crash-safe ingest journal: a per-shard write-ahead log for the service.

The service appends every accepted event/close to the journal *before*
enqueueing it, in JSON-line records fsync'd in batches.  If the process dies
before drain commits, the next service pointed at the same directory finds
the orphaned files, replays their records through the normal ingest path, and
discards them.  A successful drain rotates (deletes) the journal — at that
point the store holds everything durably.

Records carry a stable ``origin`` identity (``e<epoch>:<shard>:<seq>``).
Replayed records are re-journaled *with their original origin*, so a crash in
the middle of replay dedups on the next recovery instead of duplicating
events.  Idempotency against the store itself comes from committed-trajectory
dedup at drain time (see ``AnnotationService._commit_results``).
"""

from __future__ import annotations

import json
import math
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, IO, List, Optional, Tuple

from repro.core.errors import ServiceError
from repro.core.points import SpatioTemporalPoint

__all__ = ["JournalRecord", "IngestJournal", "ObjectIdEncoder", "encode_point_fast"]

_FILE_PATTERN = re.compile(r"^shard-(\d+)\.e(\d+)\.wal$")
_ORIGIN_PATTERN = re.compile(r"^e(\d+):(\d+):(\d+)$")

# Data-only durability is exactly what an append-only WAL needs: fdatasync
# skips the metadata-only flush (mtime etc.) and is measurably cheaper on
# ext4; platforms without it (macOS) fall back to full fsync.
_sync_file = getattr(os, "fdatasync", os.fsync)


class ObjectIdEncoder:
    """JSON-encodes object ids with a bounded cache.

    The hot append path runs once per event and ``json.dumps`` dominates its
    cost otherwise; emitters reuse a small set of ids, so a per-emitter cache
    pays for itself immediately.  Shared by the journal's fast path and the
    process transport's IPC frame encoder (same wire discipline, same cache
    bound).
    """

    _MAX_CACHED = 4096

    def __init__(self) -> None:
        self._cache: Dict[str, str] = {}

    def encode(self, object_id: str) -> str:
        encoded = self._cache.get(object_id)
        if encoded is None:
            if len(self._cache) >= self._MAX_CACHED:
                self._cache.clear()
            encoded = self._cache[object_id] = json.dumps(object_id)
        return encoded


def encode_point_fast(x: float, y: float, t: float) -> Optional[str]:
    """``"{x},{y},{t}"`` as valid JSON when the fast path applies, else ``None``.

    The fast path holds for builtin finite floats: ``json`` encodes those with
    ``float.__repr__``, so string formatting is byte-identical to
    ``json.dumps`` at a fraction of the cost.  Non-float numerics (numpy
    scalars) and non-finite values fall back to the caller's full encoder.
    """
    if (
        type(x) is float
        and type(y) is float
        and type(t) is float
        and math.isfinite(x)
        and math.isfinite(y)
        and math.isfinite(t)
    ):
        return f"{x!r},{y!r},{t!r}"
    return None


@dataclass(frozen=True)
class JournalRecord:
    """One journaled ingest operation, identified by its ``origin``."""

    origin: str
    kind: str  # "event" or "close"
    object_id: str
    x: float = 0.0
    y: float = 0.0
    t: float = 0.0

    def point(self) -> SpatioTemporalPoint:
        return SpatioTemporalPoint(x=self.x, y=self.y, t=self.t)

    def to_line(self) -> str:
        if self.kind == "event":
            payload = [self.origin, self.kind, self.object_id, self.x, self.y, self.t]
        else:
            payload = [self.origin, self.kind, self.object_id]
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_line(cls, line: str) -> Optional["JournalRecord"]:
        """Parse one journal line; ``None`` for a torn/partial final line."""
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(payload, list) or len(payload) < 3:
            return None
        origin, kind, object_id = payload[0], payload[1], payload[2]
        if kind == "event":
            if len(payload) != 6:
                return None
            return cls(
                origin=origin,
                kind=kind,
                object_id=str(object_id),
                x=float(payload[3]),
                y=float(payload[4]),
                t=float(payload[5]),
            )
        if kind == "close" and len(payload) == 3:
            return cls(origin=origin, kind=kind, object_id=str(object_id))
        return None

    def sort_key(self) -> Tuple[int, int, int]:
        match = _ORIGIN_PATTERN.match(self.origin)
        if match is None:
            return (0, 0, 0)
        return (int(match.group(1)), int(match.group(2)), int(match.group(3)))


class IngestJournal:
    """Per-shard write-ahead log with group-commit fsync and epoch rotation.

    Opening a journal scans its directory for files left by a previous
    (crashed) epoch and exposes their surviving records as
    :attr:`pending_records`; the new epoch's own files are created alongside.
    After the owner has replayed and re-journaled the pending records it calls
    :meth:`discard_recovered` to remove the old files.  :meth:`rotate` after a
    successful drain deletes the current epoch's files too — the journal is
    only ever non-empty between an append and the next durable commit.
    """

    def __init__(self, directory: str, shards: int, fsync_batch: int = 1024):
        if shards < 1:
            raise ServiceError("journal needs at least one shard")
        if fsync_batch < 1:
            raise ServiceError("journal fsync batch must be at least 1")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._shards = shards
        self._fsync_batch = fsync_batch
        self._closed = False

        recovered = self._scan_existing()
        self._recovered_files = [path for path, _ in recovered]
        self.pending_records = self._dedup(
            [record for _, records in recovered for record in records]
        )
        epochs = [
            int(match.group(2))
            for path, _ in recovered
            if (match := _FILE_PATTERN.match(path.name)) is not None
        ]
        self._epoch = (max(epochs) + 1) if epochs else 1

        self._files: List[IO[str]] = []
        self._paths: List[Path] = []
        self._sequences = [0] * shards
        self._unsynced = [0] * shards
        for shard in range(shards):
            path = self._directory / f"shard-{shard}.e{self._epoch}.wal"
            self._paths.append(path)
            self._files.append(path.open("a", encoding="utf-8"))
        self.appended = 0
        # JSON-encoded object ids, cached per emitter: the hot append path
        # runs once per event and json.dumps dominates its cost otherwise.
        self._encoder = ObjectIdEncoder()

    # ------------------------------------------------------------------ scan
    def _scan_existing(self) -> List[Tuple[Path, List[JournalRecord]]]:
        found: List[Tuple[Path, List[JournalRecord]]] = []
        for path in sorted(self._directory.glob("shard-*.wal")):
            if _FILE_PATTERN.match(path.name) is None:
                continue
            records: List[JournalRecord] = []
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    record = JournalRecord.from_line(line)
                    if record is not None:
                        records.append(record)
            found.append((path, records))
        return found

    @staticmethod
    def _dedup(records: List[JournalRecord]) -> List[JournalRecord]:
        seen: Dict[str, JournalRecord] = {}
        for record in records:
            # Keep-first: a replayed record re-journaled under its original
            # origin must not double-count against the original.
            seen.setdefault(record.origin, record)
        return sorted(seen.values(), key=JournalRecord.sort_key)

    # ---------------------------------------------------------------- append
    def _write_line(self, shard: int, line: str) -> None:
        if self._closed:
            raise ServiceError("journal is closed")
        handle = self._files[shard]
        handle.write(line + "\n")
        self.appended += 1
        self._unsynced[shard] += 1
        if self._unsynced[shard] >= self._fsync_batch:
            handle.flush()
            _sync_file(handle.fileno())
            self._unsynced[shard] = 0

    def _append(self, shard: int, record: JournalRecord) -> None:
        self._write_line(shard, record.to_line())

    def _next_origin(self, shard: int) -> str:
        self._sequences[shard] += 1
        return f"e{self._epoch}:{shard}:{self._sequences[shard]}"

    def append_event(self, shard: int, object_id: str, point: SpatioTemporalPoint) -> str:
        """Journal one accepted event; returns its origin id."""
        origin = self._next_origin(shard)
        x, y, t = point.x, point.y, point.t
        fields = encode_point_fast(x, y, t)
        if fields is not None:
            # Fast path, byte-identical to JournalRecord.to_line(): origins
            # only hold [e0-9:] characters and json encodes finite floats with
            # float.__repr__, so only the object id needs real JSON encoding.
            encoded = self._encoder.encode(object_id)
            self._write_line(shard, f'["{origin}","event",{encoded},{fields}]')
        else:
            self._append(
                shard,
                JournalRecord(
                    origin=origin, kind="event", object_id=object_id, x=x, y=y, t=t
                ),
            )
        return origin

    def append_close(self, shard: int, object_id: str) -> str:
        """Journal one explicit object close; returns its origin id."""
        origin = self._next_origin(shard)
        self._append(shard, JournalRecord(origin=origin, kind="close", object_id=object_id))
        return origin

    def append_replayed(self, shard: int, record: JournalRecord) -> None:
        """Re-journal a recovered record, preserving its original origin."""
        self._append(shard, record)

    def records_for_shard(self, shard: int) -> List[JournalRecord]:
        """The current epoch's surviving records for one shard, in append order.

        Used by worker-loss recovery: the parent re-reads the shard's WAL file
        to rebuild a dead worker's stream.  Appends are flushed first so the
        file holds everything accepted so far; keep-first dedup collapses
        records that were re-journaled under their original origin, and the
        origin sort restores append order (older epochs were re-journaled
        before any new-epoch traffic).
        """
        if self._closed:
            raise ServiceError("journal is closed")
        handle = self._files[shard]
        handle.flush()
        records: List[JournalRecord] = []
        with self._paths[shard].open("r", encoding="utf-8") as reader:
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                record = JournalRecord.from_line(line)
                if record is not None:
                    records.append(record)
        return self._dedup(records)

    # ------------------------------------------------------------ durability
    def sync(self) -> None:
        """Flush and fsync every shard file with unsynced appends."""
        if self._closed:
            return
        for shard, handle in enumerate(self._files):
            if self._unsynced[shard]:
                handle.flush()
                _sync_file(handle.fileno())
                self._unsynced[shard] = 0

    def discard_recovered(self) -> None:
        """Delete the previous epoch's files (after replay is re-journaled)."""
        for path in self._recovered_files:
            path.unlink(missing_ok=True)
        self._recovered_files = []

    def rotate(self) -> None:
        """Drop the current epoch's files — the store now holds everything."""
        if self._closed:
            return
        for shard, handle in enumerate(self._files):
            handle.close()
            self._paths[shard].unlink(missing_ok=True)
            self._files[shard] = self._paths[shard].open("a", encoding="utf-8")
            self._sequences[shard] = 0
            self._unsynced[shard] = 0

    def close(self) -> None:
        if self._closed:
            return
        self.sync()
        for shard, handle in enumerate(self._files):
            handle.close()
            # An empty file carries no recovery information; leaving it would
            # only grow the next scan.
            if self._sequences[shard] == 0:
                self._paths[shard].unlink(missing_ok=True)
        self._closed = True

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def directory(self) -> Path:
        return self._directory
