"""Multi-core scaling of the sharded parallel annotation runner.

Annotates a scalability-style workload (many objects, full annotation stack)
three ways — sequential ``annotate_many``, the parallel runner on the serial
executor (isolates sharding/merge overhead) and the parallel runner on a
4-worker process pool against one shared :class:`GeoContext` snapshot — and
reports throughput for each.  Output equality is asserted byte-for-byte on
every run; the >1.5x speedup criterion is asserted whenever the machine
actually has >= 4 usable cores (on smaller runners the numbers are still
recorded so the perf trajectory across PRs keeps its JSON trail).
"""

from __future__ import annotations

import os
import time
from typing import List

from benchmarks.conftest import save_result
from repro.analytics.reporting import render_table
from repro.core import PipelineConfig, SeMiTriPipeline
from repro.core.points import RawTrajectory, SpatioTemporalPoint
from repro.parallel import GeoContext, ParallelAnnotationRunner, canonical_bytes

WORKERS = 4
SPEEDUP_TARGET = 1.5


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


def _scalability_workload(world, objects: int = 8, points_per_object: int = 600):
    """Zig-zag drives with dwell clusters for several objects over the world core."""
    core_min = world.config.core_min
    trajectories: List[RawTrajectory] = []
    for obj in range(objects):
        points: List[SpatioTemporalPoint] = []
        t = 0.0
        x = core_min + 120.0 * obj
        y = core_min + 80.0 * obj
        for i in range(points_per_object):
            if i % 150 < 12:  # periodic dwell: stop episodes for the point layer
                x += 0.3
                t += 60.0
            else:
                x = core_min + (x - core_min + 10.0) % 3000.0
                y = core_min + ((i * 10.0) // 3000.0 * 400.0 + 80.0 * obj) % 3000.0
                t += 1.0
            points.append(SpatioTemporalPoint(x, y, t))
        trajectories.append(
            RawTrajectory(points, object_id=f"car{obj}", trajectory_id=f"car{obj}-t0")
        )
    return trajectories


def test_parallel_scaling(benchmark, world, annotation_sources):
    config = PipelineConfig.for_vehicles()
    trajectories = _scalability_workload(world)
    total_points = sum(len(t) for t in trajectories)
    context = GeoContext.build(annotation_sources, config)

    def best_of(rounds, fn):
        """Minimum wall time over several rounds: robust to scheduler noise."""
        best = None
        result = None
        for _ in range(rounds):
            started = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None or elapsed < best else best
        return best, result

    def run():
        measured = {}
        measured["sequential"] = best_of(
            3,
            lambda: SeMiTriPipeline(config).annotate_many(
                trajectories, annotation_sources, annotators=context.annotators
            ),
        )
        serial_runner = ParallelAnnotationRunner(config=config, workers=WORKERS, executor="serial")
        measured["serial executor"] = best_of(
            3, lambda: serial_runner.annotate_many(trajectories, context=context)
        )
        with ParallelAnnotationRunner(
            config=config, workers=WORKERS, executor="process"
        ) as pool_runner:
            # Warm the pool with a full-width batch so every worker is forked
            # and primed before the timed rounds.
            pool_runner.annotate_many(trajectories, context=context)
            measured[f"process pool x{WORKERS}"] = best_of(
                3, lambda: pool_runner.annotate_many(trajectories, context=context)
            )
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    reference_bytes = canonical_bytes(measured["sequential"][1])
    for mode, (_, results) in measured.items():
        assert canonical_bytes(results) == reference_bytes, f"{mode} output diverged"

    sequential_seconds = measured["sequential"][0]
    rows = []
    data = {"workers": WORKERS, "cores": _usable_cores(), "gps_points": total_points, "modes": {}}
    for mode, (seconds, _) in measured.items():
        speedup = sequential_seconds / max(seconds, 1e-9)
        rows.append(
            [mode, f"{seconds * 1e3:.0f}", f"{total_points / seconds:,.0f}", f"{speedup:.2f}x"]
        )
        data["modes"][mode] = {
            "seconds": seconds,
            "points_per_second": total_points / seconds,
            "speedup_vs_sequential": speedup,
        }
    text = render_table(
        ["mode", "total ms", "GPS points/s", "speedup"],
        rows,
        title=f"Parallel annotation scaling ({len(trajectories)} objects, {total_points:,} points)",
    )
    save_result("parallel_scaling", text, data=data)

    pool_speedup = data["modes"][f"process pool x{WORKERS}"]["speedup_vs_sequential"]
    # Sharding/merge overhead must stay negligible on the serial executor.
    assert data["modes"]["serial executor"]["speedup_vs_sequential"] > 0.8
    if _usable_cores() >= WORKERS:
        assert pool_speedup > SPEEDUP_TARGET, (
            f"expected >{SPEEDUP_TARGET}x at {WORKERS} workers, got {pool_speedup:.2f}x"
        )
    else:
        print(
            f"\n[only {_usable_cores()} usable core(s): recorded {pool_speedup:.2f}x, "
            f"speedup gate needs >= {WORKERS} cores]"
        )
