"""Unit tests for spatial predicates."""

from __future__ import annotations

import pytest

from repro.geometry.predicates import (
    bbox_contains_bbox,
    bbox_contains_point,
    bbox_intersects,
    min_distance_point_to_polyline,
    point_in_polygon,
    polygon_contains_bbox,
    polygon_intersects_bbox,
    polyline_intersects_bbox,
    segments_intersect,
)
from repro.geometry.primitives import BoundingBox, Point, Polygon, Segment


class TestBoxPredicates:
    def test_bbox_intersects(self):
        assert bbox_intersects(BoundingBox(0, 0, 2, 2), BoundingBox(1, 1, 3, 3))
        assert not bbox_intersects(BoundingBox(0, 0, 1, 1), BoundingBox(2, 2, 3, 3))

    def test_touching_boxes_intersect(self):
        assert bbox_intersects(BoundingBox(0, 0, 1, 1), BoundingBox(1, 1, 2, 2))

    def test_bbox_contains_point(self):
        assert bbox_contains_point(BoundingBox(0, 0, 2, 2), Point(1, 1))
        assert not bbox_contains_point(BoundingBox(0, 0, 2, 2), Point(3, 1))

    def test_bbox_contains_bbox(self):
        assert bbox_contains_bbox(BoundingBox(0, 0, 10, 10), BoundingBox(1, 1, 2, 2))
        assert not bbox_contains_bbox(BoundingBox(0, 0, 10, 10), BoundingBox(9, 9, 11, 11))


class TestSegmentIntersection:
    def test_crossing_segments(self):
        a = Segment(Point(0, 0), Point(2, 2))
        b = Segment(Point(0, 2), Point(2, 0))
        assert segments_intersect(a, b)

    def test_parallel_segments(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(0, 1), Point(2, 1))
        assert not segments_intersect(a, b)

    def test_touching_at_endpoint(self):
        a = Segment(Point(0, 0), Point(2, 0))
        b = Segment(Point(2, 0), Point(2, 2))
        assert segments_intersect(a, b)

    def test_collinear_overlapping(self):
        a = Segment(Point(0, 0), Point(4, 0))
        b = Segment(Point(2, 0), Point(6, 0))
        assert segments_intersect(a, b)

    def test_collinear_disjoint(self):
        a = Segment(Point(0, 0), Point(1, 0))
        b = Segment(Point(2, 0), Point(3, 0))
        assert not segments_intersect(a, b)


class TestPolygonPredicates:
    @pytest.fixture()
    def square(self) -> Polygon:
        return Polygon([Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)])

    def test_point_in_polygon(self, square):
        assert point_in_polygon(square, Point(2, 2))
        assert not point_in_polygon(square, Point(5, 5))

    def test_polygon_intersects_overlapping_box(self, square):
        assert polygon_intersects_bbox(square, BoundingBox(3, 3, 6, 6))

    def test_polygon_intersects_box_fully_inside_polygon(self, square):
        assert polygon_intersects_bbox(square, BoundingBox(1, 1, 2, 2))

    def test_polygon_inside_box(self, square):
        assert polygon_intersects_bbox(square, BoundingBox(-1, -1, 5, 5))

    def test_polygon_disjoint_box(self, square):
        assert not polygon_intersects_bbox(square, BoundingBox(10, 10, 12, 12))

    def test_edge_crossing_without_contained_corners(self):
        # A thin box crossing the middle of the polygon horizontally.
        diamond = Polygon([Point(0, 2), Point(2, 0), Point(4, 2), Point(2, 4)])
        crossing = BoundingBox(-1, 1.9, 5, 2.1)
        assert polygon_intersects_bbox(diamond, crossing)

    def test_polygon_contains_bbox(self, square):
        assert polygon_contains_bbox(square, BoundingBox(1, 1, 2, 2))
        assert not polygon_contains_bbox(square, BoundingBox(3, 3, 5, 5))


class TestPolylinePredicates:
    def test_polyline_vertex_inside_box(self):
        points = [Point(0, 0), Point(5, 5)]
        assert polyline_intersects_bbox(points, BoundingBox(4, 4, 6, 6))

    def test_polyline_edge_crosses_box(self):
        points = [Point(-1, 1), Point(3, 1)]
        assert polyline_intersects_bbox(points, BoundingBox(0, 0, 2, 2))

    def test_polyline_misses_box(self):
        points = [Point(0, 5), Point(5, 5)]
        assert not polyline_intersects_bbox(points, BoundingBox(0, 0, 2, 2))

    def test_min_distance_to_polyline(self):
        points = [Point(0, 0), Point(10, 0)]
        assert min_distance_point_to_polyline(Point(5, 3), points) == pytest.approx(3.0)

    def test_min_distance_single_point_polyline(self):
        assert min_distance_point_to_polyline(Point(3, 4), [Point(0, 0)]) == pytest.approx(5.0)

    def test_min_distance_empty_polyline_raises(self):
        with pytest.raises(ValueError):
            min_distance_point_to_polyline(Point(0, 0), [])
