"""Windowed map matcher: exact parity with the batch global matcher."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.config import MapMatchingConfig
from repro.lines.map_matching import GlobalMapMatcher
from repro.streaming import WindowedMapMatcher


def _move_point_runs(pipeline, dataset, max_runs: int = 6):
    """Point sequences of the first few move episodes of a dataset."""
    runs = []
    for trajectory in dataset.trajectories:
        for episode in pipeline.compute_episodes(trajectory):
            if episode.is_move and len(episode) >= 5:
                runs.append(list(episode.points))
                if len(runs) >= max_runs:
                    return runs
    return runs


@pytest.mark.parametrize("use_global_score", [True, False])
def test_windowed_matches_batch(road_network, vehicle_pipeline, taxi_dataset, use_global_score):
    config = dataclasses.replace(
        vehicle_pipeline.config.map_matching, use_global_score=use_global_score
    )
    batch = GlobalMapMatcher(road_network, config)
    windowed = WindowedMapMatcher(road_network, config)
    runs = _move_point_runs(vehicle_pipeline, taxi_dataset)
    assert runs
    for points in runs:
        expected = batch.match(points)
        streamed = windowed.match_stream(points)
        assert [m.segment_id for m in streamed] == [m.segment_id for m in expected]
        assert [m.score for m in streamed] == pytest.approx([m.score for m in expected])
        assert [(m.snapped.x, m.snapped.y) for m in streamed] == pytest.approx(
            [(m.snapped.x, m.snapped.y) for m in expected]
        )


def test_ground_truth_drive_parity(road_network, vehicle_pipeline, ground_truth_drive):
    config = vehicle_pipeline.config.map_matching
    batch = GlobalMapMatcher(road_network, config)
    windowed = WindowedMapMatcher(road_network, config)
    points = list(ground_truth_drive.trajectory.points)
    expected = batch.match(points)
    streamed = []
    for point in points:
        streamed.extend(windowed.push(point))
    streamed.extend(windowed.finish())
    assert [m.segment_id for m in streamed] == [m.segment_id for m in expected]


def test_emission_happens_before_stream_end(road_network, vehicle_pipeline, ground_truth_drive):
    """Matches must flow out with bounded lag, not all at finish()."""
    windowed = WindowedMapMatcher(road_network, vehicle_pipeline.config.map_matching)
    points = list(ground_truth_drive.trajectory.points)
    early = 0
    for point in points:
        early += len(windowed.push(point))
    tail = windowed.finish()
    assert early > 0
    assert early + len(tail) == len(points)
    # A drive keeps moving, so the pending window stays small relative to the
    # episode; after finish the matcher is reusable.
    assert windowed.pending_count == 0
    assert windowed.match_stream(points[:20])


def test_local_score_only_mode_streams_with_no_lag(road_network, vehicle_pipeline, taxi_dataset):
    config = dataclasses.replace(
        vehicle_pipeline.config.map_matching, use_global_score=False
    )
    windowed = WindowedMapMatcher(road_network, config)
    runs = _move_point_runs(vehicle_pipeline, taxi_dataset, max_runs=1)
    for point in runs[0]:
        windowed.push(point)
        assert windowed.pending_count == 0
