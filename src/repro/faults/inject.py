"""Deterministic fault injection for reproducible chaos runs.

A :class:`FaultPlan` is a seeded, declarative list of :class:`FaultSpec`\\ s —
*where* to fail (a stage, an object, the store commit, a worker process) and
*when* (the Nth matching occurrence, a bounded number of firings, a seeded
probability).  A :class:`FaultInjector` executes the plan: executors call its
hooks at well-defined points and the injector either does nothing (the common
case), raises :class:`~repro.core.errors.InjectedFault`, sleeps (stall), or
SIGKILLs the current worker process.

Plans parse from a compact string grammar so the same chaos run is expressible
in tests, on the CLI (``scripts/load_generator.py --fault-plan``) and via the
``SEMITRI_FAULTS`` environment variable (which pool workers inherit):

``spec[;spec...]`` where each spec is ``kind[@stage][:key=value[,...]]``:

* ``raise@map_match:n=3``        — raise in ``map_match`` at its 3rd execution;
* ``raise@map_match:obj=car-3,times=-1`` — a *poison* object: every
  ``map_match`` run for ``car-3`` raises, forever;
* ``kill:n=2``                   — SIGKILL the worker process at its 2nd
  trajectory (only fires inside pool workers, never in the parent);
* ``commit:n=1``                 — fail the 1st store commit;
* ``stall@poi_annotation:n=5,secs=0.2`` — sleep 0.2 s at the 5th
  ``poi_annotation`` execution (timeout-path testing);
* a leading ``seed=42`` token seeds the per-spec RNGs used by ``p=`` specs.

Counters are per-injector (per process).  For faults that must fire at most
once *across* processes — a worker kill that recovery must survive, say —
give the spec a ``fuse=/path`` marker file: the first firing creates the file
and any injector (in any process) seeing it treats the spec as spent.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.errors import ConfigurationError, InjectedFault

__all__ = ["FAULTS_ENV_VAR", "FaultSpec", "FaultPlan", "FaultInjector", "DISABLED_FAULTS"]

#: Environment variable holding a parseable fault plan (chaos CI legs set it).
FAULTS_ENV_VAR = "SEMITRI_FAULTS"

#: The fault kinds a spec can select.
FAULT_KINDS: Tuple[str, ...] = ("raise", "kill", "commit", "stall")


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: what to break, where, and how often."""

    kind: str
    """``"raise"``, ``"kill"``, ``"commit"`` or ``"stall"``."""

    stage: str = ""
    """Stage name filter for ``raise``/``stall`` ('' matches every stage)."""

    nth: int = 1
    """Arm on the Nth matching occurrence (1-based)."""

    times: int = 1
    """Firings once armed; -1 means every further match fires (poison)."""

    object_id: str = ""
    """Object-id filter ('' matches every object)."""

    seconds: float = 0.0
    """Sleep duration for ``stall`` specs."""

    probability: float = 1.0
    """Seeded per-occurrence firing probability once armed."""

    fuse: str = ""
    """Marker-file path making the spec fire at most once across processes."""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {list(FAULT_KINDS)}"
            )
        if self.nth < 1:
            raise ConfigurationError("fault spec n must be at least 1")
        if self.times < -1 or self.times == 0:
            raise ConfigurationError("fault spec times must be positive or -1 (unlimited)")
        if self.seconds < 0:
            raise ConfigurationError("fault spec secs must be non-negative")
        if not (0.0 < self.probability <= 1.0):
            raise ConfigurationError("fault spec p must lie in (0, 1]")
        if self.kind == "stall" and self.seconds == 0:
            raise ConfigurationError("stall specs need secs=<duration>")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse one ``kind[@stage][:key=value[,...]]`` spec."""
        head, _, options = text.strip().partition(":")
        kind, _, stage = head.partition("@")
        fields = {"kind": kind.strip(), "stage": stage.strip()}
        for option in filter(None, (part.strip() for part in options.split(","))):
            key, separator, value = option.partition("=")
            if not separator:
                raise ConfigurationError(f"fault option {option!r} must look like key=value")
            key = key.strip()
            value = value.strip()
            try:
                if key == "n":
                    fields["nth"] = int(value)
                elif key == "times":
                    fields["times"] = int(value)
                elif key == "obj":
                    fields["object_id"] = value
                elif key == "secs":
                    fields["seconds"] = float(value)
                elif key == "p":
                    fields["probability"] = float(value)
                elif key == "fuse":
                    fields["fuse"] = value
                else:
                    raise ConfigurationError(
                        f"unknown fault option {key!r}; expected n, times, obj, secs, p or fuse"
                    )
            except ValueError as error:
                raise ConfigurationError(f"bad fault option value {option!r}") from error
        return cls(**fields)  # type: ignore[arg-type]

    def render(self) -> str:
        """The parseable form of this spec (inverse of :meth:`parse`)."""
        head = f"{self.kind}@{self.stage}" if self.stage else self.kind
        options = []
        if self.nth != 1:
            options.append(f"n={self.nth}")
        if self.times != 1:
            options.append(f"times={self.times}")
        if self.object_id:
            options.append(f"obj={self.object_id}")
        if self.seconds:
            options.append(f"secs={self.seconds:g}")
        if self.probability != 1.0:
            options.append(f"p={self.probability:g}")
        if self.fuse:
            options.append(f"fuse={self.fuse}")
        return head + (":" + ",".join(options) if options else "")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault specs — the unit chaos runs are described in."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``[seed=N;]spec[;spec...]`` (the ``SEMITRI_FAULTS`` grammar)."""
        seed = 0
        specs: List[FaultSpec] = []
        for token in filter(None, (part.strip() for part in text.split(";"))):
            if token.startswith("seed="):
                try:
                    seed = int(token[len("seed=") :])
                except ValueError as error:
                    raise ConfigurationError(f"bad fault seed {token!r}") from error
                continue
            specs.append(FaultSpec.parse(token))
        return cls(specs=tuple(specs), seed=seed)

    def render(self) -> str:
        """The parseable form of this plan (ships a plan through an env var)."""
        parts = [f"seed={self.seed}"] if self.seed else []
        parts.extend(spec.render() for spec in self.specs)
        return ";".join(parts)


class FaultInjector:
    """Executes a :class:`FaultPlan` at the engine's injection points.

    Thread-safe: occurrence counters live behind one lock, so the streaming
    service's shard threads share one injector with exact ``n=`` semantics.
    Hooks are no-ops when the plan is empty — the shared
    :data:`DISABLED_FAULTS` singleton is what plans carry by default.
    """

    def __init__(self, plan: FaultPlan = FaultPlan()):
        self._plan = plan
        self._lock = threading.Lock()
        self._seen = [0] * len(plan.specs)
        self._fired = [0] * len(plan.specs)
        self._rngs = [
            random.Random(plan.seed * 7919 + index) for index in range(len(plan.specs))
        ]

    @classmethod
    def from_env(cls) -> "FaultInjector":
        """The injector ``SEMITRI_FAULTS`` describes (disabled when unset)."""
        text = os.environ.get(FAULTS_ENV_VAR, "").strip()
        if not text:
            return DISABLED_FAULTS
        return cls(FaultPlan.parse(text))

    @property
    def enabled(self) -> bool:
        """Whether any spec is armed (false for the disabled singleton)."""
        return bool(self._plan)

    @property
    def plan(self) -> FaultPlan:
        """The plan this injector executes."""
        return self._plan

    def fired_total(self) -> int:
        """Firings so far in this process (diagnostics and tests)."""
        with self._lock:
            return sum(self._fired)

    # ----------------------------------------------------------------- firing
    def _should_fire(self, index: int, spec: FaultSpec) -> bool:
        with self._lock:
            self._seen[index] += 1
            if self._seen[index] < spec.nth:
                return False
            if spec.times >= 0 and self._fired[index] >= spec.times:
                return False
            if spec.probability < 1.0 and self._rngs[index].random() >= spec.probability:
                return False
            if spec.fuse:
                try:
                    # Atomically claim the cross-process fuse; a file already
                    # present means another process (or an earlier firing)
                    # spent this spec.
                    os.close(os.open(spec.fuse, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                except FileExistsError:
                    return False
            self._fired[index] += 1
            return True

    # ------------------------------------------------------------------ hooks
    def on_stage(self, stage: str, object_id: str) -> None:
        """Called before each stage execution; may raise or stall."""
        if not self._plan.specs:
            return
        for index, spec in enumerate(self._plan.specs):
            if spec.kind not in ("raise", "stall"):
                continue
            if spec.stage and spec.stage != stage:
                continue
            if spec.object_id and spec.object_id != object_id:
                continue
            if self._should_fire(index, spec):
                if spec.kind == "stall":
                    time.sleep(spec.seconds)
                else:
                    raise InjectedFault(
                        f"injected failure in stage {stage!r} for object {object_id!r}"
                    )

    def on_trajectory(self, object_id: str, worker: bool = False) -> None:
        """Called as each trajectory starts; ``kill`` specs SIGKILL the worker.

        Kill specs only ever fire when ``worker`` is true (inside a pool
        worker process) — the parent process, shard threads and the
        sequential executor are never killed.
        """
        if not self._plan.specs or not worker:
            return
        for index, spec in enumerate(self._plan.specs):
            if spec.kind != "kill":
                continue
            if spec.object_id and spec.object_id != object_id:
                continue
            if self._should_fire(index, spec):
                os.kill(os.getpid(), signal.SIGKILL)

    def on_commit(self) -> None:
        """Called right before a store commit; may raise instead."""
        if not self._plan.specs:
            return
        for index, spec in enumerate(self._plan.specs):
            if spec.kind != "commit":
                continue
            if self._should_fire(index, spec):
                raise InjectedFault("injected store commit failure")


#: The shared no-op injector plans carry when no faults are armed.
DISABLED_FAULTS = FaultInjector(FaultPlan())
