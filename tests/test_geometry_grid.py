"""Unit tests for the regular grid utilities."""

from __future__ import annotations

import pytest

from repro.geometry.grid import GridSpec, UniformGrid
from repro.geometry.primitives import BoundingBox, Point


class TestGridSpec:
    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            GridSpec(0, 0, 0, 10, 10)
        with pytest.raises(ValueError):
            GridSpec(0, 0, 10, 0, 10)

    def test_covering_box(self):
        spec = GridSpec.covering(BoundingBox(0, 0, 950, 450), cell_size=100)
        assert spec.n_cols == 10
        assert spec.n_rows == 5
        assert spec.n_cells == 50

    def test_bounds_cover_requested_box(self):
        box = BoundingBox(0, 0, 950, 450)
        spec = GridSpec.covering(box, cell_size=100)
        assert spec.bounds.contains_box(box)

    def test_cell_of_inside_and_outside(self):
        spec = GridSpec(0, 0, 100, 10, 10)
        assert spec.cell_of(Point(50, 50)) == (0, 0)
        assert spec.cell_of(Point(999, 999)) == (9, 9)
        assert spec.cell_of(Point(-1, 50)) is None
        assert spec.cell_of(Point(50, 1001)) is None

    def test_point_on_max_boundary_maps_to_last_cell(self):
        spec = GridSpec(0, 0, 100, 10, 10)
        assert spec.cell_of(Point(1000, 1000)) == (9, 9)

    def test_cell_bounds_and_center(self):
        spec = GridSpec(0, 0, 100, 10, 10)
        assert spec.cell_bounds((2, 3)) == BoundingBox(200, 300, 300, 400)
        assert spec.cell_center((2, 3)) == Point(250, 350)

    def test_cell_bounds_out_of_range_raises(self):
        spec = GridSpec(0, 0, 100, 2, 2)
        with pytest.raises(IndexError):
            spec.cell_bounds((5, 0))

    def test_cells_in_box(self):
        spec = GridSpec(0, 0, 100, 10, 10)
        cells = spec.cells_in_box(BoundingBox(150, 150, 350, 250))
        assert (1, 1) in cells and (3, 2) in cells
        assert all(0 <= c < 10 and 0 <= r < 10 for c, r in cells)

    def test_cells_in_disjoint_box_is_empty(self):
        spec = GridSpec(0, 0, 100, 10, 10)
        assert spec.cells_in_box(BoundingBox(2000, 2000, 2100, 2100)) == []

    def test_neighbors_at_corner(self):
        spec = GridSpec(0, 0, 100, 10, 10)
        neighbors = spec.neighbors((0, 0), radius=1)
        assert set(neighbors) == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_neighbors_in_middle(self):
        spec = GridSpec(0, 0, 100, 10, 10)
        assert len(spec.neighbors((5, 5), radius=1)) == 9

    def test_all_cells_count(self):
        spec = GridSpec(0, 0, 100, 4, 3)
        assert len(list(spec.all_cells())) == 12


class TestUniformGrid:
    def test_set_get(self):
        grid = UniformGrid(GridSpec(0, 0, 10, 5, 5))
        grid.set((1, 2), "payload")
        assert grid.get((1, 2)) == "payload"
        assert grid.get((0, 0), "default") == "default"
        assert len(grid) == 1

    def test_value_at_point(self):
        grid = UniformGrid(GridSpec(0, 0, 10, 5, 5))
        grid.set((0, 0), 42)
        assert grid.value_at(Point(5, 5)) == 42
        assert grid.value_at(Point(45, 45)) is None
        assert grid.value_at(Point(-10, -10), default=-1) == -1

    def test_values_in_box(self):
        grid = UniformGrid(GridSpec(0, 0, 10, 5, 5))
        grid.set((0, 0), "a")
        grid.set((4, 4), "b")
        values = grid.values_in_box(BoundingBox(0, 0, 15, 15))
        assert values == ["a"]

    def test_set_outside_grid_raises(self):
        grid = UniformGrid(GridSpec(0, 0, 10, 5, 5))
        with pytest.raises(IndexError):
            grid.set((10, 10), "x")

    def test_contains_and_items(self):
        grid = UniformGrid(GridSpec(0, 0, 10, 5, 5))
        grid.set((2, 2), 1)
        assert (2, 2) in grid
        assert list(grid.items()) == [((2, 2), 1)]
