"""Thin stdlib-only HTTP facade over :class:`AnnotationService`.

Remote emitters that cannot call into the process speak line-protocol HTTP/1.1
with JSON bodies instead.  The server is deliberately minimal — ``asyncio``
streams plus a hand-rolled request parser, **no third-party dependencies** —
because the container bakes in only the standard library; it is an optional
adapter, not the service itself (in-process callers should use
:class:`~repro.service.service.AnnotationService` directly and skip the JSON
round-trip).

Endpoints
---------
``POST /ingest``
    Body ``{"object_id": ..., "x": ..., "y": ..., "t": ...}`` for one event
    or ``{"events": [{...}, ...]}`` for a batch.  Replies
    ``{"accepted": n}``.  Backpressure propagates naturally: when the target
    shard queue is full the reply is simply delayed, so a synchronous HTTP
    emitter slows down with the service.
``POST /close``
    Body ``{"object_id": ...}`` — end of stream for one emitter.
``POST /drain``
    Stop intake, flush everything, reply with summary counters.
``GET /metrics``
    Prometheus text exposition of the service registry.
``GET /healthz``
    Liveness plus headline counters.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.core.errors import ServiceError
from repro.core.points import SpatioTemporalPoint
from repro.service.service import AnnotationService

__all__ = ["HttpIngestServer"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 409: "Conflict", 413: "Payload Too Large"}


class _BadRequest(Exception):
    """Client sent something the parser or a handler rejects."""


def _parse_event(payload: Dict[str, Any]) -> Tuple[str, SpatioTemporalPoint]:
    try:
        object_id = str(payload["object_id"])
        point = SpatioTemporalPoint(
            float(payload["x"]), float(payload["y"]), float(payload["t"])
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise _BadRequest(f"event needs object_id, x, y, t fields: {exc}") from exc
    return object_id, point


class HttpIngestServer:
    """Serve an :class:`AnnotationService` over HTTP on ``host:port``.

    ``port=0`` binds an ephemeral port (tests read :attr:`port` after
    :meth:`start`).  The server owns only the sockets — the service's
    lifecycle (``start``/``drain``/``shutdown``) stays with the caller,
    except that ``POST /drain`` forwards a drain request.
    """

    def __init__(self, service: AnnotationService, host: str = "127.0.0.1", port: int = 8753):
        self._service = service
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._server is not None and self._server.sockets:
            return int(self._server.sockets[0].getsockname()[1])
        return self._port

    async def start(self) -> "HttpIngestServer":
        if self._server is not None:
            raise ServiceError("HTTP server already started")
        self._server = await asyncio.start_server(self._handle, self._host, self._port)
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "HttpIngestServer":
        return await self.start()

    async def __aexit__(self, exc_type: object, exc: object, tb: object) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        """Block serving requests until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # --------------------------------------------------------------- plumbing
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                status, payload, content_type = await self._dispatch(method, path, body)
                data = payload if isinstance(payload, bytes) else json.dumps(payload).encode("utf-8")
                reason = _REASONS.get(status, "Error")
                head = (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    "Connection: keep-alive\r\n\r\n"
                )
                writer.write(head.encode("ascii") + data)
                await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            # Server stop() cancels handlers parked on a keep-alive read;
            # swallow so teardown stays quiet (nobody awaits handler tasks).
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass  # teardown race with server stop(); the task ends anyway

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, bytes]]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError as exc:
            raise _BadRequest("request head too large") from exc
        request_line, *header_lines = head.decode("latin-1").split("\r\n")
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise _BadRequest(f"malformed request line: {request_line!r}")
        method, path, _version = parts
        length = 0
        for line in header_lines:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError as exc:
                    raise _BadRequest("bad Content-Length") from exc
        if length > _MAX_BODY_BYTES:
            raise _BadRequest("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, body

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Any, str]:
        service = self._service
        try:
            if method == "GET" and path == "/metrics":
                return 200, service.render_prometheus().encode("utf-8"), "text/plain; version=0.0.4"
            if method == "GET" and path == "/healthz":
                failures = service.failure_log.snapshot()
                return (
                    200,
                    {
                        "status": "ok",
                        "shards": service.shard_count,
                        "events": service.stats.events,
                        "results": service.stats.results,
                        "open_sessions": service.open_session_count,
                        "errors": service.stats.errors,
                        "failures": failures["failures"],
                        "quarantined": failures["quarantined"],
                        "wal_replayed": failures["wal_replayed"],
                    },
                    "application/json",
                )
            if method == "POST" and path == "/ingest":
                payload = self._json_body(body)
                events = payload.get("events")
                if events is None:
                    events = [payload]
                if not isinstance(events, list):
                    raise _BadRequest("events must be a list")
                # Parse everything before feeding anything, so a malformed
                # event rejects the whole batch instead of half-applying it.
                parsed = [_parse_event(event) for event in events]
                accepted = await service.ingest_many(parsed)
                return 200, {"accepted": accepted}, "application/json"
            if method == "POST" and path == "/close":
                payload = self._json_body(body)
                object_id = payload.get("object_id")
                if not object_id:
                    raise _BadRequest("close needs an object_id")
                await service.close_object(str(object_id))
                return 200, {"closed": str(object_id)}, "application/json"
            if method == "POST" and path == "/drain":
                results = await service.drain()
                return (
                    200,
                    {
                        "results": len(results),
                        "events": service.stats.events,
                        "dropped": service.dropped_events,
                    },
                    "application/json",
                )
            return 404, {"error": f"no route for {method} {path}"}, "application/json"
        except _BadRequest as exc:
            return 400, {"error": str(exc)}, "application/json"
        except ServiceError as exc:
            return 409, {"error": str(exc)}, "application/json"

    @staticmethod
    def _json_body(body: bytes) -> Dict[str, Any]:
        if not body:
            raise _BadRequest("request body is required")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _BadRequest("body must be a JSON object")
        return payload
